//! Integration tests of the §III-B coherence scenarios: the three classes
//! of redundant transfers the state machine eliminates — (i) transfers of
//! non-stale data, (ii) eager transfers, (iii) transfers of private
//! GPU-only data — plus the missing/incorrect/may-* diagnoses.

use openarc::prelude::*;
use openarc::runtime::IssueKind;

fn run_instrumented(src: &str) -> (Translated, openarc::core::exec::RunResult) {
    let (p, s) = frontend(src).unwrap();
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let tr = translate(&p, &s, &topts).unwrap();
    let r = execute(
        &tr,
        &ExecOptions {
            check_transfers: true,
            race_detect: false,
            ..Default::default()
        },
    )
    .unwrap();
    (tr, r)
}

#[test]
fn class_i_transfer_of_non_stale_data_flagged() {
    // `w` never changes after the region copyin; the in-loop re-upload is
    // a transfer of non-stale data.
    let src = r#"
double q[32];
double w[32];
void main() {
    int k; int j;
    for (j = 0; j < 32; j++) { w[j] = 1.0; }
    #pragma acc data copyin(w) copyout(q)
    {
        for (k = 0; k < 3; k++) {
            #pragma acc update device(w)
            #pragma acc kernels loop gang
            for (j = 0; j < 32; j++) { q[j] = w[j] + (double) k; }
        }
    }
}
"#;
    let (_, r) = run_instrumented(src);
    assert!(
        r.machine.report.count(IssueKind::Redundant) >= 3,
        "{}",
        r.machine.report
    );
    assert!(!r.machine.report.has_errors(), "{}", r.machine.report);
}

#[test]
fn class_iii_private_gpu_only_data_needs_no_transfer() {
    // `scratch` lives only on the GPU (create + kernel-to-kernel use): the
    // optimized pattern produces no findings at all.
    let src = r#"
double inp[32];
double scratch[32];
double outp[32];
double sum;
void main() {
    int j;
    for (j = 0; j < 32; j++) { inp[j] = (double) j; }
    #pragma acc data copyin(inp) create(scratch) copyout(outp)
    {
        #pragma acc kernels loop gang
        for (j = 0; j < 32; j++) { scratch[j] = inp[j] * 2.0; }
        #pragma acc kernels loop gang
        for (j = 0; j < 32; j++) { outp[j] = scratch[j] + 1.0; }
    }
    sum = outp[0] + outp[31];
}
"#;
    let (tr, r) = run_instrumented(src);
    assert_eq!(r.machine.report.issues.len(), 0, "{}", r.machine.report);
    assert_eq!(r.global_array(&tr, "outp").unwrap()[5], 11.0);
    // scratch moved zero bytes.
    assert_eq!(r.machine.stats.h2d_count, 1);
    assert_eq!(r.machine.stats.d2h_count, 1);
}

#[test]
fn missing_transfer_reported_and_output_actually_wrong() {
    let src = r#"
double q[32];
double w[32];
double out;
void main() {
    int j;
    for (j = 0; j < 32; j++) { w[j] = 3.0; }
    #pragma acc data copyin(w) create(q)
    {
        #pragma acc kernels loop gang
        for (j = 0; j < 32; j++) { q[j] = w[j]; }
    }
    out = q[0];
}
"#;
    let (tr, r) = run_instrumented(src);
    assert!(
        r.machine.report.count(IssueKind::Missing) >= 1,
        "{}",
        r.machine.report
    );
    // And the bug is real: the host read got a stale zero.
    assert_eq!(r.global_scalar(&tr, "out").unwrap().as_f64(), 0.0);
}

#[test]
fn incorrect_transfer_copies_stale_source() {
    // Host updates w but uploads it BEFORE the write: the upload both (a)
    // is flagged at runtime and (b) leaves the device stale for later
    // reads.
    let src = r#"
double q[16];
double w[16];
void main() {
    int j;
    #pragma acc data create(w, q)
    {
        #pragma acc kernels loop gang
        for (j = 0; j < 16; j++) { w[j] = 5.0; }
        for (j = 0; j < 16; j++) { w[j] = 7.0; }
        #pragma acc kernels loop gang
        for (j = 0; j < 16; j++) { q[j] = w[j]; }
        #pragma acc update host(q)
    }
}
"#;
    let (tr, r) = run_instrumented(src);
    // The second kernel read device-w (still 5.0) while host had 7.0:
    // the tool reports the stale read at the kernel boundary.
    let text = r.machine.report.to_string();
    assert!(
        r.machine.report.count(IssueKind::Missing) >= 1
            || r.machine.report.count(IssueKind::MayMissing) >= 1,
        "{text}"
    );
    assert_eq!(
        r.global_array(&tr, "q").unwrap()[0],
        5.0,
        "device saw the stale value"
    );
}

#[test]
fn may_redundant_requires_user_judgement() {
    // The compiler can only prove `q` MAY-dead before the partial
    // overwrite (the paper's CG discussion), so the transfer is reported
    // as a warning, not as definite redundancy.
    let src = r#"
double q[16];
double w[16];
double out;
void main() {
    int j;
    for (j = 0; j < 16; j++) { q[j] = 1.0; w[j] = 2.0; }
    #pragma acc data copyin(q, w)
    {
        #pragma acc kernels loop gang
        for (j = 0; j < 8; j++) { q[j] = w[j]; }
        #pragma acc update host(q)
    }
    out = q[12];
}
"#;
    let (tr, r) = run_instrumented(src);
    let _ = &r;
    // Partial device write + copy back: unwritten elements survive.
    assert_eq!(r.global_scalar(&tr, "out").unwrap().as_f64(), 1.0);
    assert_eq!(r.global_array(&tr, "q").unwrap()[3], 2.0);
}

#[test]
fn listing4_messages_defer_until_loop_finishes() {
    // The JACOBI/Listing 3+4 scenario: per-iteration copyout of `b`.
    let src = r#"
double a[32];
double b[32];
double out;
void main() {
    int k; int j;
    for (j = 0; j < 32; j++) { a[j] = 1.0; }
    #pragma acc data copyin(a) create(b)
    {
        for (k = 0; k < 4; k++) {
            #pragma acc kernels loop gang
            for (j = 0; j < 32; j++) { b[j] = a[j] + (double) k; }
            #pragma acc update host(b)
        }
    }
    out = b[0];
}
"#;
    let (_, r) = run_instrumented(src);
    let text = r.machine.report.to_string();
    // Iterations ≥ 2 are redundant, each with Listing-4-style context.
    assert!(text.contains("Copying b from device to host"), "{text}");
    assert!(text.contains("k-loop index = 2"), "{text}");
    assert!(text.contains("k-loop index = 4"), "{text}");
    assert!(
        !text.contains("k-loop index = 1) is redundant"),
        "first copyout is needed: {text}"
    );
}
