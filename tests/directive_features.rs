//! Integration tests for the OpenACC `if(...)` clause and the §III-C
//! application-knowledge directives (`#pragma openarc verify ...`).

use openarc::core::options::parse_verification_options;
use openarc::prelude::*;

fn run(src: &str) -> (Translated, openarc::core::exec::RunResult) {
    let (p, s) = frontend(src).unwrap();
    let tr = translate(&p, &s, &TranslateOptions::default()).unwrap();
    let r = execute(
        &tr,
        &ExecOptions {
            race_detect: false,
            ..Default::default()
        },
    )
    .unwrap();
    (tr, r)
}

// ------------------------------------------------------------- if clause

#[test]
fn kernel_if_false_runs_on_host() {
    let src = r#"
double a[32];
int n;
void main() {
    int j;
    n = 10;
    #pragma acc kernels loop gang if(n > 100)
    for (j = 0; j < 32; j++) { a[j] = 1.0; }
}
"#;
    let (tr, r) = run(src);
    // Condition false: no device traffic at all, but the work happened.
    assert_eq!(r.machine.stats.total_count(), 0);
    assert_eq!(r.machine.stats.dev_allocs, 0);
    assert_eq!(r.global_array(&tr, "a").unwrap()[7], 1.0);
}

#[test]
fn kernel_if_true_offloads() {
    let src = r#"
double a[32];
int n;
void main() {
    int j;
    n = 1000;
    #pragma acc kernels loop gang if(n > 100)
    for (j = 0; j < 32; j++) { a[j] = 1.0; }
}
"#;
    let (tr, r) = run(src);
    assert!(r.machine.stats.total_count() > 0);
    assert_eq!(r.global_array(&tr, "a").unwrap()[7], 1.0);
}

#[test]
fn kernel_if_reevaluated_per_launch() {
    // The same kernel offloads only for iterations where the condition
    // holds.
    let src = r#"
double a[16];
int k;
void main() {
    int it; int j;
    for (it = 0; it < 4; it++) {
        k = it;
        #pragma acc kernels loop gang if(k >= 2)
        for (j = 0; j < 16; j++) { a[j] = a[j] + 1.0; }
    }
}
"#;
    let (tr, r) = run(src);
    assert_eq!(r.global_array(&tr, "a").unwrap()[0], 4.0);
    // Two offloaded launches: each copies a in and out.
    assert_eq!(r.machine.stats.h2d_count, 2);
    assert_eq!(r.machine.stats.d2h_count, 2);
}

#[test]
fn data_region_if_false_disables_mapping_and_kernels_fall_back() {
    let src = r#"
double a[32];
double out;
int n;
void main() {
    int j;
    n = 1;
    for (j = 0; j < 32; j++) { a[j] = 2.0; }
    #pragma acc data if(n > 100) copyin(a)
    {
        #pragma acc kernels loop gang
        for (j = 0; j < 32; j++) { a[j] = a[j] * 3.0; }
    }
    out = a[0];
}
"#;
    let (tr, r) = run(src);
    // Region inactive → the kernel used its own default copy policy, so
    // the host still sees the result.
    assert_eq!(r.global_scalar(&tr, "out").unwrap().as_f64(), 6.0);
    // The region itself moved nothing; the kernel moved a in and out once.
    assert_eq!(r.machine.stats.h2d_count, 1);
    assert_eq!(r.machine.stats.d2h_count, 1);
}

#[test]
fn update_if_false_is_a_noop() {
    let src = r#"
double a[16];
double out;
int n;
void main() {
    int j;
    n = 0;
    for (j = 0; j < 16; j++) { a[j] = 1.0; }
    #pragma acc data copyin(a)
    {
        #pragma acc kernels loop gang
        for (j = 0; j < 16; j++) { a[j] = 9.0; }
        #pragma acc update host(a) if(n)
    }
    out = a[0];
}
"#;
    let (tr, r) = run(src);
    // Update suppressed: host copy unchanged.
    assert_eq!(r.global_scalar(&tr, "out").unwrap().as_f64(), 1.0);
}

// ---------------------------------------------------- §III-C knowledge

#[test]
fn bounds_pragma_absolves_in_range_divergence() {
    // Inject a uniform-valued shared cell race (value identical across
    // threads after the race on a narrow f32 computation) — here we force
    // real divergence via a racy temp, then absolve it with bounds.
    let src = r#"
double a[64];
double tmp;
void main() {
    int j;
    #pragma openarc verify bounds(a, 0.0, 200.0)
    #pragma acc kernels loop gang
    for (j = 0; j < 64; j++) { tmp = (double) j; a[j] = tmp + 1.0; }
}
"#;
    let (p, s) = frontend(src).unwrap();
    let (stripped, _) = openarc::core::faults::strip_privatization(&p).unwrap();
    let topts = TranslateOptions {
        auto_privatize: false,
        auto_reduction: false,
        ..Default::default()
    };
    // Without bounds the race is flagged...
    let no_bounds = {
        let mut p2 = stripped.clone();
        // remove the openarc pragma
        if let openarc::minic::Item::Func(f) = &mut p2.items[2] {
            for st in &mut f.body.stmts {
                st.pragmas.retain(|pr| !pr.text.starts_with("openarc"));
            }
        }
        let (_, rep) = verify_kernels(&p2, &s, &topts, VerifyOptions::default()).unwrap();
        rep.flagged().len()
    };
    assert_eq!(no_bounds, 1, "race must be flagged without bounds");
    // ...with bounds(0..200) every diverging value is inside the band, so
    // the tool suppresses the report (the paper's false-positive-avoidance
    // use case).
    let (_, rep) = verify_kernels(&stripped, &s, &topts, VerifyOptions::default()).unwrap();
    assert_eq!(rep.flagged().len(), 0, "{:?}", rep.kernels);
    // The race itself is still real (oracle sees it).
    assert!(!rep.races.is_empty());
}

#[test]
fn assert_checksum_pragma_catches_corruption() {
    let src = r#"
double a[64];
double tmp;
void main() {
    int j;
    #pragma openarc verify assert_checksum(a, 2080.0, 0.5)
    #pragma acc kernels loop gang
    for (j = 0; j < 64; j++) { tmp = (double) j; a[j] = tmp + 1.0; }
}
"#;
    let (p, s) = frontend(src).unwrap();
    // Healthy: checksum Σ(j+1) = 2080 holds.
    let (_, ok) = verify_kernels(
        &p,
        &s,
        &TranslateOptions::default(),
        VerifyOptions::default(),
    )
    .unwrap();
    assert_eq!(ok.kernels[0].assertion_failures, 0);
    // Injected race: checksum breaks; the assertion catches it even with a
    // sky-high comparison tolerance (the §III-C "automatic bug detection"
    // path that avoids user interaction).
    let (stripped, _) = openarc::core::faults::strip_privatization(&p).unwrap();
    let topts = TranslateOptions {
        auto_privatize: false,
        auto_reduction: false,
        ..Default::default()
    };
    let vopts = VerifyOptions {
        rel_tol: 1e9,
        abs_tol: 1e9,
        ..Default::default()
    };
    let (_, bad) = verify_kernels(&stripped, &s, &topts, vopts).unwrap();
    assert!(bad.kernels[0].assertion_failures > 0);
    assert!(bad.kernels[0].flagged());
}

#[test]
fn assert_finite_and_nonnegative() {
    let src = r#"
double a[16];
void main() {
    int j;
    #pragma openarc verify assert_finite(a)
    #pragma openarc verify assert_nonnegative(a)
    #pragma acc kernels loop gang
    for (j = 0; j < 16; j++) { a[j] = 1.0 / ((double) j + 1.0); }
}
"#;
    let (p, s) = frontend(src).unwrap();
    let (_, rep) = verify_kernels(
        &p,
        &s,
        &TranslateOptions::default(),
        VerifyOptions::default(),
    )
    .unwrap();
    assert_eq!(rep.kernels[0].assertion_failures, 0);
}

#[test]
fn bad_knowledge_pragma_is_a_translate_error() {
    let src = r#"
double a[4];
void main() {
    int j;
    #pragma openarc verify bounds(a, 5.0, 1.0)
    #pragma acc kernels loop gang
    for (j = 0; j < 4; j++) { a[j] = 1.0; }
}
"#;
    let (p, s) = frontend(src).unwrap();
    assert!(translate(&p, &s, &TranslateOptions::default()).is_err());
}

// ------------------------------------------------ verification options

#[test]
fn verification_options_select_kernels_end_to_end() {
    let src = r#"
double a[16];
double b[16];
void main() {
    int j;
    #pragma acc kernels loop gang
    for (j = 0; j < 16; j++) { a[j] = 1.0; }
    #pragma acc kernels loop gang
    for (j = 0; j < 16; j++) { b[j] = 2.0; }
}
"#;
    let (p, s) = frontend(src).unwrap();
    let vopts = parse_verification_options("complement=0,kernels=main_kernel1").unwrap();
    let (_, rep) = verify_kernels(&p, &s, &TranslateOptions::default(), vopts).unwrap();
    assert_eq!(rep.kernels[0].launches, 0, "kernel0 not selected");
    assert_eq!(rep.kernels[1].launches, 1, "kernel1 selected");
    // Paper's complement=1 inverts.
    let vopts = parse_verification_options("complement=1,kernels=main_kernel1").unwrap();
    let (_, rep) = verify_kernels(&p, &s, &TranslateOptions::default(), vopts).unwrap();
    assert_eq!(rep.kernels[0].launches, 1);
    assert_eq!(rep.kernels[1].launches, 0);
}

// ------------------------------------------------------------- declare

#[test]
fn declare_keeps_data_resident_for_whole_run() {
    let src = r#"
double scratch[32];
double inp[32];
double out;
void main() {
    int k; int j;
    for (j = 0; j < 32; j++) { inp[j] = 1.0; }
    #pragma acc declare create(scratch)
    for (k = 0; k < 4; k++) {
        #pragma acc kernels loop gang copyin(inp)
        for (j = 0; j < 32; j++) { scratch[j] = inp[j] + (double) k; }
        #pragma acc kernels loop gang
        for (j = 0; j < 32; j++) { inp[j] = scratch[j]; }
    }
    out = inp[0];
}
"#;
    let (tr, r) = run(src);
    assert_eq!(r.global_scalar(&tr, "out").unwrap().as_f64(), 7.0);
    // scratch allocated exactly once for the whole run (inp re-maps per
    // launch: 8 kernel launches + 1 declare mapping) and never transfers.
    assert_eq!(r.machine.stats.dev_allocs, 9);
    // Transfers are inp only: 8 uploads (one per launch) + 4 downloads.
    assert_eq!(r.machine.stats.h2d_count, 8);
    assert_eq!(r.machine.stats.d2h_count, 4);
}

#[test]
fn declare_copyin_snapshots_entry_values_and_update_refreshes() {
    // `declare copyin` captures the values at program entry (zeros here,
    // since the host fills `table` afterwards); an explicit `update
    // device` then refreshes the resident copy — declared data is present,
    // so the update is legal without any data region.
    let src = r#"
double table[16];
double a[16];
double out;
void main() {
    int k; int j;
    #pragma acc declare copyin(table)
    for (j = 0; j < 16; j++) { table[j] = 2.0; }
    #pragma acc update device(table)
    for (k = 0; k < 3; k++) {
        #pragma acc kernels loop gang
        for (j = 0; j < 16; j++) { a[j] = table[j] * (double) (k + 1); }
    }
    out = a[0];
}
"#;
    let (tr, r) = run(src);
    assert_eq!(r.global_scalar(&tr, "out").unwrap().as_f64(), 6.0);
    // Uploads: declare snapshot + update + a per launch (3).
    assert_eq!(r.machine.stats.h2d_count, 5);
    // table allocated once; a thrice.
    assert_eq!(r.machine.stats.dev_allocs, 4);
}
