//! Pretty-printer round-trip properties.
//!
//! The fuzzer's minimizer and mutator both lean on `print_program` as
//! the canonical surface form: a mutant is parsed, transformed, and
//! re-printed many times per campaign. These properties pin the two
//! invariants that workflow needs:
//!
//! 1. *Fixed point*: `print(parse(print(parse(src))))` equals
//!    `print(parse(src))` — one round of printing reaches the
//!    canonical form and further rounds change nothing.
//! 2. *Fingerprint preservation*: re-parsing the printed form yields a
//!    structurally identical program (same semantic fingerprint), so
//!    printing never alters meaning.

use openarc::core::fuzz::gen::generate;
use openarc::core::fuzz::mutate::mutate_source;
use openarc::core::fuzz::FuzzRng;
use openarc::minic::fingerprint::fingerprint_program;
use openarc::minic::{parse, print_program};
use openarc::suite::{all, Scale};

/// Assert both round-trip properties for one source.
fn assert_roundtrip(label: &str, src: &str) {
    let p1 = parse(src).unwrap_or_else(|e| panic!("{label}: parse failed: {e:?}"));
    let printed = print_program(&p1);
    let p2 =
        parse(&printed).unwrap_or_else(|e| panic!("{label}: reparse failed: {e:?}\n{printed}"));
    let printed2 = print_program(&p2);
    assert_eq!(
        printed, printed2,
        "{label}: printing is not a fixed point after one round"
    );
    assert_eq!(
        fingerprint_program(&p1),
        fingerprint_program(&p2),
        "{label}: printed form changed the program's fingerprint"
    );
}

#[test]
fn benchmarks_round_trip_across_all_variants() {
    let scale = Scale { n: 8, iters: 2 };
    let benches = all(scale);
    assert_eq!(benches.len(), 12, "paper suite is 12 benchmarks");
    for b in &benches {
        assert_roundtrip(&format!("{} (naive)", b.name), &b.naive);
        assert_roundtrip(&format!("{} (unoptimized)", b.name), &b.unoptimized);
        assert_roundtrip(&format!("{} (optimized)", b.name), &b.optimized);
    }
}

#[test]
fn generated_programs_round_trip() {
    let mut rng = FuzzRng::new(0xF00D);
    for i in 0..200 {
        let src = generate(&mut rng);
        assert_roundtrip(&format!("generated #{i}"), &src);
    }
}

#[test]
fn mutants_round_trip() {
    let mut rng = FuzzRng::new(0xBEEF);
    let mut src = generate(&mut rng);
    let mut mutated = 0;
    for i in 0..400 {
        match mutate_source(&mut rng, &src) {
            Some(m) => {
                assert_roundtrip(&format!("mutant #{i}"), &m);
                src = m;
                mutated += 1;
            }
            None => src = generate(&mut rng),
        }
    }
    assert!(
        mutated >= 100,
        "mutator made too little progress: {mutated}"
    );
}
