//! Integration tests of the execution event journal: exact reconciliation
//! of journal slice totals against the simulator's `TimeCategory`
//! accounting on real benchmarks, a golden-file check of the Chrome
//! `trace_event` export, and verification events in verify mode.

use openarc::gpusim::clock::TimeCategory;
use openarc::prelude::*;
use openarc::trace::{category_totals, EventKind};

/// Run one benchmark variant with the journal attached and assert that the
/// journal's per-category totals equal the clock's breakdown *exactly* —
/// the journal performs the same f64 additions in the same order.
fn assert_reconciles(b: &openarc::suite::Benchmark, v: Variant) {
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let journal = Journal::enabled();
    let eopts = ExecOptions {
        check_transfers: true,
        journal: journal.clone(),
        ..Default::default()
    };
    let (_, r) = openarc::suite::run_variant(b, v, &topts, &eopts).unwrap();
    let events = journal.snapshot();
    assert!(
        !events.is_empty(),
        "{} [{}] journal empty",
        b.name,
        v.name()
    );
    for (cat, total) in category_totals(&events) {
        let clock_cat = TimeCategory::ALL
            .into_iter()
            .find(|t| t.trace_category() == cat)
            .unwrap();
        assert_eq!(
            total,
            r.machine.clock.breakdown.get(clock_cat),
            "{} [{}] {cat} drifted from the clock",
            b.name,
            v.name()
        );
    }
    let journal_total: f64 = category_totals(&events).iter().map(|(_, t)| t).sum();
    assert!(
        (journal_total - r.sim_time_us()).abs() < 1e-6 * r.sim_time_us().max(1.0),
        "{} [{}] journal total {journal_total} vs clock {}",
        b.name,
        v.name(),
        r.sim_time_us()
    );
}

#[test]
fn jacobi_journal_reconciles_with_time_categories() {
    let b = openarc::suite::jacobi::benchmark(Scale::default());
    for v in Variant::ALL {
        assert_reconciles(&b, v);
    }
}

#[test]
fn spmul_journal_reconciles_with_time_categories() {
    let b = openarc::suite::spmul::benchmark(Scale::default());
    for v in Variant::ALL {
        assert_reconciles(&b, v);
    }
}

#[test]
fn verify_mode_journals_verification_events() {
    let b = openarc::suite::jacobi::benchmark(Scale::default());
    let topts = TranslateOptions::default();
    let journal = Journal::enabled();
    let eopts = ExecOptions {
        mode: ExecMode::Verify(VerifyOptions::default()),
        journal: journal.clone(),
        ..Default::default()
    };
    let (_, r) = openarc::suite::run_variant(&b, Variant::Naive, &topts, &eopts).unwrap();
    let events = journal.snapshot();
    let verdicts: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Verification { kernel, passed, .. } => Some((kernel.clone(), *passed)),
            _ => None,
        })
        .collect();
    let total_launches: u64 = r.verify.iter().map(|k| k.launches).sum();
    assert_eq!(
        verdicts.len() as u64,
        total_launches,
        "one verdict per verified launch"
    );
    assert!(verdicts.iter().all(|(_, passed)| *passed), "{verdicts:?}");
    assert!(verdicts.iter().any(|(k, _)| k == "main_kernel0"));
}

/// A tiny fixed program whose Chrome trace is pinned as a golden file.
/// Includes an async kernel + wait so the export's queue-track mapping
/// (tid assignment, thread_name metadata) is covered.
const GOLDEN_SRC: &str = "double q[8];\ndouble w[8];\nvoid main() {\n    int j;\n    for (j = 0; j < 8; j++) { w[j] = (double) j; }\n    #pragma acc kernels loop async(1) gang worker copy(q) copyin(w)\n    for (j = 0; j < 8; j++) { q[j] = w[j] * 2.0; }\n    #pragma acc wait(1)\n}\n";

/// The export is deterministic; the golden file pins its exact shape.
/// Regenerate after an intentional schema change with:
/// `UPDATE_GOLDEN=1 cargo test --test trace_journal`.
#[test]
fn chrome_trace_matches_golden() {
    let (p, s) = frontend(GOLDEN_SRC).unwrap();
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let tr = translate(&p, &s, &topts).unwrap();
    let journal = Journal::enabled();
    let eopts = ExecOptions {
        check_transfers: true,
        journal: journal.clone(),
        ..Default::default()
    };
    execute(&tr, &eopts).unwrap();
    let trace = chrome_trace(&journal.snapshot());

    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/profile_trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &trace).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        trace, golden,
        "Chrome trace drifted from tests/golden/profile_trace.json"
    );
}

/// Two identical runs produce byte-identical traces (the golden file is
/// meaningful only because the export is deterministic).
#[test]
fn chrome_trace_is_deterministic() {
    let render = || {
        let (p, s) = frontend(GOLDEN_SRC).unwrap();
        let topts = TranslateOptions {
            instrument: true,
            ..Default::default()
        };
        let tr = translate(&p, &s, &topts).unwrap();
        let journal = Journal::enabled();
        let eopts = ExecOptions {
            check_transfers: true,
            journal: journal.clone(),
            ..Default::default()
        };
        execute(&tr, &eopts).unwrap();
        chrome_trace(&journal.snapshot())
    };
    assert_eq!(render(), render());
}
