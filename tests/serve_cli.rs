//! Full-process gate for `openarc serve`: start the real daemon binary,
//! drive it over TCP with the 12-benchmark corpus, and require that
//! every served report is **byte-identical** to the one-shot CLI's
//! stdout for the same program and command — plus exit-code agreement
//! and warm-session hits on a repeat pass.

use openarc::core::api::{Action, Request, Response};
use openarc::suite::{all, Scale, Variant};
use openarc::trace::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_openarc"))
}

/// Start `openarc serve` on an ephemeral port and parse the
/// `listening on ADDR` discovery line from its stdout.
fn spawn_daemon(extra: &[&str]) -> (Child, String) {
    let mut child = bin()
        .arg("serve")
        .arg("--no-cache")
        .arg("--stats-interval-ms")
        .arg("0")
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("bad discovery line: {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn round_trip(&mut self, line: &str) -> Json {
        writeln!(self.stream, "{line}").unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "daemon closed the connection");
        Json::parse(&reply).unwrap()
    }
}

/// `verify` exercises multi-device DAG scheduling on part of the corpus
/// so the daemon path covers it too.
const VERIFY_SPEC: &str = "devices=2,dagJobs=2";

fn corpus_action(i: usize) -> (Action, Option<String>, &'static str) {
    match i % 3 {
        0 => (Action::Run, None, "run"),
        1 => (Action::Check, None, "check"),
        _ => (Action::Verify, Some(VERIFY_SPEC.to_string()), "verify"),
    }
}

#[test]
fn served_reports_are_byte_identical_to_the_one_shot_cli() {
    let dir = std::env::temp_dir().join("openarc-serve-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let (mut child, addr) = spawn_daemon(&["--jobs", "2"]);
    let mut client = Client::connect(&addr);

    for (i, b) in all(Scale::default()).iter().enumerate() {
        let (action, options, cmd) = corpus_action(i);
        let source = b.source(Variant::Naive);

        // One-shot ground truth: the real CLI on the real file.
        let path = dir.join(format!("{}.c", b.name));
        std::fs::write(&path, source).unwrap();
        let mut one_shot = bin();
        one_shot.arg(cmd).arg(&path);
        if let Some(spec) = &options {
            one_shot.arg(spec);
        }
        let one_shot = one_shot.output().unwrap();
        let expected = String::from_utf8(one_shot.stdout).unwrap();
        let expected_code = one_shot.status.code().unwrap();

        // Served: same program through the daemon.
        let mut req = Request::new(action, source);
        req.options = options;
        let reply = client.round_trip(&req.to_json().to_string());
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "{} {cmd}: {reply:?}",
            b.name
        );
        let resp = Response::from_json(reply.get("response").unwrap()).unwrap();
        assert_eq!(
            resp.report, expected,
            "{} {cmd}: report bytes differ",
            b.name
        );
        assert_eq!(resp.exit_code, expected_code, "{} {cmd}", b.name);
    }

    // Second pass over the corpus: the daemon's warm sessions must show
    // stage-cache hits (the one-shot CLI pays the full pipeline each
    // time; the daemon must not).
    for (i, b) in all(Scale::default()).iter().enumerate() {
        let (action, options, _) = corpus_action(i);
        let mut req = Request::new(action, b.source(Variant::Naive));
        req.options = options;
        let reply = client.round_trip(&req.to_json().to_string());
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    }
    let stats = client.round_trip(r#"{"action":"stats"}"#);
    let stats = stats.get("stats").unwrap();
    let hits: u64 = stats
        .get("stages")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|r| r.get("hits").and_then(Json::as_u64))
        .sum();
    assert!(hits > 0, "second pass never hit the warm sessions: {stats}");
    assert_eq!(stats.get("rejected").and_then(Json::as_u64), Some(0));

    let ack = client.round_trip(r#"{"action":"shutdown"}"#);
    assert_eq!(ack.get("shutdown").and_then(Json::as_bool), Some(true));
    let status = child.wait().unwrap();
    assert!(status.success(), "daemon exit: {status:?}");
}

#[test]
fn serve_rejects_bad_flags_with_usage() {
    let out = bin().arg("serve").arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown serve flag"), "{err}");
}
