//! Integration tests of the persistent artifact cache across real
//! processes: a second `openarc bench` invocation over the same
//! `--cache-dir` must reload every persisted pipeline stage from disk
//! (zero frontend/translate misses), corrupted stores must recompute
//! cleanly, and concurrent writers must not corrupt each other.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_openarc"))
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("openarc-cache-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `openarc bench --scale small --cache-dir <dir>` in a fresh process
/// and return its stdout.
fn bench(dir: &std::path::Path) -> String {
    let out = bin()
        .args(["bench", "--scale", "small", "--cache-dir"])
        .arg(dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    String::from_utf8(out.stdout).unwrap()
}

/// Parse one row of the `pipeline cache:` stats table: `(hits, misses)`.
fn stage_counts(stdout: &str, label: &str) -> (u64, u64) {
    let row = stdout
        .lines()
        .skip_while(|l| !l.starts_with("pipeline cache:"))
        .find(|l| l.split_whitespace().next() == Some(label))
        .unwrap_or_else(|| panic!("no `{label}` row in:\n{stdout}"));
    let mut f = row.split_whitespace().skip(1);
    (
        f.next().unwrap().parse().unwrap(),
        f.next().unwrap().parse().unwrap(),
    )
}

/// The benchmark table (everything before `--`), for output comparison.
fn matrix_rows(stdout: &str) -> String {
    stdout
        .lines()
        .take_while(|l| *l != "--")
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn second_process_reloads_every_persisted_stage() {
    let dir = scratch("warm");
    let cold = bench(&dir);
    let warm = bench(&dir);

    // Cold process: every distinct artifact was computed and stored.
    let (_, fe_misses) = stage_counts(&cold, "frontend");
    assert!(fe_misses > 0, "cold run computed frontends:\n{cold}");
    let (disk_hits, _) = stage_counts(&cold, "disk");
    assert_eq!(disk_hits, 0, "cold run had nothing to load:\n{cold}");

    // Warm process: zero misses for the persisted stages — the acceptance
    // criterion. Frontends and translations load from disk.
    for label in ["frontend", "analysis"] {
        let (hits, misses) = stage_counts(&warm, label);
        assert_eq!(misses, 0, "warm `{label}` recomputed:\n{warm}");
        assert!(hits > 0, "warm `{label}` saw no requests:\n{warm}");
    }
    let (disk_hits, disk_misses) = stage_counts(&warm, "disk");
    assert!(disk_hits > 0, "warm run loaded nothing:\n{warm}");
    assert_eq!(disk_misses, 0, "warm run missed on disk:\n{warm}");

    // And the science is unchanged: both processes print the same matrix.
    assert_eq!(matrix_rows(&cold), matrix_rows(&warm));

    // `openarc cache stats` sees the populated store.
    let out = bin()
        .args(["cache", "stats", "--cache-dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    let total = text
        .lines()
        .find(|l| l.starts_with("total"))
        .unwrap_or_else(|| panic!("no total row:\n{text}"));
    let entries: u64 = total.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(entries > 0, "{text}");

    // `openarc cache clear` empties it; the next run is cold again.
    let out = bin()
        .args(["cache", "clear", "--cache-dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let recold = bench(&dir);
    let (disk_hits, _) = stage_counts(&recold, "disk");
    assert_eq!(disk_hits, 0, "cleared store still served hits:\n{recold}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_recomputes_without_failing() {
    let dir = scratch("corrupt");
    let cold = bench(&dir);

    // Trash every persisted entry with a rotation of failure shapes.
    let mut junked = 0;
    for stage in std::fs::read_dir(&dir).unwrap().flatten() {
        let Ok(rd) = std::fs::read_dir(stage.path()) else {
            continue;
        };
        for entry in rd.flatten() {
            let junk = ["", "{not json", "{\"schema\": 999}"][junked % 3];
            std::fs::write(entry.path(), junk).unwrap();
            junked += 1;
        }
    }
    assert!(junked > 0, "first run persisted nothing");

    // The next process must detect the corruption, recompute, and print
    // the same matrix — exit 0, no panic.
    let warm = bench(&dir);
    assert_eq!(matrix_rows(&cold), matrix_rows(&warm));
    let (disk_hits, _) = stage_counts(&warm, "disk");
    assert_eq!(disk_hits, 0, "corrupt entries served as hits:\n{warm}");
    let disk_row = warm
        .lines()
        .find(|l| l.starts_with("disk"))
        .unwrap()
        .to_string();
    let corrupt: u64 = disk_row.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(corrupt > 0, "no corruption counted: {disk_row}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Parse a `cache stats` table row into `(entries, bin, json)`.
fn stats_row(stdout: &str, label: &str) -> (u64, u64, u64) {
    let row = stdout
        .lines()
        .find(|l| l.split_whitespace().next() == Some(label))
        .unwrap_or_else(|| panic!("no `{label}` row in:\n{stdout}"));
    let mut f = row.split_whitespace().skip(1);
    let mut next = || f.next().unwrap().parse().unwrap();
    (next(), next(), next())
}

#[test]
fn exported_json_store_round_trips_through_a_fresh_process() {
    let dir = scratch("export-src");
    let json_dir = scratch("export-dst");
    let cold = bench(&dir);

    // The populated store is all-binary.
    let out = bin()
        .args(["cache", "stats", "--cache-dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    let (entries, bin_n, json_n) = stats_row(&text, "total");
    assert!(entries > 0, "{text}");
    assert_eq!((bin_n, json_n), (entries, 0), "{text}");

    // Export re-encodes every entry as JSON into a second store.
    let out = bin()
        .args(["cache", "export", "--out"])
        .arg(&json_dir)
        .args(["--cache-dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.starts_with(&format!("exported {entries} entries")),
        "{text}"
    );
    assert!(text.trim_end().ends_with("(0 skipped)"), "{text}");

    let out = bin()
        .args(["cache", "stats", "--cache-dir"])
        .arg(&json_dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stats_row(&text, "total"), (entries, 0, entries), "{text}");

    // A fresh process over the exported store loads every stage from the
    // JSON entries, prints the same matrix, and upgrades them to binary.
    let warm = bench(&json_dir);
    assert_eq!(matrix_rows(&cold), matrix_rows(&warm));
    let (disk_hits, disk_misses) = stage_counts(&warm, "disk");
    assert!(disk_hits > 0, "exported store served nothing:\n{warm}");
    assert_eq!(disk_misses, 0, "exported store missed:\n{warm}");

    let out = bin()
        .args(["cache", "stats", "--cache-dir"])
        .arg(&json_dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    let (entries_after, bin_after, json_after) = stats_row(&text, "total");
    assert_eq!(entries_after, entries, "{text}");
    assert_eq!(json_after, 0, "hits did not upgrade JSON entries:\n{text}");
    assert_eq!(bin_after, entries, "{text}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&json_dir);
}

#[test]
fn concurrent_processes_share_one_store() {
    let dir = scratch("race");
    let spawn = || {
        bin()
            .args(["bench", "--scale", "small", "--cache-dir"])
            .arg(&dir)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap()
    };
    let (a, b) = (spawn(), spawn());
    let (a, b) = (a.wait_with_output().unwrap(), b.wait_with_output().unwrap());
    assert!(a.status.success(), "{a:?}");
    assert!(b.status.success(), "{b:?}");
    let out_a = matrix_rows(&String::from_utf8(a.stdout).unwrap());
    let out_b = matrix_rows(&String::from_utf8(b.stdout).unwrap());
    assert_eq!(out_a, out_b, "concurrent writers diverged");

    // Whatever interleaving happened, the store the two runs left behind
    // must be fully valid: a third run loads everything with zero misses.
    let warm = bench(&dir);
    let (disk_hits, disk_misses) = stage_counts(&warm, "disk");
    assert!(disk_hits > 0, "{warm}");
    assert_eq!(disk_misses, 0, "{warm}");

    let _ = std::fs::remove_dir_all(&dir);
}
