//! Property-based tests over the core data structures and invariants.

use openarc::minic::{parse, print_program};
use openarc::openacc::{parse_directive, DataClause, DataClauseKind, Directive, LoopSpec};
use openarc::runtime::{Coherence, DevSide, PresentTable, ReadDiag, St};
use openarc::vm::interp::eval_bin;
use openarc::vm::{Handle, MemSpace, Value};
use openarc_minic::ast::BinOp;
use openarc_minic::ScalarTy;
use proptest::prelude::*;

// ---------------------------------------------------------- minic parser

/// Generate small well-formed expressions as text.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| v.to_string()),
        (0u32..100u32).prop_map(|v| format!("{v}.5")),
        Just("x".to_string()),
        Just("y".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_expr(depth - 1);
    let sub2 = arb_expr(depth - 1);
    prop_oneof![
        leaf,
        (sub, sub2, prop_oneof![Just("+"), Just("-"), Just("*")])
            .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse ∘ print ∘ parse is the identity (up to formatting).
    #[test]
    fn parser_pretty_round_trip(e in arb_expr(3)) {
        let src = format!("double x;\ndouble y;\ndouble z;\nvoid main() {{ z = {e}; }}");
        let p1 = parse(&src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse(&printed).expect("re-parse");
        prop_assert_eq!(print_program(&p1), print_program(&p2));
    }

    /// VM integer arithmetic matches native Rust (wrapping semantics).
    #[test]
    fn vm_int_arith_matches_native(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        prop_assert_eq!(
            eval_bin(BinOp::Add, Value::Int(a), Value::Int(b)).unwrap(),
            Value::Int(a.wrapping_add(b))
        );
        prop_assert_eq!(
            eval_bin(BinOp::Mul, Value::Int(a), Value::Int(b)).unwrap(),
            Value::Int(a.wrapping_mul(b))
        );
        if b != 0 {
            prop_assert_eq!(
                eval_bin(BinOp::Div, Value::Int(a), Value::Int(b)).unwrap(),
                Value::Int(a / b)
            );
        }
    }

    /// VM double arithmetic matches native f64 bit-for-bit.
    #[test]
    fn vm_f64_arith_matches_native(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        for (op, expect) in [
            (BinOp::Add, a + b),
            (BinOp::Sub, a - b),
            (BinOp::Mul, a * b),
        ] {
            match eval_bin(op, Value::F64(a), Value::F64(b)).unwrap() {
                Value::F64(v) => prop_assert_eq!(v.to_bits(), expect.to_bits()),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }

    /// Comparisons always yield canonical 0/1 ints.
    #[test]
    fn vm_comparisons_are_boolean(a in -100i64..100, b in -100i64..100) {
        for op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne] {
            match eval_bin(op, Value::Int(a), Value::Int(b)).unwrap() {
                Value::Int(v) => prop_assert!(v == 0 || v == 1),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }

    // ----------------------------------------------------- memory space

    /// Whatever is stored is loaded back (after elem-type coercion).
    #[test]
    fn memspace_store_load_round_trip(vals in prop::collection::vec(-1e9f64..1e9, 1..64)) {
        let mut m = MemSpace::new();
        let h = m.alloc(ScalarTy::Double, vals.len(), "buf");
        for (i, v) in vals.iter().enumerate() {
            m.store(h, i as u64, Value::F64(*v)).unwrap();
        }
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(m.load(h, i as u64).unwrap(), Value::F64(*v));
        }
        prop_assert_eq!(m.get(h).unwrap().size_bytes(), vals.len() as u64 * 8);
    }

    /// Byte accounting never goes negative and peak is monotone.
    #[test]
    fn memspace_accounting_invariants(sizes in prop::collection::vec(1usize..128, 1..20)) {
        let mut m = MemSpace::new();
        let mut hs = Vec::new();
        let mut peak = 0;
        for (i, len) in sizes.iter().enumerate() {
            hs.push(m.alloc(ScalarTy::Double, *len, format!("b{i}")));
            peak = peak.max(m.allocated_bytes());
            prop_assert_eq!(m.peak_bytes(), peak);
        }
        for h in hs {
            m.free(h).unwrap();
        }
        prop_assert_eq!(m.allocated_bytes(), 0);
        prop_assert_eq!(m.peak_bytes(), peak);
    }

    // ----------------------------------------------------- present table

    /// Retain/release counts balance; device handle stable until drop.
    #[test]
    fn present_table_refcount_balance(extra in 0u32..6) {
        let mut t = PresentTable::new();
        let host = Handle(7);
        let dev = Handle(9);
        t.insert(host, dev, "a").unwrap();
        for _ in 0..extra {
            t.retain(host).unwrap();
        }
        for _ in 0..extra {
            prop_assert_eq!(t.release(host).unwrap(), None);
            prop_assert_eq!(t.device_of(host), Some(dev));
        }
        prop_assert_eq!(t.release(host).unwrap(), Some(dev));
        prop_assert!(!t.contains(host));
    }

    // ----------------------------------------------- coherence machine

    /// After any event sequence: a transfer to a side makes reads on that
    /// side clean, and a remote write makes the untouched side dirty.
    #[test]
    fn coherence_transfer_always_cleans(ops in prop::collection::vec(0u8..6, 0..40)) {
        let mut c = Coherence::new(true);
        let h = Handle(3);
        c.track(h, "a");
        for op in ops {
            match op {
                0 => { c.on_write(h, DevSide::Cpu, false); }
                1 => { c.on_write(h, DevSide::Gpu, false); }
                2 => { c.on_write(h, DevSide::Cpu, true); }
                3 => { c.on_write(h, DevSide::Gpu, true); }
                4 => { c.on_transfer(h, DevSide::Cpu); }
                _ => { c.on_transfer(h, DevSide::Gpu); }
            }
            // Invariant: the two copies are never both stale — someone
            // holds the latest data.
            let v = c.state(h).unwrap();
            prop_assert!(
                !(v.cpu == St::Stale && v.gpu == St::Stale),
                "both sides stale: {:?}", v
            );
        }
        // A transfer in always cleans the destination.
        c.on_transfer(h, DevSide::Cpu);
        prop_assert_eq!(c.check_read(h, DevSide::Cpu), ReadDiag::Ok);
        c.on_write(h, DevSide::Cpu, false);
        prop_assert_eq!(c.check_read(h, DevSide::Gpu), ReadDiag::Missing);
    }

    // ------------------------------------------------ directive parsing

    /// Directive display round-trips through the parser for arbitrary
    /// clause combinations.
    #[test]
    fn directive_display_round_trip(
        gang in any::<bool>(),
        worker in any::<bool>(),
        asyncq in prop::option::of(0i64..8),
        n_copy in 0usize..3,
        n_create in 0usize..3,
    ) {
        let names = ["aa", "bb", "cc"];
        let mut spec = openarc::openacc::ComputeSpec {
            combined_loop: true,
            async_queue: asyncq,
            loop_spec: LoopSpec { gang, worker, ..Default::default() },
            ..Default::default()
        };
        if n_copy > 0 {
            spec.data.push(DataClause::of(DataClauseKind::Copy, &names[..n_copy]));
        }
        if n_create > 0 {
            spec.data.push(DataClause::of(DataClauseKind::Create, &names[..n_create]));
        }
        let d = Directive::Compute(spec);
        let text = d.to_string();
        let parsed = parse_directive(&text, openarc::minic::Span::dummy())
            .expect("parse")
            .expect("acc directive");
        prop_assert_eq!(d, parsed);
    }
}
