//! Property-style tests over the core data structures and invariants.
//!
//! The workspace builds offline with no external crates, so instead of a
//! property-testing framework these tests drive the same invariants with a
//! small deterministic xorshift PRNG and exhaustive grids — every run
//! checks the identical case set.

use openarc::gpusim::DeviceId;
use openarc::minic::{parse, print_program};
use openarc::openacc::{parse_directive, DataClause, DataClauseKind, Directive, LoopSpec};
use openarc::runtime::{Coherence, DevSide, Loc, PresentTable, ReadDiag, St, XferDiag};
use openarc::vm::interp::eval_bin;
use openarc::vm::{Handle, MemSpace, Value};
use openarc_minic::ast::BinOp;
use openarc_minic::ScalarTy;

/// Deterministic xorshift64* PRNG — the same sequence on every run.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform-ish i64 in `[lo, hi)`.
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    /// f64 in `[lo, hi)` with coarse granularity (still exercises signs,
    /// magnitudes and fractional parts).
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.below(1_000_000) as f64 / 1_000_000.0)
    }
}

// ---------------------------------------------------------- minic parser

/// Generate a small well-formed expression as text.
fn gen_expr(rng: &mut Rng, depth: u32) -> String {
    let leaf = |rng: &mut Rng| match rng.below(4) {
        0 => rng.int(0, 1000).to_string(),
        1 => format!("{}.5", rng.below(100)),
        2 => "x".to_string(),
        _ => "y".to_string(),
    };
    if depth == 0 || rng.below(3) == 0 {
        return leaf(rng);
    }
    let a = gen_expr(rng, depth - 1);
    let b = gen_expr(rng, depth - 1);
    let op = ["+", "-", "*"][rng.below(3) as usize];
    format!("({a} {op} {b})")
}

/// parse ∘ print ∘ parse is the identity (up to formatting).
#[test]
fn parser_pretty_round_trip() {
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..64 {
        let e = gen_expr(&mut rng, 3);
        let src = format!("double x;\ndouble y;\ndouble z;\nvoid main() {{ z = {e}; }}");
        let p1 = parse(&src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse(&printed).expect("re-parse");
        assert_eq!(print_program(&p1), print_program(&p2), "{e}");
    }
}

/// VM integer arithmetic matches native Rust (wrapping semantics).
#[test]
fn vm_int_arith_matches_native() {
    let mut rng = Rng::new(1);
    let mut cases: Vec<(i64, i64)> =
        vec![(0, 0), (1, -1), (-10_000, 9_999), (9_999, -10_000), (7, 0)];
    for _ in 0..200 {
        cases.push((rng.int(-10_000, 10_000), rng.int(-10_000, 10_000)));
    }
    for (a, b) in cases {
        assert_eq!(
            eval_bin(BinOp::Add, Value::Int(a), Value::Int(b)).unwrap(),
            Value::Int(a.wrapping_add(b))
        );
        assert_eq!(
            eval_bin(BinOp::Mul, Value::Int(a), Value::Int(b)).unwrap(),
            Value::Int(a.wrapping_mul(b))
        );
        if b != 0 {
            assert_eq!(
                eval_bin(BinOp::Div, Value::Int(a), Value::Int(b)).unwrap(),
                Value::Int(a / b)
            );
        }
    }
}

/// VM double arithmetic matches native f64 bit-for-bit.
#[test]
fn vm_f64_arith_matches_native() {
    let mut rng = Rng::new(2);
    for _ in 0..200 {
        let a = rng.f64(-1e6, 1e6);
        let b = rng.f64(-1e6, 1e6);
        for (op, expect) in [
            (BinOp::Add, a + b),
            (BinOp::Sub, a - b),
            (BinOp::Mul, a * b),
        ] {
            match eval_bin(op, Value::F64(a), Value::F64(b)).unwrap() {
                Value::F64(v) => assert_eq!(v.to_bits(), expect.to_bits(), "{a} {op:?} {b}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

/// Comparisons always yield canonical 0/1 ints.
#[test]
fn vm_comparisons_are_boolean() {
    for a in -5i64..=5 {
        for b in -5i64..=5 {
            for op in [
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
                BinOp::Eq,
                BinOp::Ne,
            ] {
                match eval_bin(op, Value::Int(a), Value::Int(b)).unwrap() {
                    Value::Int(v) => assert!(v == 0 || v == 1),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }
}

// ----------------------------------------------------- memory space

/// Whatever is stored is loaded back (after elem-type coercion).
#[test]
fn memspace_store_load_round_trip() {
    let mut rng = Rng::new(3);
    for len in [1usize, 2, 7, 63] {
        let vals: Vec<f64> = (0..len).map(|_| rng.f64(-1e9, 1e9)).collect();
        let mut m = MemSpace::new();
        let h = m.alloc(ScalarTy::Double, vals.len(), "buf");
        for (i, v) in vals.iter().enumerate() {
            m.store(h, i as u64, Value::F64(*v)).unwrap();
        }
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(m.load(h, i as u64).unwrap(), Value::F64(*v));
        }
        assert_eq!(m.get(h).unwrap().size_bytes(), vals.len() as u64 * 8);
    }
}

/// Byte accounting never goes negative and peak is monotone.
#[test]
fn memspace_accounting_invariants() {
    let mut rng = Rng::new(4);
    for round in 0..10 {
        let sizes: Vec<usize> = (0..(1 + round * 2))
            .map(|_| 1 + rng.below(127) as usize)
            .collect();
        let mut m = MemSpace::new();
        let mut hs = Vec::new();
        let mut peak = 0;
        for (i, len) in sizes.iter().enumerate() {
            hs.push(m.alloc(ScalarTy::Double, *len, format!("b{i}")));
            peak = peak.max(m.allocated_bytes());
            assert_eq!(m.peak_bytes(), peak);
        }
        for h in hs {
            m.free(h).unwrap();
        }
        assert_eq!(m.allocated_bytes(), 0);
        assert_eq!(m.peak_bytes(), peak);
    }
}

// ----------------------------------------------------- present table

/// Retain/release counts balance; device handle stable until drop.
#[test]
fn present_table_refcount_balance() {
    for extra in 0u32..6 {
        let mut t = PresentTable::new();
        let host = Handle(7);
        let dev = Handle(9);
        t.insert(host, dev, "a").unwrap();
        for _ in 0..extra {
            t.retain(host).unwrap();
        }
        for _ in 0..extra {
            assert_eq!(t.release(host).unwrap(), None);
            assert_eq!(t.device_of(host), Some(dev));
        }
        assert_eq!(t.release(host).unwrap(), Some(dev));
        assert!(!t.contains(host));
    }
}

// ----------------------------------------------- coherence machine

/// After any event sequence: the two copies are never both stale, a
/// transfer to a side makes reads on that side clean, and a remote write
/// makes the untouched side dirty.
#[test]
fn coherence_transfer_always_cleans() {
    let mut rng = Rng::new(5);
    for _ in 0..100 {
        let mut c = Coherence::new(true);
        let h = Handle(3);
        c.track(h, "a");
        let n_ops = rng.below(40);
        for _ in 0..n_ops {
            match rng.below(6) {
                0 => {
                    c.on_write(h, DevSide::Cpu, false);
                }
                1 => {
                    c.on_write(h, DevSide::Gpu, false);
                }
                2 => {
                    c.on_write(h, DevSide::Cpu, true);
                }
                3 => {
                    c.on_write(h, DevSide::Gpu, true);
                }
                4 => {
                    c.on_transfer(h, DevSide::Cpu);
                }
                _ => {
                    c.on_transfer(h, DevSide::Gpu);
                }
            }
            // Invariant: the two copies are never both stale — someone
            // holds the latest data.
            let v = c.state(h).unwrap();
            assert!(
                !(v.cpu == St::Stale && v.gpu() == St::Stale),
                "both sides stale: {v:?}"
            );
        }
        // A transfer in always cleans the destination.
        c.on_transfer(h, DevSide::Cpu);
        assert_eq!(c.check_read(h, DevSide::Cpu), ReadDiag::Ok);
        c.on_write(h, DevSide::Cpu, false);
        assert_eq!(c.check_read(h, DevSide::Gpu), ReadDiag::Missing);
    }
}

/// Tiny executable reference model of the §III-B state machine, written
/// directly from the paper's prose (not from the tracker's code): two
/// independent per-side states, writes stale the remote copy, transfers
/// clean the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ModelVar {
    cpu: St,
    gpu: St,
}

impl ModelVar {
    fn new() -> ModelVar {
        ModelVar {
            cpu: St::NotStale,
            gpu: St::NotStale,
        }
    }

    fn get(&self, side: DevSide) -> St {
        match side {
            DevSide::Cpu => self.cpu,
            DevSide::Gpu => self.gpu,
        }
    }

    fn set(&mut self, side: DevSide, st: St) {
        match side {
            DevSide::Cpu => self.cpu = st,
            DevSide::Gpu => self.gpu = st,
        }
    }

    fn check_read(&self, side: DevSide) -> ReadDiag {
        match self.get(side) {
            St::Stale => ReadDiag::Missing,
            St::MayStale => ReadDiag::MayMissing,
            St::NotStale => ReadDiag::Ok,
        }
    }

    fn on_write(&mut self, side: DevSide, total: bool) -> ReadDiag {
        let before = self.get(side);
        // Partially overwriting a stale copy means the read part of the
        // region may be outdated — the paper's may-missing case.
        let diag = if before == St::Stale && !total {
            ReadDiag::MayMissing
        } else {
            ReadDiag::Ok
        };
        let local = if total || before == St::NotStale {
            St::NotStale
        } else {
            St::MayStale
        };
        self.set(side, local);
        self.set(side.other(), St::Stale);
        diag
    }

    fn on_transfer(&mut self, dst: DevSide) -> XferDiag {
        let incorrect = match self.get(dst.other()) {
            St::Stale => Some(true),
            St::MayStale => Some(false),
            St::NotStale => None,
        };
        let redundant = match self.get(dst) {
            St::NotStale => Some(true),
            St::MayStale => Some(false),
            St::Stale => None,
        };
        self.set(dst, St::NotStale);
        XferDiag {
            incorrect,
            redundant,
        }
    }
}

fn rand_side(rng: &mut Rng) -> DevSide {
    if rng.below(2) == 0 {
        DevSide::Cpu
    } else {
        DevSide::Gpu
    }
}

fn rand_st(rng: &mut Rng) -> St {
    match rng.below(3) {
        0 => St::NotStale,
        1 => St::MayStale,
        _ => St::Stale,
    }
}

/// Drive one random op sequence through the tracker and the model in
/// lockstep, asserting every diagnosis and every visible state agrees.
fn drive_coherence_vs_model(seed: u64, ops: usize) {
    let mut rng = Rng::new(seed);
    let handles = [Handle(1), Handle(2), Handle(3)];
    let mut c = Coherence::new(true);
    // `None` = untracked: the tracker answers Ok / all-None for those, and
    // `track` only initialises state for handles it is not already holding.
    let mut model: [Option<ModelVar>; 3] = [None, None, None];

    for step in 0..ops {
        let i = rng.below(handles.len() as u64) as usize;
        let h = handles[i];
        let ctx = format!("seed={seed} step={step} h={h:?}");
        match rng.below(7) {
            0 => {
                c.track(h, "v");
                if model[i].is_none() {
                    model[i] = Some(ModelVar::new());
                }
            }
            1 => {
                c.untrack(h);
                model[i] = None;
            }
            2 => {
                let side = rand_side(&mut rng);
                let want = model[i].map_or(ReadDiag::Ok, |m| m.check_read(side));
                assert_eq!(c.check_read(h, side), want, "check_read {ctx}");
            }
            3 => {
                let side = rand_side(&mut rng);
                let total = rng.below(2) == 0;
                let want = model[i]
                    .as_mut()
                    .map_or(ReadDiag::Ok, |m| m.on_write(side, total));
                assert_eq!(c.on_write(h, side, total), want, "on_write {ctx}");
            }
            4 => {
                let dst = rand_side(&mut rng);
                let want = model[i].as_mut().map_or(
                    XferDiag {
                        incorrect: None,
                        redundant: None,
                    },
                    |m| m.on_transfer(dst),
                );
                assert_eq!(c.on_transfer(h, dst), want, "on_transfer {ctx}");
            }
            5 => {
                let side = rand_side(&mut rng);
                let st = rand_st(&mut rng);
                c.reset_status(h, side, st);
                if let Some(m) = model[i].as_mut() {
                    m.set(side, st);
                }
            }
            _ => {
                // Pure observation: visible state must match the model.
                match (c.state(h), model[i]) {
                    (Some(v), Some(m)) => {
                        assert_eq!(v.cpu, m.cpu, "cpu state {ctx}");
                        assert_eq!(v.gpu(), m.gpu, "gpu state {ctx}");
                    }
                    (None, None) => {}
                    (got, want) => panic!("tracked-ness mismatch {ctx}: {got:?} vs {want:?}"),
                }
            }
        }
    }
    // Final state agreement on every handle.
    for (i, h) in handles.iter().enumerate() {
        match (c.state(*h), model[i]) {
            (Some(v), Some(m)) => {
                assert_eq!(
                    (v.cpu, v.gpu()),
                    (m.cpu, m.gpu),
                    "final state seed={seed} h={h:?}"
                );
            }
            (None, None) => {}
            (got, want) => panic!("final tracked-ness seed={seed} h={h:?}: {got:?} vs {want:?}"),
        }
    }
}

/// The tracker agrees with the reference model on every diagnosis (missing,
/// may-missing, redundant, incorrect) over long random op sequences — it
/// never reports a finding the model doesn't, and never misses one the
/// model predicts. Fixed seeds keep the run deterministic; CI adds an
/// extra sequence per matrix seed through `OPENARC_PROP_SEED`.
#[test]
fn coherence_tracker_matches_reference_model() {
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        drive_coherence_vs_model(seed, 600);
    }
    if let Some(extra) = std::env::var("OPENARC_PROP_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        drive_coherence_vs_model(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1), 600);
    }
}

// --------------------------------------- N-device coherence model

/// N-device generalisation of the §III-B reference model: one CPU copy
/// plus one copy per simulated device. A write at any location stales
/// every *other* location; a transfer between any two locations cleans
/// the destination and diagnoses against the source. Written from the
/// rules, not from the tracker's code.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ModelVarN {
    cpu: St,
    gpus: Vec<St>,
}

impl ModelVarN {
    fn new(n_devices: usize) -> ModelVarN {
        ModelVarN {
            cpu: St::NotStale,
            gpus: vec![St::NotStale; n_devices],
        }
    }

    fn at(&self, loc: Loc) -> St {
        match loc {
            Loc::Cpu => self.cpu,
            Loc::Dev(d) => self.gpus[d.0 as usize],
        }
    }

    fn set_at(&mut self, loc: Loc, st: St) {
        match loc {
            Loc::Cpu => self.cpu = st,
            Loc::Dev(d) => self.gpus[d.0 as usize] = st,
        }
    }

    fn locs(&self) -> Vec<Loc> {
        let mut out = vec![Loc::Cpu];
        out.extend((0..self.gpus.len()).map(|i| Loc::Dev(DeviceId(i as u32))));
        out
    }

    fn check_read_at(&self, loc: Loc) -> ReadDiag {
        match self.at(loc) {
            St::Stale => ReadDiag::Missing,
            St::MayStale => ReadDiag::MayMissing,
            St::NotStale => ReadDiag::Ok,
        }
    }

    fn on_write_at(&mut self, loc: Loc, total: bool) -> ReadDiag {
        let before = self.at(loc);
        let diag = if before == St::Stale && !total {
            ReadDiag::MayMissing
        } else {
            ReadDiag::Ok
        };
        let local = if total || before == St::NotStale {
            St::NotStale
        } else {
            St::MayStale
        };
        for other in self.locs() {
            if other != loc {
                self.set_at(other, St::Stale);
            }
        }
        self.set_at(loc, local);
        diag
    }

    fn on_transfer_between(&mut self, src: Loc, dst: Loc) -> XferDiag {
        let incorrect = match self.at(src) {
            St::Stale => Some(true),
            St::MayStale => Some(false),
            St::NotStale => None,
        };
        let redundant = match self.at(dst) {
            St::NotStale => Some(true),
            St::MayStale => Some(false),
            St::Stale => None,
        };
        self.set_at(dst, St::NotStale);
        XferDiag {
            incorrect,
            redundant,
        }
    }
}

fn rand_loc(rng: &mut Rng, n_devices: usize) -> Loc {
    let i = rng.below(n_devices as u64 + 1);
    if i == 0 {
        Loc::Cpu
    } else {
        Loc::Dev(DeviceId((i - 1) as u32))
    }
}

/// Drive one random op stream through an N-device tracker and the model
/// in lockstep, asserting every per-op diagnosis and the final state of
/// every handle on every location agree.
fn drive_coherence_vs_model_n(seed: u64, n_devices: usize, ops: usize) {
    let mut rng = Rng::new(seed);
    let handles = [Handle(1), Handle(2), Handle(3)];
    let mut c = Coherence::with_devices(true, n_devices);
    let mut model: [Option<ModelVarN>; 3] = [None, None, None];

    for step in 0..ops {
        let i = rng.below(handles.len() as u64) as usize;
        let h = handles[i];
        let ctx = format!("seed={seed} devices={n_devices} step={step} h={h:?}");
        match rng.below(7) {
            0 => {
                c.track(h, "v");
                if model[i].is_none() {
                    model[i] = Some(ModelVarN::new(n_devices));
                }
            }
            1 => {
                c.untrack(h);
                model[i] = None;
            }
            2 => {
                let loc = rand_loc(&mut rng, n_devices);
                let want = model[i]
                    .as_ref()
                    .map_or(ReadDiag::Ok, |m| m.check_read_at(loc));
                assert_eq!(c.check_read_at(h, loc), want, "check_read_at {ctx}");
            }
            3 => {
                let loc = rand_loc(&mut rng, n_devices);
                let total = rng.below(2) == 0;
                let want = model[i]
                    .as_mut()
                    .map_or(ReadDiag::Ok, |m| m.on_write_at(loc, total));
                assert_eq!(c.on_write_at(h, loc, total), want, "on_write_at {ctx}");
            }
            4 => {
                // Transfer between two distinct locations: host↔device or
                // device↔device.
                let src = rand_loc(&mut rng, n_devices);
                let mut dst = rand_loc(&mut rng, n_devices);
                while dst == src {
                    dst = rand_loc(&mut rng, n_devices);
                }
                let want = model[i].as_mut().map_or(
                    XferDiag {
                        incorrect: None,
                        redundant: None,
                    },
                    |m| m.on_transfer_between(src, dst),
                );
                assert_eq!(
                    c.on_transfer_between(h, src, dst),
                    want,
                    "on_transfer_between {ctx}"
                );
            }
            5 => {
                let loc = rand_loc(&mut rng, n_devices);
                let st = rand_st(&mut rng);
                c.reset_status_at(h, loc, st);
                if let Some(m) = model[i].as_mut() {
                    m.set_at(loc, st);
                }
            }
            _ => match (c.state(h), model[i].as_ref()) {
                (Some(v), Some(m)) => {
                    assert_eq!(v.cpu, m.cpu, "cpu state {ctx}");
                    assert_eq!(v.gpus(), &m.gpus[..], "gpu states {ctx}");
                }
                (None, None) => {}
                (got, want) => panic!("tracked-ness mismatch {ctx}: {got:?} vs {want:?}"),
            },
        }
    }
    for (i, h) in handles.iter().enumerate() {
        match (c.state(*h), model[i].as_ref()) {
            (Some(v), Some(m)) => {
                assert_eq!(v.cpu, m.cpu, "final cpu seed={seed} h={h:?}");
                assert_eq!(v.gpus(), &m.gpus[..], "final gpus seed={seed} h={h:?}");
            }
            (None, None) => {}
            (got, want) => panic!("final tracked-ness seed={seed} h={h:?}: {got:?} vs {want:?}"),
        }
    }
}

/// The per-device tracker agrees with the N-device reference model on
/// every diagnosis and every visible state over long random op streams,
/// for 2–4 simulated devices. The single-device case is covered by
/// [`coherence_tracker_matches_reference_model`] through the two-sided
/// wrappers, so together the two tests pin both views of the tracker.
#[test]
fn coherence_tracker_matches_reference_model_n_devices() {
    for n_devices in 2..=4 {
        for seed in [0xB0B0_0001_u64, 0xB0B0_0002, 0xB0B0_0003] {
            drive_coherence_vs_model_n(seed ^ (n_devices as u64) << 32, n_devices, 600);
        }
    }
    if let Some(extra) = std::env::var("OPENARC_PROP_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        drive_coherence_vs_model_n(extra.wrapping_mul(0x2545_F491_4F6C_DD1D).max(1), 3, 600);
    }
}

/// A disabled tracker is observably inert under any op sequence: every
/// check returns Ok / all-None and no state is ever materialised.
#[test]
fn coherence_disabled_tracker_stays_silent() {
    let mut rng = Rng::new(0xD15AB1ED);
    let mut c = Coherence::new(false);
    let h = Handle(9);
    for _ in 0..300 {
        match rng.below(6) {
            0 => c.track(h, "v"),
            1 => {
                let side = rand_side(&mut rng);
                assert_eq!(c.check_read(h, side), ReadDiag::Ok);
            }
            2 => {
                let side = rand_side(&mut rng);
                assert_eq!(c.on_write(h, side, rng.below(2) == 0), ReadDiag::Ok);
            }
            3 => {
                let dst = rand_side(&mut rng);
                let d = c.on_transfer(h, dst);
                assert_eq!(d.incorrect, None);
                assert_eq!(d.redundant, None);
            }
            4 => {
                let side = rand_side(&mut rng);
                let st = rand_st(&mut rng);
                c.reset_status(h, side, st);
            }
            _ => assert!(c.state(h).is_none()),
        }
    }
    assert!(c.state(h).is_none());
}

// ------------------------------------------------ directive parsing

/// Directive display round-trips through the parser for every clause
/// combination in the grid.
#[test]
fn directive_display_round_trip() {
    let names = ["aa", "bb", "cc"];
    for gang in [false, true] {
        for worker in [false, true] {
            for asyncq in [None, Some(0i64), Some(3), Some(7)] {
                for n_copy in 0usize..3 {
                    for n_create in 0usize..3 {
                        let mut spec = openarc::openacc::ComputeSpec {
                            combined_loop: true,
                            async_queue: asyncq,
                            loop_spec: LoopSpec {
                                gang,
                                worker,
                                ..Default::default()
                            },
                            ..Default::default()
                        };
                        if n_copy > 0 {
                            spec.data
                                .push(DataClause::of(DataClauseKind::Copy, &names[..n_copy]));
                        }
                        if n_create > 0 {
                            spec.data
                                .push(DataClause::of(DataClauseKind::Create, &names[..n_create]));
                        }
                        let d = Directive::Compute(spec);
                        let text = d.to_string();
                        let parsed = parse_directive(&text, openarc::minic::Span::dummy())
                            .expect("parse")
                            .expect("acc directive");
                        assert_eq!(d, parsed);
                    }
                }
            }
        }
    }
}

// --------------------------------------- cost-aware device placement

/// Build one random launch site over a small shared variable pool.
fn gen_site(rng: &mut Rng, idx: usize, n_vars: u64) -> openarc::core::ir::KernelInfo {
    let var = |i: u64| format!("v{i}");
    let mut reads = Vec::new();
    for _ in 0..rng.below(3) {
        let v = var(rng.below(n_vars));
        if !reads.contains(&v) {
            reads.push(v);
        }
    }
    let mut writes = vec![var(rng.below(n_vars))];
    if rng.below(2) == 0 {
        let v = var(rng.below(n_vars));
        if !writes.contains(&v) {
            writes.push(v);
        }
    }
    openarc::core::ir::KernelInfo {
        name: format!("k{idx}"),
        seq_name: format!("__seq_k{idx}"),
        n_threads_global: format!("__n_k{idx}"),
        params: Vec::new(),
        actions: Vec::new(),
        gpu_reads: reads,
        gpu_writes: writes,
        hoisted_writes: Vec::new(),
        reductions: Vec::new(),
        knowledge: Default::default(),
        wave_override: None,
        queue: None,
        if_global: None,
        stmt: Default::default(),
        line: 0,
    }
}

/// One random DAG + cost table + device count, checked against the EFT
/// planner's invariants.
fn drive_eft_invariants(seed: u64, rounds: u64) {
    use openarc::core::exec::dag::cost::{eft_plan, evaluate_plan, CostTable, SiteCost};
    use openarc::core::exec::dag::DepDag;
    use openarc::gpusim::CostModel;

    let mut rng = Rng::new(seed);
    let model = CostModel::default();
    for _ in 0..rounds {
        let n_sites = 2 + rng.below(11) as usize;
        let n_vars = 3 + rng.below(6);
        let kernels: Vec<_> = (0..n_sites)
            .map(|i| gen_site(&mut rng, i, n_vars))
            .collect();
        let dag = DepDag::build(&kernels);
        let costs = CostTable {
            sites: (0..n_sites)
                .map(|_| SiteCost {
                    kernel_us: 1.0 + rng.f64(0.0, 500.0),
                    stage_us: rng.f64(0.0, 100.0),
                })
                .collect(),
            mult: (0..n_sites).map(|_| 1 + rng.below(8)).collect(),
        };
        let n_devices = 2 + rng.below(3) as usize;

        let eft = eft_plan(&dag, &costs, &model, n_devices);

        // Every RAW/WAR/WAW edge is respected: a site never starts before
        // each of its dependencies finishes on the predicted timeline.
        for (j, deps) in dag.deps.iter().enumerate() {
            for &i in deps {
                assert!(
                    eft.start_us[j] >= eft.finish_us[i],
                    "seed {seed:#x}: site {j} starts {:.3} before dep {i} finishes {:.3}",
                    eft.start_us[j],
                    eft.finish_us[i]
                );
            }
        }

        // The portfolio guarantee: EFT's model-predicted objective
        // (makespan, then bottleneck device load) is never worse than
        // round-robin's under the same evaluator — in particular the
        // predicted makespan itself never exceeds round-robin's.
        let rr = evaluate_plan(&dag, &costs, &model, &dag.device_plan(n_devices), n_devices);
        assert!(
            eft.objective() <= rr.objective(),
            "seed {seed:#x}: EFT objective {:?} exceeds round-robin {:?}",
            eft.objective(),
            rr.objective()
        );
        assert!(
            eft.makespan_us <= rr.makespan_us,
            "seed {seed:#x}: EFT makespan {:.3} exceeds round-robin {:.3}",
            eft.makespan_us,
            rr.makespan_us
        );

        // Deterministic: the same inputs always produce the same plan.
        let again = eft_plan(&dag, &costs, &model, n_devices);
        assert_eq!(eft.plan, again.plan);
        assert_eq!(eft.makespan_us, again.makespan_us);

        // One device collapses every policy to the all-primary plan.
        let single = eft_plan(&dag, &costs, &model, 1);
        assert!(single.plan.iter().all(|d| *d == DeviceId::PRIMARY));
    }
}

/// The EFT placement respects every dependency edge and never predicts a
/// longer makespan than round-robin, over random footprint DAGs and cost
/// tables. Fixed seeds keep runs deterministic; CI adds an extra sequence
/// per matrix seed through `OPENARC_PROP_SEED`.
#[test]
fn eft_placement_respects_edges_and_beats_round_robin() {
    for seed in [0xDA6_0001u64, 0xDA6_0002, 0xDA6_0003] {
        drive_eft_invariants(seed, 60);
    }
    if let Some(extra) = std::env::var("OPENARC_PROP_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        drive_eft_invariants(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1), 60);
    }
}
