//! Suite-wide invariants: every benchmark must verify clean when healthy,
//! and the fault-injection protocol must behave per Table 2 on each one.

use openarc::core::faults::strip_privatization;
use openarc::prelude::*;

#[test]
fn every_benchmark_verifies_clean_when_healthy() {
    for b in openarc::suite::all(Scale::default()) {
        let (p, s) = frontend(b.source(Variant::Optimized)).unwrap();
        let (tr, report) = verify_kernels(
            &p,
            &s,
            &TranslateOptions::default(),
            VerifyOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(
            report.flagged().is_empty(),
            "{}: healthy program flagged: {:?}",
            b.name,
            report.flagged()
        );
        // Every kernel actually ran under verification at least once.
        for k in &report.kernels {
            assert!(k.launches > 0, "{}: {} never verified", b.name, k.kernel);
            assert!(k.compared_elems > 0 || k.kernel.is_empty() || k.launches > 0);
        }
        assert_eq!(tr.kernels.len(), b.n_kernels, "{}", b.name);
    }
}

#[test]
fn fault_injection_never_escapes_detection_when_output_corrupting() {
    // For each benchmark: if the stripped program's normal run corrupts
    // outputs relative to its sequential reference, verification must flag
    // at least one kernel (the paper's central Table 2 claim).
    for b in openarc::suite::all(Scale::default()) {
        let (p, s) = frontend(b.source(Variant::Optimized)).unwrap();
        let (stripped, st) = strip_privatization(&p).unwrap();
        if st.private_removed + st.reductions_removed == 0 {
            continue;
        }
        let topts = TranslateOptions {
            auto_privatize: false,
            auto_reduction: false,
            ..Default::default()
        };
        let tr = match translate(&stripped, &s, &topts) {
            Ok(tr) => tr,
            Err(e) => panic!("{}: {e:?}", b.name),
        };
        // Ground truth: does the race corrupt final outputs?
        let cpu = execute(
            &tr,
            &ExecOptions {
                mode: ExecMode::CpuOnly,
                race_detect: false,
                ..Default::default()
            },
        )
        .unwrap();
        let gpu = execute(&tr, &ExecOptions::default()).unwrap();
        let reference = openarc::core::interactive::capture_outputs(&tr, &cpu, &b.outputs);
        let corrupted = !openarc::core::interactive::outputs_match(
            &tr,
            &gpu,
            &reference,
            b.outputs.tol.max(1e-9),
        );
        // Verification verdict.
        let (_, report) = verify_kernels(&stripped, &s, &topts, VerifyOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        if corrupted {
            assert!(
                !report.flagged().is_empty(),
                "{}: outputs corrupted but verification silent",
                b.name
            );
        }
        // And the race oracle must have seen something whenever clauses
        // were stripped from a kernel that actually races.
        if !report.flagged().is_empty() {
            assert!(
                !report.races.is_empty(),
                "{}: flagged without any oracle-visible race",
                b.name
            );
        }
    }
}

#[test]
fn every_variant_matches_its_sequential_reference() {
    // Transfer annotations must not change semantics: each variant's
    // device run agrees with its own sequential execution.
    for b in openarc::suite::all(Scale::default()) {
        for v in Variant::ALL {
            let (p, s) = frontend(b.source(v)).unwrap();
            let tr = translate(&p, &s, &TranslateOptions::default()).unwrap();
            let r = execute(
                &tr,
                &ExecOptions {
                    race_detect: false,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{} [{}]: {e}", b.name, v.name()));
            let cpu = execute(
                &tr,
                &ExecOptions {
                    mode: ExecMode::CpuOnly,
                    race_detect: false,
                    ..Default::default()
                },
            )
            .unwrap();
            let reference = openarc::core::interactive::capture_outputs(&tr, &cpu, &b.outputs);
            assert!(
                openarc::core::interactive::outputs_match(
                    &tr,
                    &r,
                    &reference,
                    b.outputs.tol.max(1e-9)
                ),
                "{} [{}] diverges from its reference",
                b.name,
                v.name()
            );
        }
    }
}

#[test]
fn naive_variant_moves_at_least_as_much_data() {
    for b in openarc::suite::all(Scale::default()) {
        let eopts = ExecOptions {
            race_detect: false,
            ..Default::default()
        };
        let naive = openarc::suite::run_variant(&b, Variant::Naive, &Default::default(), &eopts)
            .unwrap()
            .1;
        let unopt =
            openarc::suite::run_variant(&b, Variant::Unoptimized, &Default::default(), &eopts)
                .unwrap()
                .1;
        let opt = openarc::suite::run_variant(&b, Variant::Optimized, &Default::default(), &eopts)
            .unwrap()
            .1;
        let (nb, ub, ob) = (
            naive.machine.stats.total_bytes(),
            unopt.machine.stats.total_bytes(),
            opt.machine.stats.total_bytes(),
        );
        assert!(nb >= ob, "{}: naive {} < optimized {}", b.name, nb, ob);
        assert!(
            ub >= ob,
            "{}: unoptimized {} < optimized {}",
            b.name,
            ub,
            ob
        );
    }
}
