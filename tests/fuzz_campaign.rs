//! Campaign-level integration properties: journal-derived coverage
//! signatures are a pure function of the input program (stable across
//! `--jobs`), and whole campaigns are bit-reproducible from the seed.

use openarc::core::fuzz::{run_campaign, CampaignConfig};
use openarc::suite::{jacobi, Scale};

fn scale() -> Scale {
    Scale { n: 8, iters: 2 }
}

/// JACOBI's coverage signature at `jobs` worker threads: an empty
/// campaign (no generated programs) over a one-benchmark baseline
/// harvests exactly the baseline's journal atoms.
fn jacobi_signature(jobs: usize) -> (Vec<String>, u64) {
    let b = jacobi::benchmark(scale());
    let cfg = CampaignConfig {
        seed: 7,
        max_programs: 0,
        jobs,
        baseline: vec![b.optimized.clone()],
        ..Default::default()
    };
    let r = run_campaign(&cfg);
    let atoms: Vec<String> = r.baseline_coverage.iter().map(|a| a.to_string()).collect();
    (atoms, r.baseline_coverage.fingerprint())
}

#[test]
fn jacobi_signature_is_jobs_stable() {
    let (atoms1, fp1) = jacobi_signature(1);
    let (atoms4, fp4) = jacobi_signature(4);
    assert!(!atoms1.is_empty(), "JACOBI must produce coverage atoms");
    assert_eq!(atoms1, atoms4, "signature atoms differ across --jobs");
    assert_eq!(fp1, fp4, "signature fingerprint differs across --jobs");
}

#[test]
fn jacobi_signature_covers_the_pipeline_stages() {
    // Regression-pin the load-bearing atom families rather than the full
    // set: kernel launches, memory traffic, and a clean output verdict
    // must all appear in JACOBI's journal-derived signature.
    let (atoms, _) = jacobi_signature(1);
    for prefix in [
        "event:kernel-launch",
        "launch:",
        "transfer:",
        "coh:",
        "verdict:pass",
    ] {
        assert!(
            atoms.iter().any(|a| a.starts_with(prefix)),
            "JACOBI signature lost the `{prefix}` atom family: {atoms:?}"
        );
    }
}

#[test]
fn campaign_report_is_bit_reproducible_across_jobs() {
    let run = |jobs: usize| {
        let cfg = CampaignConfig {
            seed: 99,
            max_programs: 48,
            jobs,
            ..Default::default()
        };
        run_campaign(&cfg)
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.programs, 48);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.racy, b.racy);
    assert_eq!(a.corpus, b.corpus);
}

#[test]
fn campaign_expands_coverage_beyond_the_benchmark_baseline() {
    let baseline: Vec<String> = openarc::suite::reduced_corpus(scale())
        .into_iter()
        .map(|(_, src)| src)
        .collect();
    let cfg = CampaignConfig {
        seed: 3,
        max_programs: 64,
        jobs: 4,
        baseline,
        ..Default::default()
    };
    let r = run_campaign(&cfg);
    assert!(
        !r.new_atoms().is_empty(),
        "64 generated programs must reach atoms the 12 benchmarks do not"
    );
}
