//! Differential tests of the dependency-DAG verified executor against the
//! sequential oracle, across the whole benchmark suite.
//!
//! The refactor's central invariant: `dagJobs=1, devices=1` *is* the
//! sequential oracle — every launch retires before the next issues, on the
//! primary device, producing the identical f64 addition sequence on the
//! simulated clock and the identical journal event stream, *for every
//! placement policy* (with one device there is nothing to place). Larger
//! windows and device counts may reorder *accounting* on the simulated
//! timeline, but never change what verification observes: verdicts,
//! comparison counts, maximum errors, coherence reports and race oracles
//! are bit-identical for every configuration in the placement × dagJobs ×
//! devices matrix.

use openarc::core::exec::dag::cost::MeasuredCosts;
use openarc::core::exec::dag::Placement;
use openarc::gpusim::clock::TimeCategory;
use openarc::prelude::*;
use openarc::trace::{EventKind, TraceEvent, Track};

/// Run one benchmark's naive variant under kernel verification with the
/// given DAG window, device count, and placement policy, capturing the
/// journal. `measured` supplies pre-calibrated costs for
/// `placement=measured` (the raw-`execute` path has no session to run the
/// two-pass flow).
fn placed_run(
    b: &Benchmark,
    dag_jobs: usize,
    devices: usize,
    placement: Placement,
    measured: Option<MeasuredCosts>,
) -> (RunResult, Vec<TraceEvent>) {
    let journal = Journal::enabled();
    let eopts = ExecOptions {
        mode: ExecMode::Verify(VerifyOptions {
            dag_jobs,
            devices,
            placement,
            measured,
            ..Default::default()
        }),
        journal: journal.clone(),
        ..Default::default()
    };
    let (_, r) =
        openarc::suite::run_variant(b, Variant::Naive, &TranslateOptions::default(), &eopts)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let events = journal.snapshot();
    (r, events)
}

/// Round-robin shorthand (the historical configuration).
fn verify_run(b: &Benchmark, dag_jobs: usize, devices: usize) -> (RunResult, Vec<TraceEvent>) {
    placed_run(b, dag_jobs, devices, Placement::RoundRobin, None)
}

/// Everything verification *observes* must agree between two runs:
/// per-kernel verdicts (bit-exact errors included), the coherence report,
/// the race oracle, and the launch/instruction counts.
fn assert_observables_identical(name: &str, ctx: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.verify.len(), b.verify.len(), "{name} {ctx}: kernel count");
    for (x, y) in a.verify.iter().zip(&b.verify) {
        assert_eq!(x.kernel, y.kernel, "{name} {ctx}");
        assert_eq!(x.launches, y.launches, "{name} {ctx}: {}", x.kernel);
        assert_eq!(
            x.failed_launches, y.failed_launches,
            "{name} {ctx}: {}",
            x.kernel
        );
        assert_eq!(
            x.compared_elems, y.compared_elems,
            "{name} {ctx}: {}",
            x.kernel
        );
        assert_eq!(
            x.mismatched_elems, y.mismatched_elems,
            "{name} {ctx}: {}",
            x.kernel
        );
        assert_eq!(
            x.max_abs_err.to_bits(),
            y.max_abs_err.to_bits(),
            "{name} {ctx}: {} max_abs_err",
            x.kernel
        );
        assert_eq!(
            x.assertion_failures, y.assertion_failures,
            "{name} {ctx}: {}",
            x.kernel
        );
    }
    assert_eq!(
        a.machine.report.issues, b.machine.report.issues,
        "{name} {ctx}: coherence report"
    );
    assert_eq!(a.races, b.races, "{name} {ctx}: race oracle");
    assert_eq!(a.kernel_launches, b.kernel_launches, "{name} {ctx}");
    assert_eq!(a.host_instrs, b.host_instrs, "{name} {ctx}");
}

/// `dagJobs=1, devices=1` is *bit-identical* to the oracle: same journal
/// event stream (timestamps compared exactly), same clock, same breakdown
/// — under every placement policy, since with one device placement has
/// nothing to decide. Repeated unit-configuration runs pin the executor's
/// determinism and guard the planner against perturbing the sequential
/// path.
#[test]
fn unit_dag_config_is_bit_identical_to_oracle() {
    for b in openarc::suite::all(Scale::default()) {
        let (oracle, oracle_events) = verify_run(&b, 1, 1);
        for placement in [Placement::RoundRobin, Placement::Eft, Placement::Measured] {
            let (dag, dag_events) = placed_run(&b, 1, 1, placement, None);
            let ctx = format!("dagJobs=1 devices=1 placement={}", placement.as_str());
            assert_observables_identical(b.name, &ctx, &oracle, &dag);
            assert_eq!(
                oracle.machine.clock.now().to_bits(),
                dag.machine.clock.now().to_bits(),
                "{}: clock now ({ctx})",
                b.name
            );
            for cat in TimeCategory::ALL.iter() {
                assert_eq!(
                    oracle.machine.clock.breakdown.get(*cat).to_bits(),
                    dag.machine.clock.breakdown.get(*cat).to_bits(),
                    "{}: breakdown {cat:?} ({ctx})",
                    b.name
                );
            }
            assert_eq!(
                oracle_events, dag_events,
                "{}: journal event streams differ ({ctx})",
                b.name
            );
            // Every launch landed on the primary device.
            for e in &dag_events {
                if let EventKind::KernelLaunch { dev, .. } = &e.kind {
                    assert_eq!(*dev, 0, "{}: launch off primary device ({ctx})", b.name);
                }
            }
        }
    }
}

/// Widening the in-flight window, adding devices, and switching placement
/// policies must not change any verification observable on any benchmark:
/// the full `placement ∈ {roundrobin, eft, measured} × dagJobs ∈ {1,4} ×
/// devices ∈ {1,2}` matrix agrees with the sequential oracle bit-for-bit
/// on verdicts, reports and counters. The measured leg calibrates its
/// costs from the round-robin run's journal, exercising the real two-pass
/// data path.
#[test]
fn dag_matrix_matches_oracle_observables_on_every_benchmark() {
    for b in openarc::suite::all(Scale::default()) {
        let (oracle, oracle_events) = verify_run(&b, 1, 1);
        assert!(
            oracle.verify.iter().all(|k| !k.flagged()),
            "{}: oracle flags a healthy program",
            b.name
        );
        let calibration = MeasuredCosts::from_journal(&oracle_events);
        for placement in [Placement::RoundRobin, Placement::Eft, Placement::Measured] {
            for dag_jobs in [1usize, 4] {
                for devices in [1usize, 2] {
                    if dag_jobs == 1 && devices == 1 && placement == Placement::RoundRobin {
                        continue;
                    }
                    let measured = (placement == Placement::Measured).then(|| calibration.clone());
                    let (r, _) = placed_run(&b, dag_jobs, devices, placement, measured);
                    let ctx = format!(
                        "dagJobs={dag_jobs} devices={devices} placement={}",
                        placement.as_str()
                    );
                    assert_observables_identical(b.name, &ctx, &oracle, &r);
                }
            }
        }
    }
}

/// With two devices and a widened window, at least one benchmark in the
/// suite schedules two kernels on *distinct* devices whose device-queue
/// spans overlap on the simulated timeline — the concurrency the DAG
/// executor exists to expose. Checked for both static planners.
#[test]
fn some_benchmark_overlaps_kernels_across_devices() {
    for placement in [Placement::RoundRobin, Placement::Eft] {
        let mut overlapped = Vec::new();
        for b in openarc::suite::all(Scale::default()) {
            let (_, events) = placed_run(&b, 4, 2, placement, None);
            // Kernel execution spans per device queue.
            let spans: Vec<(u32, f64, f64)> = events
                .iter()
                .filter_map(|e| match (&e.kind, &e.track) {
                    (EventKind::KernelComplete { .. }, Track::Queue { dev, .. }) => {
                        Some((*dev, e.ts_us, e.ts_us + e.dur_us))
                    }
                    _ => None,
                })
                .collect();
            let used_second_device = spans.iter().any(|(d, _, _)| *d != 0);
            let has_cross_device_overlap = spans.iter().enumerate().any(|(i, a)| {
                spans[i + 1..]
                    .iter()
                    .any(|b| a.0 != b.0 && a.1 < b.2 && b.1 < a.2)
            });
            if used_second_device && has_cross_device_overlap {
                overlapped.push(b.name);
            }
        }
        assert!(
            !overlapped.is_empty(),
            "no benchmark overlapped kernels across devices (placement={})",
            placement.as_str()
        );
    }
}

/// The pipeline `Session` runs the `placement=measured` two-pass flow
/// itself: pass 1 measures under round-robin, pass 2 re-places with the
/// calibrated costs. Observables still match the oracle, and a warm
/// session serves both passes from cache.
#[test]
fn session_measured_two_pass_matches_oracle() {
    use openarc::core::pipeline::Session;
    let b = &openarc::suite::all(Scale::default())[0];
    let (oracle, _) = verify_run(b, 1, 1);
    let session = Session::builder().build();
    let fe = session.frontend(&b.naive).unwrap();
    let tra = session
        .translate(&fe, &TranslateOptions::default())
        .unwrap();
    let eopts = ExecOptions {
        mode: ExecMode::Verify(VerifyOptions {
            dag_jobs: 4,
            devices: 2,
            placement: Placement::Measured,
            ..Default::default()
        }),
        ..Default::default()
    };
    let r = session.execute(&tra, &eopts).unwrap();
    assert_observables_identical(b.name, "session measured", &oracle, &r);
    // A second invocation is fully cache-served (same fingerprint for
    // both passes) and returns identical observables.
    let again = session.execute(&tra, &eopts).unwrap();
    assert_observables_identical(b.name, "session measured warm", &r, &again);
}
