//! Replay the minimized regression corpus through the full fuzzing
//! oracle. Every entry is either a minimized repro of a bug the fuzzer
//! found (now fixed) or a handcrafted directive-edge program; none of
//! them may ever produce a finding again.

use openarc::core::fuzz::{default_matrix, run_oracle, Verdict};
use openarc::core::pipeline::Session;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_sources() -> Vec<(String, String)> {
    let mut entries: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.expect("readable dir entry").path();
            if p.extension().is_some_and(|x| x == "c") {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                let src = std::fs::read_to_string(&p).expect("readable corpus file");
                Some((name, src))
            } else {
                None
            }
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        corpus_sources().len() >= 6,
        "regression corpus shrank unexpectedly"
    );
}

#[test]
fn corpus_replays_without_findings() {
    let session = Session::builder().build();
    let matrix = default_matrix();
    for (name, src) in corpus_sources() {
        let out = run_oracle(&session, &src, &matrix);
        assert!(
            !matches!(out.verdict, Verdict::Finding(_)),
            "{name}: corpus entry regressed into a finding: {:?}",
            out.verdict
        );
    }
}

#[test]
fn corpus_verdicts_stay_pinned() {
    // Pin the *class* of each regression entry so a silent behaviour
    // change (e.g. a repro starting to reject at the frontend) is as
    // loud as a new finding.
    let session = Session::builder().build();
    let matrix = default_matrix();
    let expect = |name: &str, verdict: &Verdict| match name {
        // Program errors must resolve to rejection, not crash findings.
        "update-not-present.c" => matches!(verdict, Verdict::Rejected(r) if r == "run:not-present"),
        "uninit-private.c" => matches!(verdict, Verdict::Rejected(r) if r == "uninit-private"),
        // The loop-carried dependence must be classified racy.
        "loop-carried-race.c" => matches!(verdict, Verdict::Racy),
        // Everything else executes cleanly through the whole matrix.
        _ => matches!(verdict, Verdict::Clean),
    };
    for (name, src) in corpus_sources() {
        let out = run_oracle(&session, &src, &matrix);
        assert!(
            expect(&name, &out.verdict),
            "{name}: unexpected verdict {:?}",
            out.verdict
        );
    }
}
