//! Cross-crate integration tests: the full OpenACC→simulator pipeline on
//! programs shaped like the paper's listings.

use openarc::core::faults::strip_privatization;
use openarc::prelude::*;

/// The paper's Listing 1, reduced: a CG-style iteration copying `w` into
/// `q` on the device inside a `data create(q, w)` region.
const LISTING1: &str = r#"
double q[64];
double w[64];
double out;
int niter;
int cgitmax;
void main() {
    int it; int cgit; int j;
    niter = 3;
    cgitmax = 2;
    for (j = 0; j < 64; j++) { w[j] = (double) (j + 1); }
    #pragma acc data copyin(w) create(q)
    {
        for (it = 1; it <= niter; it++) {
            for (cgit = 1; cgit <= cgitmax; cgit++) {
                #pragma acc kernels loop gang worker
                for (j = 0; j < 64; j++) { q[j] = w[j]; }
            }
        }
        #pragma acc update host(q)
    }
    out = q[63];
}
"#;

#[test]
fn listing1_pipeline_end_to_end() {
    let (p, s) = frontend(LISTING1).unwrap();
    let tr = translate(&p, &s, &TranslateOptions::default()).unwrap();
    assert_eq!(tr.kernels.len(), 1);
    // 3 × 2 launches of the same kernel.
    let r = execute(&tr, &ExecOptions::default()).unwrap();
    assert_eq!(r.kernel_launches, 6);
    assert_eq!(r.global_scalar(&tr, "out").unwrap().as_f64(), 64.0);
    // The data region keeps q/w resident: exactly one copyin + one update.
    assert_eq!(r.machine.stats.h2d_count, 1);
    assert_eq!(r.machine.stats.d2h_count, 1);
}

#[test]
fn listing2_demotion_then_verification_passes() {
    let (p, s) = frontend(LISTING1).unwrap();
    let demoted = demote_source(&p, &std::iter::once(0).collect(), 1).unwrap();
    let text = openarc::minic::print_program(&demoted);
    assert!(text.contains("async(1)"), "{text}");
    assert!(text.contains("copy(q)"), "{text}");
    assert!(text.contains("copyin(w)"), "{text}");
    // Full verification of the original program: clean, runs per launch.
    let (_, report) = verify_kernels(
        &p,
        &s,
        &TranslateOptions::default(),
        VerifyOptions::default(),
    )
    .unwrap();
    assert!(report.flagged().is_empty());
    assert_eq!(report.kernels[0].launches, 6);
}

#[test]
fn injected_reduction_race_caught_only_when_recognition_off() {
    let src = r#"
double a[128];
double s;
void main() {
    int j;
    for (j = 0; j < 128; j++) { a[j] = 1.0; }
    #pragma acc kernels loop gang worker reduction(+:s)
    for (j = 0; j < 128; j++) { s += a[j]; }
}
"#;
    let (p, s) = frontend(src).unwrap();
    // Healthy: clause present → clean.
    let (_, ok) = verify_kernels(
        &p,
        &s,
        &TranslateOptions::default(),
        VerifyOptions::default(),
    )
    .unwrap();
    assert!(ok.flagged().is_empty());
    // Fault-injected: stripped + recognition off → detected.
    let (bad, _) = strip_privatization(&p).unwrap();
    let topts = TranslateOptions {
        auto_privatize: false,
        auto_reduction: false,
        ..Default::default()
    };
    let (_, flagged) = verify_kernels(&bad, &s, &topts, VerifyOptions::default()).unwrap();
    assert_eq!(flagged.flagged().len(), 1);
    // Recognition ON rescues the stripped program (OpenARC's automatic
    // reduction recognition).
    let (_, rescued) = verify_kernels(
        &bad,
        &s,
        &TranslateOptions::default(),
        VerifyOptions::default(),
    )
    .unwrap();
    assert!(rescued.flagged().is_empty());
}

#[test]
fn jacobi_interactive_reaches_hand_optimized_transfer_count() {
    let b = openarc::suite::jacobi::benchmark(Scale::default());
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let (p, s) = frontend(b.source(Variant::Unoptimized)).unwrap();
    let eopts = ExecOptions {
        race_detect: false,
        ..Default::default()
    };
    let out = optimize_transfers(&p, &s, &topts, &b.outputs, &eopts, 10).unwrap();
    assert!(out.converged);
    assert_eq!(out.incorrect_iterations, 0);
    // Hand-optimized reference.
    let (_, opt) =
        openarc::suite::run_variant(&b, Variant::Optimized, &TranslateOptions::default(), &eopts)
            .unwrap();
    assert_eq!(
        out.final_stats.total_count(),
        opt.machine.stats.total_count(),
        "tool-optimized JACOBI must match the manual transfer pattern"
    );
}

#[test]
fn whole_suite_runs_at_alternate_scale() {
    // Different size/iteration mix than both unit tests and benches.
    let scale = Scale { n: 24, iters: 3 };
    for b in openarc::suite::all(scale) {
        openarc::suite::check_variant(&b, Variant::Optimized).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn figure1_shape_naive_never_beats_optimized() {
    let scale = Scale { n: 24, iters: 3 };
    for b in openarc::suite::all(scale) {
        let eopts = ExecOptions {
            race_detect: false,
            ..Default::default()
        };
        let (_, naive) =
            openarc::suite::run_variant(&b, Variant::Naive, &TranslateOptions::default(), &eopts)
                .unwrap();
        let (_, opt) = openarc::suite::run_variant(
            &b,
            Variant::Optimized,
            &TranslateOptions::default(),
            &eopts,
        )
        .unwrap();
        assert!(
            naive.machine.stats.total_bytes() >= opt.machine.stats.total_bytes(),
            "{}: naive moved less data than optimized?",
            b.name
        );
        assert!(
            naive.sim_time_us() >= opt.sim_time_us() * 0.99,
            "{}: naive {} faster than optimized {}?",
            b.name,
            naive.sim_time_us(),
            opt.sim_time_us()
        );
    }
}
