// Directive edge: two async queues joined by a bare `wait`, then a host
// read of both results. Exercises queue bookkeeping in every
// verificationOptions configuration of the matrix.
double a[16];
double b[16];
double total;
void main(void) {
    int i;
    for (i = 0; i < 16; i += 1) {
        a[i] = (double) i;
        b[i] = (double) i * 0.5;
    }
    #pragma acc data copy(a) copy(b)
    {
        #pragma acc kernels loop gang async(1)
        for (i = 0; i < 16; i += 1) {
            a[i] = a[i] + 1.0;
        }
        #pragma acc kernels loop gang async(2)
        for (i = 0; i < 16; i += 1) {
            b[i] = b[i] * 2.0;
        }
        #pragma acc wait
    }
    for (i = 0; i < 16; i += 1) {
        total = total + (a[i] + b[i]);
    }
}
