// Directive edge: host mutation between kernels inside a data region,
// republished with `update device`, then pulled back with `update host`
// before a host read — the paper's canonical interactive-debugging
// workflow for stale-transfer warnings.
double a[8];
double total;
void main(void) {
    int i;
    for (i = 0; i < 8; i += 1) {
        a[i] = 1.0;
    }
    #pragma acc data copy(a)
    {
        #pragma acc kernels loop gang
        for (i = 0; i < 8; i += 1) {
            a[i] = a[i] * 2.0;
        }
        #pragma acc update host(a)
        for (i = 0; i < 8; i += 1) {
            a[i] = a[i] + 0.5;
        }
        #pragma acc update device(a)
        #pragma acc kernels loop gang
        for (i = 0; i < 8; i += 1) {
            a[i] = a[i] * 3.0;
        }
    }
    for (i = 0; i < 8; i += 1) {
        total = total + a[i];
    }
}
