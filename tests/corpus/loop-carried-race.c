// Regression: a parallelized loop-carried dependence
// (`b[i] = f(b[i-1], b[i])`) escaped the race detector because the
// writer's own read of the element masked the earlier foreign read in
// the per-element last-access table. The detector must classify this
// program as racy so divergence oracles are skipped.
int a[8];
float b[8];
double total;
void main(void) {
    int i;
    for (i = 0; i < 2; i += 1) {
        b[i] = (float) (((double) (i % 4) * 0.5) + 1.0);
    }
    #pragma acc kernels loop gang worker
    for (i = 1; i < 7; i += 1) {
        b[i] = (float) ((double) b[(i - 1)] + ((3.0 * (double) b[i]) * 1.5));
    }
}
