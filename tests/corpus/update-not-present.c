// Regression: `update host(a)` with no enclosing data region used to
// abort the run with an internal-invariant error ("buf not present for
// copyout") instead of the user-facing not-present diagnostic. The
// oracle classifies this program as rejected (program error), never as
// a crash finding.
double a[8];
void main(void) {
    int i;
    for (i = 0; i < 8; i += 1) {
        a[i] = 1.0;
    }
    #pragma acc update host(a)
}
