// Directive edge: a `create` scratch array filled by one kernel and
// consumed by a reduction kernel inside the same region — the scratch
// never moves across the PCI bus, and the reduction result syncs back
// at the construct end.
double a[16];
double s[16];
double total;
void main(void) {
    int i;
    for (i = 0; i < 16; i += 1) {
        a[i] = (double) i + 1.0;
    }
    total = 0.0;
    #pragma acc data copyin(a) create(s)
    {
        #pragma acc kernels loop gang
        for (i = 0; i < 16; i += 1) {
            s[i] = a[i] * a[i];
        }
        #pragma acc kernels loop gang reduction(+:total)
        for (i = 0; i < 16; i += 1) {
            total = total + s[i];
        }
    }
}
