// Regression: `private(tmp)` kernel that reads `tmp` before any write.
// An uninitialized private copy is OpenACC undefined behaviour — the
// sequential reference, the simulated device, and the verify replay may
// all legitimately disagree, so the oracle must reject the program
// instead of reporting a verify divergence.
double a[12];
double c[12];
void main(void) {
    int i;
    int j;
    int t;
    double tmp;
    for (i = 0; i < 2; i += 1) {
        c[i] = (((double) (i % 5) * 0.5) + 1.0);
    }
    for (t = 0; t < 2; t += 1) {
        #pragma acc kernels loop gang private(tmp)
        for (i = 0; i < 2; i += 1) {
            for (j = 0; j < 2; j += 1) {
                tmp = (tmp + ((c[j] * 1.5) * 0.5));
            }
            a[i] = tmp;
        }
    }
}
