// Regression: a host loop mutating `a` while it is mapped by a
// `data copy(a)` region. Region exit copies the entry-snapshot device
// copy back over the host writes — correct OpenACC behaviour that
// diverges from the directive-ignoring CPU reference. The sync model
// must mark `a` stale at exit so the comparison skips it.
float a[8];
void main(void) {
    int i;
    int t;
    #pragma acc data copy(a)
    {
        for (t = 0; t < 1; t += 1) {
            for (i = 0; i < 2; i += 1) {
                a[i] = (a[i] + (float) 1.0);
            }
        }
    }
}
