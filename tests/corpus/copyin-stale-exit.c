// Regression: a `copyin`-only array written on the GPU is legitimately
// stale on the host at program exit (the device result is deliberately
// discarded). The output oracle must exclude `a` from the final-state
// comparison instead of reporting an output divergence.
double a[12];
double c[12];
int d[12];
void main(void) {
    int i;
    int t;
    #pragma acc data copyin(a) copy(c) copy(d)
    {
        for (t = 0; t < 2; t += 1) {
            #pragma acc kernels loop gang worker
            for (i = 1; i < 2; i += 1) {
                a[i] = ((((double) i * 0.125) + c[i]) + ((double) d[(i - 1)] * 0.5));
            }
        }
    }
}
