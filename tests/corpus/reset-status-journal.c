// Regression: the instrumentation pass plants a reset_status after the
// host write to `a` (its GPU copy is must-dead — the kernel never
// touches it). The runtime used to apply that reset to the coherence
// tracker without journaling it, so the event stream showed an
// impossible stale -> notstale jump at the next transition and the
// oracle's coherence-chain validator reported a broken chain.
double a[8];
double b[8];
void main(void) {
    int j;
    a[0] = 1.0;
    #pragma acc kernels loop gang
    for (j = 0; j < 8; j += 1) {
        b[j] = 2.0;
    }
}
