//! Wire-protocol tests of the `openarc serve` daemon through its public
//! API: framing edge cases (garbage, truncated, oversized — error lines,
//! never panics), typed round-trips, admission backpressure, and tenant
//! cache isolation on disk.

use openarc::core::api::{Action, ApiError, ErrorKind, Request, Response};
use openarc::core::serve::{Server, ServerConfig};
use openarc::trace::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

const SAXPY: &str = r#"
double x[32];
double y[32];
void main() {
    int j;
    for (j = 0; j < 32; j++) { x[j] = 1.0; y[j] = (double) j; }
    #pragma acc kernels loop gang worker
    for (j = 0; j < 32; j++) { y[j] = 2.0 * x[j] + y[j]; }
}
"#;

fn start(cfg: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind_tcp(cfg, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run().unwrap()))
}

fn quiet() -> ServerConfig {
    ServerConfig {
        stats_interval: None,
        ..ServerConfig::default()
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn round_trip(&mut self, line: &str) -> Json {
        writeln!(self.stream, "{line}").unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "server closed unexpectedly");
        Json::parse(&reply).unwrap()
    }

    fn shutdown(mut self, handle: std::thread::JoinHandle<()>) {
        let v = self.round_trip(r#"{"action":"shutdown"}"#);
        assert_eq!(v.get("shutdown").and_then(Json::as_bool), Some(true));
        handle.join().unwrap();
    }
}

#[test]
fn typed_request_round_trips_over_the_wire() {
    let (addr, handle) = start(quiet());
    let mut c = Client::connect(addr);
    for action in [Action::Run, Action::Cpu, Action::Check, Action::Verify] {
        let v = c.round_trip(&Request::new(action, SAXPY).to_json().to_string());
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "{action:?}"
        );
        let resp = Response::from_json(v.get("response").unwrap()).unwrap();
        assert_eq!(resp.exit_code, 0, "{action:?}");
        assert!(resp.report.ends_with('\n'), "{action:?}");
    }
    c.shutdown(handle);
}

#[test]
fn framing_abuse_gets_structured_errors_never_a_hang() {
    let (addr, handle) = start(ServerConfig {
        max_frame: 512,
        ..quiet()
    });

    // Garbage and half-typed requests: one error line each, connection
    // stays usable.
    let mut c = Client::connect(addr);
    for (line, needle) in [
        ("}{ not json", "not valid JSON"),
        (
            r#"{"action":"launch-missiles","source":"x"}"#,
            "unknown action",
        ),
        (r#"{"action":"verify"}"#, "missing string field `source`"),
        (
            r#"{"action":"run","source":"x","deadline_ms":"soon"}"#,
            "integer",
        ),
    ] {
        let v = c.round_trip(line);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        let e = ApiError::from_json(v.get("error").unwrap()).unwrap();
        assert_eq!(e.kind, ErrorKind::BadRequest, "{line}");
        assert!(e.message.contains(needle), "{line}: {}", e.message);
    }
    // ...and a well-formed request still succeeds on the same socket.
    let v = c.round_trip(&Request::new(Action::Run, SAXPY).to_json().to_string());
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));

    // Oversized frame: error line, then the server hangs up.
    let mut big = TcpStream::connect(addr).unwrap();
    big.write_all(&vec![b'a'; 2048]).unwrap();
    big.write_all(b"\n").unwrap();
    let mut all = String::new();
    BufReader::new(big).read_to_string(&mut all).unwrap();
    assert!(all.contains("size limit"), "{all}");
    assert_eq!(all.lines().count(), 1, "exactly one error line then EOF");

    // Truncated frame: EOF mid-line is dropped silently and the daemon
    // keeps serving.
    let mut cut = TcpStream::connect(addr).unwrap();
    cut.write_all(b"{\"action\":\"run\",\"sou").unwrap();
    drop(cut);
    let v = c.round_trip(r#"{"action":"stats"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));

    c.shutdown(handle);
}

#[test]
fn overload_refusals_carry_a_retry_hint() {
    // 1 worker and a queue of 1: firing several concurrent requests must
    // refuse at least one with `overloaded` + retry_after_ms, and every
    // accepted one still renders the exact report.
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..quiet()
    });
    let line = Request::new(Action::Run, SAXPY).to_json().to_string();
    let replies: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(|| {
                    let mut c = Client::connect(addr);
                    c.round_trip(&line)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut report: Option<String> = None;
    let mut refused = 0;
    for v in &replies {
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            let resp = Response::from_json(v.get("response").unwrap()).unwrap();
            if let Some(first) = &report {
                assert_eq!(&resp.report, first, "served reports must agree");
            } else {
                report = Some(resp.report);
            }
        } else {
            let e = ApiError::from_json(v.get("error").unwrap()).unwrap();
            assert_eq!(e.kind, ErrorKind::Overloaded);
            assert!(e.retry_after_ms.unwrap_or(0) >= 1, "hint must be nonzero");
            assert_eq!(e.exit_code(), 3);
            refused += 1;
        }
    }
    assert!(report.is_some(), "at least one request must be served");
    // 1 running + 1 queued leaves at least four refusals among six.
    assert!(refused >= 1, "queue bound never engaged");
    let mut c = Client::connect(addr);
    let v = c.round_trip(r#"{"action":"stats"}"#);
    let rejected = v
        .get("stats")
        .and_then(|s| s.get("rejected"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(rejected, refused, "stats must count every refusal");
    c.shutdown(handle);
}

#[test]
fn tenant_namespaces_are_isolated_on_disk_but_share_nothing_warm() {
    let dir = std::env::temp_dir().join(format!("openarc-serve-proto-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..quiet()
    });
    let mut c = Client::connect(addr);
    let mut req = Request::new(Action::Run, SAXPY);
    req.tenant = "alice".into();
    let alice = c.round_trip(&req.to_json().to_string());
    req.tenant = "bob".into();
    let bob = c.round_trip(&req.to_json().to_string());
    // Same program, same bytes out...
    let a = Response::from_json(alice.get("response").unwrap()).unwrap();
    let b = Response::from_json(bob.get("response").unwrap()).unwrap();
    assert_eq!(a.report, b.report);
    // ...but bob compiled from scratch: alice's cached artifacts are
    // invisible across the namespace boundary, in memory and on disk.
    let v = c.round_trip(r#"{"action":"stats"}"#);
    let stats = v.get("stats").unwrap();
    assert_eq!(stats.get("tenants").and_then(Json::as_u64), Some(2));
    let disk = stats.get("disk").unwrap();
    assert_eq!(disk.get("hits").and_then(Json::as_u64), Some(0));
    assert!(disk.get("stores").and_then(Json::as_u64).unwrap() >= 2);
    // A repeat from alice is served warm (stage hits grow).
    req.tenant = "alice".into();
    c.round_trip(&req.to_json().to_string());
    let v = c.round_trip(r#"{"action":"stats"}"#);
    let hits: u64 = v
        .get("stats")
        .and_then(|s| s.get("stages"))
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|r| r.get("hits").and_then(Json::as_u64))
        .sum();
    assert!(hits > 0, "alice's repeat must hit her warm session");
    c.shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}
