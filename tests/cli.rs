//! Integration tests of the `openarc` command-line driver.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_openarc"))
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("openarc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

const SAXPY: &str = r#"
double x[32];
double y[32];
void main() {
    int j;
    for (j = 0; j < 32; j++) { x[j] = 1.0; y[j] = (double) j; }
    #pragma acc kernels loop gang worker
    for (j = 0; j < 32; j++) { y[j] = 2.0 * x[j] + y[j]; }
}
"#;

#[test]
fn run_prints_outputs_and_stats() {
    let path = write_temp("saxpy.c", SAXPY);
    let out = bin().arg("run").arg(&path).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("kernel launches   : 1"), "{text}");
    assert!(text.contains("y "), "{text}");
    assert!(text.contains("2.000000, 3.000000"), "{text}");
}

#[test]
fn cpu_mode_produces_same_values_without_transfers() {
    let path = write_temp("saxpy_cpu.c", SAXPY);
    let out = bin().arg("cpu").arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("transfers         : 0 ops"), "{text}");
    assert!(text.contains("2.000000, 3.000000"), "{text}");
}

#[test]
fn verify_reports_per_kernel_and_exit_codes() {
    let path = write_temp("saxpy_v.c", SAXPY);
    let out = bin()
        .arg("verify")
        .arg(&path)
        .arg("complement=0,kernels=main_kernel0")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("main_kernel0"), "{text}");
    assert!(text.contains(" ok"), "{text}");
}

#[test]
fn check_flags_missing_transfer_with_exit_1() {
    let src = r#"
double q[16];
double w[16];
double out;
void main() {
    int j;
    for (j = 0; j < 16; j++) { w[j] = 3.0; }
    #pragma acc data copyin(w) create(q)
    {
        #pragma acc kernels loop gang
        for (j = 0; j < 16; j++) { q[j] = w[j]; }
    }
    out = q[0];
}
"#;
    let path = write_temp("leaky.c", src);
    let out = bin().arg("check").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("memory transfer is missing"), "{text}");
}

#[test]
fn check_clean_program_exits_0() {
    let path = write_temp("saxpy_chk.c", SAXPY);
    let out = bin().arg("check").arg(&path).output().unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn demote_prints_listing2_transform() {
    let path = write_temp("saxpy_dem.c", SAXPY);
    let out = bin().arg("demote").arg(&path).arg("0").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("async(1)"), "{text}");
    assert!(text.contains("copy(y)"), "{text}");
    assert!(text.contains("acc wait(1)"), "{text}");
}

#[test]
fn bad_source_reports_diagnostic() {
    let path = write_temp("bad.c", "void main() { undeclared = 1; }");
    let out = bin().arg("run").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("undeclared"), "{text}");
}

#[test]
fn unknown_command_shows_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("usage:"), "{text}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = bin()
        .arg("run")
        .arg("/nonexistent/nope.c")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn demote_out_of_range_kernel_is_an_error() {
    let path = write_temp("saxpy_oor.c", SAXPY);
    let out = bin().arg("demote").arg(&path).arg("99").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("out of range"), "{text}");
}

// ------------------------------------------------------------- profile

/// JACOBI-style loop with a per-sweep redundant `update device`, so the
/// profile journal contains transfer findings to explain.
const REDUNDANT_UPDATE: &str = r#"
double a[16];
double out;
void main() {
    int j; int k;
    for (j = 0; j < 16; j++) { a[j] = 1.0; }
    #pragma acc data copyin(a)
    {
        for (k = 0; k < 3; k++) {
            #pragma acc update device(a)
            #pragma acc kernels loop gang worker
            for (j = 0; j < 16; j++) { a[j] = a[j] + 1.0; }
            #pragma acc update host(a)
        }
    }
    out = a[0];
}
"#;

#[test]
fn profile_prints_summary_by_default() {
    let path = write_temp("prof_sum.c", SAXPY);
    let out = bin().arg("profile").arg(&path).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("host time by category"), "{text}");
    assert!(text.contains("Mem Transfer"), "{text}");
    assert!(text.contains("main_kernel0"), "{text}");
    assert!(text.contains("journal events"), "{text}");
}

#[test]
fn profile_trace_out_writes_chrome_json() {
    let path = write_temp("prof_trace.c", SAXPY);
    let trace = std::env::temp_dir().join("openarc-cli-tests/prof_trace.json");
    let out = bin()
        .arg("profile")
        .arg(&path)
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"ph\": \"X\""), "{json}");
    assert!(json.contains("main_kernel0"), "{json}");
    // --trace-out alone suppresses the summary.
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!text.contains("host time by category"), "{text}");
    assert!(text.contains("wrote"), "{text}");
}

#[test]
fn profile_explain_shows_redundant_transfer_timeline() {
    let path = write_temp("prof_expl.c", REDUNDANT_UPDATE);
    let out = bin()
        .arg("profile")
        .arg(&path)
        .arg("--explain")
        .arg("a")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("timeline for `a`"), "{text}");
    assert!(text.contains("H2D transfer"), "{text}");
    assert!(text.contains("Redundant"), "{text}");
    assert!(text.contains("notstale"), "{text}");
}

#[test]
fn profile_filter_kernel_restricts_tables() {
    let path = write_temp("prof_filt.c", REDUNDANT_UPDATE);
    let out = bin()
        .arg("profile")
        .arg(&path)
        .arg("--summary")
        .arg("--filter-kernel")
        .arg("nonexistent_kernel")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    // Category totals stay global; the kernel table is filtered empty.
    assert!(text.contains("host time by category"), "{text}");
    assert!(!text.contains("main_kernel0"), "{text}");
}

#[test]
fn profile_verify_mode_reports_verdicts() {
    let path = write_temp("prof_ver.c", SAXPY);
    let out = bin()
        .arg("profile")
        .arg(&path)
        .arg("--verify")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("1 ok"), "{text}");
}

#[test]
fn profile_unknown_flag_is_an_error() {
    let path = write_temp("prof_bad.c", SAXPY);
    let out = bin()
        .arg("profile")
        .arg(&path)
        .arg("--bogus")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("unknown profile flag"), "{text}");
}
