//! # OpenARC-rs
//!
//! A Rust reproduction of *"Interactive Program Debugging and Optimization
//! for Directive-Based, Efficient GPU Computing"* (Lee, Li, Vetter —
//! IPDPS 2014): the interactive debugging and optimization system the
//! paper built inside the OpenARC OpenACC compiler, together with every
//! substrate it needs — a C-subset frontend, the OpenACC 1.0 directive
//! model, the dataflow analyses (Algorithms 1 and 2), a bytecode VM, a
//! deterministic lockstep GPU simulator, and the OpenACC runtime with the
//! `notstale`/`maystale`/`stale` coherence tracker.
//!
//! ## Quick start
//!
//! ```
//! use openarc::prelude::*;
//!
//! let src = r#"
//! double q[16];
//! double w[16];
//! void main() {
//!     int j;
//!     for (j = 0; j < 16; j++) { w[j] = (double) j; }
//!     #pragma acc kernels loop gang worker
//!     for (j = 0; j < 16; j++) { q[j] = w[j] * 2.0; }
//! }
//! "#;
//! let (program, sema) = openarc::minic::frontend(src).unwrap();
//! let tr = translate(&program, &sema, &TranslateOptions::default()).unwrap();
//! let run = execute(&tr, &ExecOptions::default()).unwrap();
//! assert_eq!(run.global_array(&tr, "q").unwrap()[3], 6.0);
//! ```
//!
//! See `examples/` for kernel verification, interactive transfer
//! optimization, and race hunting.

#![warn(missing_docs)]

pub use openarc_bench as bench;
pub use openarc_core as core;
pub use openarc_dataflow as dataflow;
pub use openarc_gpusim as gpusim;
pub use openarc_minic as minic;
pub use openarc_openacc as openacc;
pub use openarc_runtime as runtime;
pub use openarc_suite as suite;
pub use openarc_trace as trace;
pub use openarc_vm as vm;

/// The most commonly used items in one import.
pub mod prelude {
    pub use openarc_core::exec::{
        execute, ExecMode, ExecOptions, RunResult, TransferOverlay, VerifyOptions,
    };
    pub use openarc_core::interactive::{optimize_transfers, OutputSpec};
    pub use openarc_core::translate::{translate, TranslateOptions, Translated};
    pub use openarc_core::verify::{demote_source, verify_kernels};
    pub use openarc_minic::frontend;
    pub use openarc_suite::{Benchmark, Scale, Variant};
    pub use openarc_trace::{chrome_trace, explain_var, summarize, Journal};
}
