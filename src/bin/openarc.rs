//! The `openarc` command-line driver: run, verify, and optimize OpenACC
//! MiniC programs from files.
//!
//! ```text
//! openarc run <file.c>                 translate + execute, print outputs
//! openarc cpu <file.c>                 sequential reference execution
//! openarc verify <file.c> [spec]      §III-A kernel verification
//!                                      (spec: the paper's
//!                                      verificationOptions syntax)
//! openarc check <file.c>               §III-B memory-transfer verification
//! openarc demote <file.c> <kernel#>    print the Listing-2 demotion
//! openarc profile <file.c> [flags]     event-journal profiling: Chrome
//!                                      trace export + per-kernel summary
//! openarc dag <file.c> [spec]          dump the launch dependency DAG as
//!                                      Graphviz dot, annotated with each
//!                                      site's level, predicted cost, and
//!                                      planned device
//! openarc bench [--jobs N] [flags]     batch mode: run the 12-benchmark ×
//!                                      3-variant matrix, optionally fanned
//!                                      across worker threads
//! openarc fuzz [--seed N] [flags]      coverage-guided differential fuzzing
//!                                      of the whole pipeline; writes
//!                                      BENCH_fuzz.json and minimized repros
//! openarc cache <stats|gc|export|clear> inspect, prune, or JSON-export
//!                                      the persistent artifact store
//! ```
//!
//! Every pipeline command accepts `--cache-dir DIR` (use the persistent
//! artifact store at DIR) and `--no-cache`; `bench` defaults the store
//! **on** at `target/openarc-cache`, the single-program commands default
//! it off. Exit codes: `0` ok, `1` verification/check findings, `2` bad
//! input or usage, `3` execution failure.

use openarc::bench::args::BenchArgs;
use openarc::core::api::{self, Action, ApiError, Request};
use openarc::core::cache::{DiskCache, DEFAULT_DIR};
use openarc::core::options::parse_verification_options;
use openarc::core::pipeline::{PipelineError, Session};
use openarc::prelude::*;
use openarc::trace::json::Json;
use openarc::trace::{chrome_trace, explain_var, summarize};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("openarc: {}", e.msg);
            std::process::exit(e.code);
        }
    }
}

/// A CLI failure: the message for stderr plus the process exit code.
/// Usage/input-file problems exit `2`; pipeline errors carry their own
/// mapping ([`PipelineError::exit_code`]: bad program `2`, failed run `3`).
struct CliError {
    msg: String,
    code: i32,
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError { msg, code: 2 }
    }
}

impl From<PipelineError> for CliError {
    fn from(e: PipelineError) -> CliError {
        CliError {
            msg: e.to_string(),
            code: e.exit_code(),
        }
    }
}

impl From<ApiError> for CliError {
    fn from(e: ApiError) -> CliError {
        CliError {
            code: e.exit_code(),
            msg: e.message,
        }
    }
}

fn usage() -> String {
    "usage: openarc <run|cpu|verify|check|demote|profile|dag|bench|fuzz|cache> [args]\n\
     \n\
     run    <file.c>            translate and execute on the simulated device\n\
     cpu    <file.c>            execute the sequential reference\n\
     verify <file.c> [options]  kernel verification; options use the paper's\n\
                                syntax, e.g. complement=0,kernels=main_kernel0;\n\
                                compareJobs=<N> fans the comparison stage out\n\
                                across N workers (bit-identical results);\n\
                                dagJobs=<N> keeps up to N verified launches in\n\
                                flight on the dependency DAG and devices=<N>\n\
                                spreads independent launches over N simulated\n\
                                devices (dagJobs=1,devices=1 is the oracle);\n\
                                placement=<roundrobin|eft|measured> picks the\n\
                                device-placement policy (static round-robin,\n\
                                cost-model EFT, or EFT over costs calibrated\n\
                                from a measurement pass)\n\
     check  <file.c>            memory-transfer verification report\n\
     demote <file.c> <kernel#>  print the memory-transfer-demoted program\n\
     profile <file.c> [flags]   run with the event journal enabled\n\
       --trace-out <path>       write a Chrome trace_event JSON file\n\
       --summary                print per-category and per-kernel totals\n\
       --filter-kernel <name>   restrict the trace/kernel table to one kernel\n\
       --explain <var>          print the event timeline for one variable\n\
       --verify                 profile a kernel-verification run instead\n\
       --verify-opts <spec>     like --verify with verificationOptions, e.g.\n\
                                devices=2,dagJobs=4,placement=eft\n\
     serve [flags]              start the compile-and-verify daemon; clients\n\
                                send newline-framed JSON requests (see the\n\
                                README's wire-protocol table)\n\
       --tcp <ADDR>             listen address (default 127.0.0.1:0; the\n\
                                chosen port is printed as `listening on ...`)\n\
       --jobs <N|auto>          pipeline worker threads (default 2)\n\
       --queue <N>              admission queue bound (default 64); beyond\n\
                                it requests are refused with retry_after_ms\n\
       --stats-interval-ms <N>  heartbeat period for serve gauge events\n\
                                (default 1000, 0 disables)\n\
       --journal-out <path>     write the heartbeat journal as a Chrome\n\
                                trace on shutdown\n\
     dag <file.c> [spec]        print the launch dependency DAG as Graphviz\n\
                                dot; spec is the verificationOptions syntax\n\
                                (devices/placement drive the annotations)\n\
     bench [flags]              run the benchmark suite's 12×3 matrix\n\
       --jobs <N|auto>          fan the matrix across N worker threads\n\
       --scale <small|bench>    problem scale (default: bench)\n\
       --n <SIZE> --iters <N>   override the scale's size/iterations\n\
     fuzz [flags]               coverage-guided differential fuzzing: generated\n\
                                and mutated programs run through the CPU-vs-GPU,\n\
                                coherence-model, and cross-config oracles; the\n\
                                campaign is bit-reproducible from --seed\n\
       --seed <N>               campaign seed (default 1)\n\
       --programs <N>           generated/mutated programs (default 200)\n\
       --jobs <N|auto>          executor worker threads (never affects results)\n\
       --time-budget-s <S>      stop after S wall-clock seconds (marks the\n\
                                report truncated)\n\
       --corpus <DIR>           seed the campaign with every *.c in DIR\n\
       --replay                 only replay the corpus + baseline (no generation)\n\
       --out <DIR>              write minimized finding-NNN.c repros to DIR\n\
       --report <PATH>          BENCH_fuzz.json path (default BENCH_fuzz.json)\n\
     cache stats [--json]       per-stage entry counts, format mix, and bytes\n\
     cache gc --max-bytes <N>   evict least-recently-used entries to <= N bytes\n\
     cache export --out <DIR>   re-encode every entry as a JSON store at DIR\n\
     cache clear                delete every cached artifact\n\
     \n\
     run/cpu/check/profile take --cache-dir <DIR> to persist pipeline\n\
     artifacts across processes; bench caches at target/openarc-cache by\n\
     default (--no-cache disables, --cache-dir relocates); cache takes\n\
     --cache-dir to point at a non-default store"
        .to_string()
}

/// Split `--cache-dir DIR` / `--no-cache` out of `rest`, returning the
/// remaining arguments plus the resolved cache root (`default` when
/// neither flag appears; `--no-cache` wins over both).
fn cache_flags(
    rest: &[String],
    default: Option<&str>,
) -> Result<(Vec<String>, Option<PathBuf>), String> {
    let mut out = Vec::with_capacity(rest.len());
    let mut dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache-dir" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--cache-dir needs a value\n{}", usage()))?;
                dir = Some(PathBuf::from(v));
            }
            "--no-cache" => no_cache = true,
            _ => out.push(a.clone()),
        }
    }
    let dir = if no_cache {
        None
    } else {
        dir.or_else(|| default.map(PathBuf::from))
    };
    Ok((out, dir))
}

/// Fresh pipeline session honouring a resolved `--cache-dir`.
fn session_with(cache: Option<&PathBuf>) -> Session {
    match cache {
        Some(dir) => Session::builder().disk_cache(dir).build(),
        None => Session::builder().build(),
    }
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn load(path: &str) -> Result<(openarc::minic::Program, openarc::minic::Sema), String> {
    let src = read_source(path)?;
    frontend(&src).map_err(|ds| {
        ds.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    })
}

/// Route a one-shot pipeline command through [`api::handle`] — the same
/// entry point the `serve` daemon uses — and print the rendered report
/// verbatim, so one-shot and served output are byte-identical by
/// construction.
fn one_shot(action: Action, rest: &[String]) -> Result<i32, CliError> {
    let (rest, cache) = cache_flags(rest, None)?;
    let path = rest.first().ok_or_else(usage)?;
    let mut req = Request::new(action, read_source(path)?);
    if action == Action::Verify {
        req.options = rest.get(1).cloned();
    } else if rest.len() > 1 {
        return Err(format!("unexpected argument `{}`\n{}", rest[1], usage()).into());
    }
    let session = session_with(cache.as_ref());
    let resp = api::handle(&session, &req)?;
    print!("{}", resp.report);
    Ok(resp.exit_code)
}

fn run(args: &[String]) -> Result<i32, CliError> {
    let (cmd, rest) = args.split_first().ok_or_else(usage)?;
    match cmd.as_str() {
        "run" => one_shot(Action::Run, rest),
        "cpu" => one_shot(Action::Cpu, rest),
        "verify" => one_shot(Action::Verify, rest),
        "check" => one_shot(Action::Check, rest),
        "demote" => {
            let path = rest.first().ok_or_else(usage)?;
            let idx: usize = rest
                .get(1)
                .ok_or_else(usage)?
                .parse()
                .map_err(|_| "kernel index must be an integer".to_string())?;
            let (p, s) = load(path)?;
            let tr = translate(&p, &s, &TranslateOptions::default())
                .map_err(PipelineError::Translate)?;
            if idx >= tr.kernels.len() {
                return Err(format!(
                    "kernel index {idx} out of range: the program has {} kernel(s)",
                    tr.kernels.len()
                )
                .into());
            }
            let demoted =
                demote_source(&p, &std::iter::once(idx).collect(), 1).map_err(|e| e.to_string())?;
            print!("{}", openarc::minic::print_program(&demoted));
            Ok(0)
        }
        "profile" => profile(rest),
        "serve" => serve(rest),
        "dag" => dag_cmd(rest),
        "bench" => bench(rest),
        "fuzz" => fuzz_cmd(rest),
        "cache" => cache_cmd(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(0)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

/// `openarc serve`: start the multi-tenant compile-and-verify daemon.
/// Requests route through the same `core::api` entry point as the
/// one-shot commands, so served reports are byte-identical to the CLI;
/// tenant ids map to namespaced sessions over one shared disk store
/// (default `target/openarc-cache`, `--no-cache` for memory-only).
fn serve(rest: &[String]) -> Result<i32, CliError> {
    use openarc::core::serve::{Server, ServerConfig};

    let (rest, cache) = cache_flags(rest, Some(DEFAULT_DIR))?;
    let mut cfg = ServerConfig {
        cache_dir: cache,
        ..ServerConfig::default()
    };
    let mut addr = "127.0.0.1:0".to_string();
    let mut journal_out: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--tcp" => addr = value("--tcp")?.to_string(),
            "--jobs" => cfg.workers = openarc::core::sched::parse_jobs(value("--jobs")?)?,
            "--queue" => {
                cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue expects a positive integer".to_string())?;
            }
            "--stats-interval-ms" => {
                let ms: u64 = value("--stats-interval-ms")?
                    .parse()
                    .map_err(|_| "--stats-interval-ms expects an integer".to_string())?;
                cfg.stats_interval = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--journal-out" => journal_out = Some(value("--journal-out")?),
            flag => return Err(format!("unknown serve flag `{flag}`\n{}", usage()).into()),
        }
    }
    let server =
        Server::bind_tcp(cfg, &addr).map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| format!("serve: {e}"))?;
    // The discovery line clients (and CI) parse to find the port.
    println!("listening on {local}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("serve: {e}"))?;
    let stats = server.stats_json();
    if let Some(out) = journal_out {
        let events = server.journal().drain();
        std::fs::write(out, chrome_trace(&events)).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {} heartbeat events to {out}", events.len());
    }
    println!("serve: shut down\n{}", stats.pretty());
    Ok(0)
}

/// `openarc bench`: batch mode. Runs the full 12-benchmark × 3-variant
/// matrix through one pipeline session, fanned across `--jobs` worker
/// threads; output is byte-identical for any worker count. The persistent
/// artifact store defaults **on** at `target/openarc-cache`, so a second
/// `openarc bench` invocation reloads every compiled stage from disk.
fn bench(rest: &[String]) -> Result<i32, CliError> {
    let args =
        BenchArgs::parse(rest, Some(DEFAULT_DIR)).map_err(|e| format!("{e}\n{}", usage()))?;
    let sw = args.sweep();
    let (rows, events) = sw.matrix()?;
    println!(
        "{:<10} {:<12} {:>14} {:>12} {:>9} {:>8}",
        "benchmark", "variant", "sim_time_us", "bytes", "launches", "events"
    );
    for r in &rows {
        println!(
            "{:<10} {:<12} {:>14.1} {:>12} {:>9} {:>8}",
            r.bench, r.variant, r.sim_us, r.transferred_bytes, r.kernel_launches, r.events
        );
    }
    println!("--");
    println!(
        "{} cells (n={}, iters={}, jobs={}), {} journal events",
        rows.len(),
        sw.scale.n,
        sw.scale.iters,
        sw.jobs,
        events.len()
    );
    println!("pipeline cache:\n{}", sw.session.stats());
    Ok(0)
}

/// `openarc fuzz`: run a coverage-guided differential fuzzing campaign.
/// The baseline coverage set is always the 12 reduced benchmarks
/// ([`openarc::suite::reduced_corpus`]); `--corpus DIR` additionally seeds
/// the mutation corpus with the committed regression repros. Everything
/// the campaign reports is a pure function of `--seed` (and `--programs`);
/// `--jobs` only changes wall-clock time. Exits `1` when the oracle found
/// divergences, `0` on a clean campaign.
fn fuzz_cmd(rest: &[String]) -> Result<i32, CliError> {
    use openarc::core::fuzz::{run_campaign, CampaignConfig};

    let mut cfg = CampaignConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut report_path = "BENCH_fuzz.json".to_string();
    let mut corpus_dir: Option<PathBuf> = None;
    let mut replay = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--programs" => {
                cfg.max_programs = value("--programs")?
                    .parse()
                    .map_err(|_| "--programs expects an integer".to_string())?;
            }
            "--jobs" => cfg.jobs = openarc::core::sched::parse_jobs(value("--jobs")?)?,
            "--time-budget-s" => {
                cfg.time_budget_s = Some(
                    value("--time-budget-s")?
                        .parse()
                        .map_err(|_| "--time-budget-s expects seconds".to_string())?,
                );
            }
            "--corpus" => corpus_dir = Some(PathBuf::from(value("--corpus")?)),
            "--replay" => replay = true,
            "--out" => out_dir = Some(PathBuf::from(value("--out")?)),
            "--report" => report_path = value("--report")?.to_string(),
            flag => return Err(format!("unknown fuzz flag `{flag}`\n{}", usage()).into()),
        }
    }
    if replay {
        cfg.max_programs = 0;
    }
    cfg.baseline = openarc::suite::reduced_corpus(openarc::suite::Scale { n: 8, iters: 2 })
        .into_iter()
        .map(|(_, src)| src)
        .collect();
    if let Some(dir) = &corpus_dir {
        // Sorted path order keeps the corpus contribution deterministic.
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "c"))
            .collect();
        paths.sort();
        for p in &paths {
            cfg.seeds
                .push(std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?);
        }
        println!(
            "corpus: {} seed program(s) from {}",
            paths.len(),
            dir.display()
        );
    }

    let r = run_campaign(&cfg);

    println!(
        "fuzz: seed {} · {} program(s) executed ({} rejected, {} racy){}",
        r.seed,
        r.programs,
        r.rejected,
        r.racy,
        if r.truncated {
            " · TRUNCATED by time budget"
        } else {
            ""
        }
    );
    println!(
        "coverage: {} atoms total, {} baseline, {} new · corpus {} · fingerprint {:016x}",
        r.coverage.len(),
        r.baseline_coverage.len(),
        r.new_atoms().len(),
        r.corpus,
        r.fingerprint
    );
    for (i, f) in r.findings.iter().enumerate() {
        println!(
            "finding {i}: {} on {} (x{}, minimized {}) — {}",
            f.kind.name(),
            f.config,
            f.occurrences,
            if f.minimized_ok {
                "ok"
            } else {
                "BUDGET EXPIRED"
            },
            f.detail
        );
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for (i, f) in r.findings.iter().enumerate() {
            // Self-contained repro: the header comment carries everything
            // needed to replay the finding by hand.
            let repro = format!(
                "// openarc fuzz finding {i}: {kind} on config `{config}`\n\
                 // detail: {detail}\n\
                 // verificationOptions: {options}\n\
                 // replay: openarc verify <this file> {options}\n\
                 //         openarc check <this file>\n\
                 {src}",
                kind = f.kind.name(),
                config = f.config,
                detail = f.detail,
                options = f.options,
                src = f.minimized
            );
            let path = dir.join(format!("finding-{i:03}.c"));
            std::fs::write(&path, repro).map_err(|e| format!("{}: {e}", path.display()))?;
            let orig = dir.join(format!("finding-{i:03}.orig.c"));
            std::fs::write(&orig, &f.source).map_err(|e| format!("{}: {e}", orig.display()))?;
            println!("wrote {}", path.display());
        }
    }

    let json = openarc::bench::fuzzstats::campaign_json(&r);
    if let Some(parent) = std::path::Path::new(&report_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
    }
    std::fs::write(&report_path, json.pretty()).map_err(|e| format!("{report_path}: {e}"))?;
    println!("wrote {report_path}");
    Ok(if r.findings.is_empty() { 0 } else { 1 })
}

/// `openarc cache`: inspect or prune the persistent artifact store without
/// running anything. Operates on `target/openarc-cache` unless
/// `--cache-dir` points elsewhere.
fn cache_cmd(rest: &[String]) -> Result<i32, CliError> {
    let (rest, dir) = cache_flags(rest, Some(DEFAULT_DIR))?;
    let dir = dir.ok_or_else(|| format!("cache: --no-cache makes no sense here\n{}", usage()))?;
    let cache = DiskCache::new(&dir);
    let (sub, rest) = rest
        .split_first()
        .ok_or_else(|| format!("cache: expected stats, gc, export, or clear\n{}", usage()))?;
    match sub.as_str() {
        "stats" => {
            let json = match rest {
                [] => false,
                [flag] if flag == "--json" => true,
                _ => return Err(format!("cache stats: unexpected arguments\n{}", usage()).into()),
            };
            let rows = cache.usage();
            if json {
                let out = Json::obj(vec![
                    ("dir", Json::from(dir.to_string_lossy().as_ref())),
                    (
                        "stages",
                        Json::Arr(
                            rows.iter()
                                .map(|r| {
                                    Json::obj(vec![
                                        ("stage", Json::from(r.stage)),
                                        ("entries", Json::from(r.entries)),
                                        ("bin", Json::from(r.bin_entries)),
                                        ("json", Json::from(r.json_entries)),
                                        ("bytes", Json::from(r.bytes)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]);
                println!("{}", out.pretty());
            } else {
                println!("cache dir: {}", dir.display());
                println!(
                    "{:<12} {:>8} {:>8} {:>8} {:>12}",
                    "stage", "entries", "bin", "json", "bytes"
                );
                for r in &rows {
                    println!(
                        "{:<12} {:>8} {:>8} {:>8} {:>12}",
                        r.stage, r.entries, r.bin_entries, r.json_entries, r.bytes
                    );
                }
                println!(
                    "{:<12} {:>8} {:>8} {:>8} {:>12}",
                    "total",
                    rows.iter().map(|r| r.entries).sum::<u64>(),
                    rows.iter().map(|r| r.bin_entries).sum::<u64>(),
                    rows.iter().map(|r| r.json_entries).sum::<u64>(),
                    rows.iter().map(|r| r.bytes).sum::<u64>()
                );
            }
            Ok(0)
        }
        "gc" => {
            let max_bytes: u64 = match rest {
                [flag, v] if flag == "--max-bytes" => v
                    .parse()
                    .map_err(|_| "cache gc: --max-bytes expects a byte count".to_string())?,
                _ => return Err(format!("cache gc: expected --max-bytes <N>\n{}", usage()).into()),
            };
            let r = cache.gc(max_bytes);
            println!(
                "examined {} entries, evicted {}, {} -> {} bytes",
                r.examined, r.evicted, r.bytes_before, r.bytes_after
            );
            Ok(0)
        }
        "export" => {
            let out_dir = match rest {
                [flag, v] if flag == "--out" => PathBuf::from(v),
                _ => return Err(format!("cache export: expected --out <DIR>\n{}", usage()).into()),
            };
            let dest = DiskCache::new(&out_dir);
            let r = cache.export_json(&dest);
            println!(
                "exported {} entries to {} ({} skipped)",
                r.exported,
                out_dir.display(),
                r.skipped
            );
            Ok(if r.skipped == 0 { 0 } else { 1 })
        }
        "clear" => {
            if !rest.is_empty() {
                return Err(format!("cache clear: unexpected arguments\n{}", usage()).into());
            }
            let removed = cache.clear();
            println!("removed {removed} entries from {}", dir.display());
            Ok(0)
        }
        other => Err(format!("cache: unknown subcommand `{other}`\n{}", usage()).into()),
    }
}

/// `openarc dag`: print the program's launch dependency DAG as Graphviz
/// dot. Each node carries the site index, kernel name, DAG level, the
/// cost model's predicted duration, and the device the selected placement
/// policy plans for it — the "show the user why" view of a placement
/// decision. `placement=measured` runs one round-robin measurement pass
/// (through the session cache) to calibrate costs first.
fn dag_cmd(rest: &[String]) -> Result<i32, CliError> {
    use openarc::core::exec::dag::{cost, DepDag, Placement};
    use openarc::gpusim::CostModel;

    let (rest, cache) = cache_flags(rest, None)?;
    let path = rest.first().ok_or_else(usage)?;
    let vopts = match rest.get(1) {
        Some(spec) => parse_verification_options(spec).map_err(|e| e.to_string())?,
        None => VerifyOptions::default(),
    };
    let src = read_source(path)?;
    let session = session_with(cache.as_ref());
    let fe = session.frontend(&src)?;
    let tra = session.translate(&fe, &TranslateOptions::default())?;
    let tr = &tra.tr;
    let dag = DepDag::build(&tr.kernels);
    let n = vopts.devices.clamp(1, openarc::runtime::MAX_DEVICES);
    let model = CostModel::default();
    let mut table = cost::estimate_site_costs(tr, &model);
    if vopts.placement == Placement::Measured {
        let capture = Journal::enabled();
        let mut probe = vopts.clone();
        probe.placement = Placement::RoundRobin;
        probe.measured = None;
        session.execute(
            &tra,
            &ExecOptions {
                mode: ExecMode::Verify(probe),
                journal: capture.clone(),
                ..Default::default()
            },
        )?;
        let m = cost::MeasuredCosts::from_journal(&capture.drain());
        table.apply_measured(&tr.kernels, &m);
    }
    let sched = match vopts.placement {
        Placement::RoundRobin => cost::evaluate_plan(&dag, &table, &model, &dag.device_plan(n), n),
        Placement::Eft | Placement::Measured => cost::eft_plan(&dag, &table, &model, n),
    };
    println!("digraph launches {{");
    println!("  rankdir=TB;");
    println!("  node [shape=box, fontname=\"monospace\"];");
    println!(
        "  label=\"{} · placement={} · devices={} · predicted makespan {:.1} us\";",
        path,
        vopts.placement.as_str(),
        n,
        sched.makespan_us
    );
    for i in 0..dag.len() {
        println!(
            "  s{} [label=\"{}: {}\\nlevel {} · dev {}\\nest {:.1} us x{}\"];",
            i,
            i,
            tr.kernels[i].name,
            dag.levels[i],
            sched.plan[i].0,
            table.sites[i].total_us(),
            table.mult.get(i).copied().unwrap_or(1),
        );
    }
    for (j, deps) in dag.deps.iter().enumerate() {
        for &i in deps {
            println!("  s{i} -> s{j};");
        }
    }
    println!("}}");
    Ok(0)
}

/// `openarc profile`: run the program with the event journal enabled, then
/// render the journal as a Chrome trace, a per-kernel summary, and/or a
/// per-variable timeline. With `--cache-dir` the run goes through the
/// persistent store; disk hits/misses appear as `cache` rows in the
/// summary's stage table.
fn profile(rest: &[String]) -> Result<i32, CliError> {
    let (rest, cache) = cache_flags(rest, None)?;
    let mut path: Option<&str> = None;
    let mut trace_out: Option<&str> = None;
    let mut summary = false;
    let mut filter_kernel: Option<&str> = None;
    let mut explain: Vec<&str> = Vec::new();
    let mut verify = false;
    let mut verify_opts: Option<&str> = None;

    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--summary" => summary = true,
            "--filter-kernel" => filter_kernel = Some(value("--filter-kernel")?),
            "--explain" => explain.push(value("--explain")?),
            "--verify" => verify = true,
            "--verify-opts" => verify_opts = Some(value("--verify-opts")?),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown profile flag `{flag}`\n{}", usage()).into());
            }
            p if path.is_none() => path = Some(p),
            p => return Err(format!("unexpected argument `{p}`\n{}", usage()).into()),
        }
    }
    let path = path.ok_or_else(usage)?;
    // With no output selected, the summary is the default deliverable.
    if trace_out.is_none() && explain.is_empty() {
        summary = true;
    }

    // Route the run through a pipeline session with a stage journal so the
    // summary can show where wall-clock time went per pipeline stage
    // (frontend/translate/execute), alongside the simulated-time tables.
    // The execution itself goes through `api::handle`, the same entry point
    // behind the one-shot commands and the serve daemon.
    let stage_journal = Journal::enabled();
    let session = match &cache {
        Some(dir) => Session::builder()
            .journal(stage_journal.clone())
            .disk_cache(dir)
            .build(),
        None => Session::builder().journal(stage_journal.clone()).build(),
    };
    let mut req = Request::new(Action::Profile, read_source(path)?);
    req.options = if let Some(spec) = verify_opts {
        Some(spec.to_string())
    } else if verify {
        // The empty spec parses to `VerifyOptions::default()`.
        Some(String::new())
    } else {
        None
    };
    let resp = api::handle(&session, &req)?;
    let events = resp.events;

    if let Some(out) = trace_out {
        let filtered: Vec<openarc::trace::TraceEvent> = match filter_kernel {
            Some(k) => events
                .iter()
                .filter(|e| e.matches_kernel(k))
                .cloned()
                .collect(),
            None => events.clone(),
        };
        std::fs::write(out, chrome_trace(&filtered)).map_err(|e| format!("{out}: {e}"))?;
        println!(
            "wrote {} events to {out} (chrome://tracing / Perfetto)",
            filtered.len()
        );
    }

    for var in &explain {
        match explain_var(&events, var) {
            Some(text) => println!("{text}"),
            None => println!("no journal events mention `{var}`"),
        }
    }

    if summary {
        // Stage events are wall-clock and live in the session-level
        // journal, never in the deterministic run journal; merge them in
        // only for the summary's stage table.
        let with_stages: Vec<openarc::trace::TraceEvent> = events
            .iter()
            .cloned()
            .chain(stage_journal.drain())
            .collect();
        let mut sum = summarize(&with_stages);
        if let Some(k) = filter_kernel {
            sum.kernels.retain(|row| row.name == k);
        }
        print!("{sum}");
        println!("--");
        println!("journal events    : {}", events.len());
        println!("kernel launches   : {}", resp.kernel_launches);
        println!("simulated time    : {:.1} µs", resp.sim_time_us);
    }

    Ok(resp.exit_code)
}
