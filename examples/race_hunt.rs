//! Race hunting with the lockstep simulator: run every benchmark with the
//! paper's §IV-B fault injection and report which kernels race, which
//! races corrupt outputs (active), and which stay latent — the data behind
//! the Table 2 reproduction.
//!
//! Run with: `cargo run --example race_hunt`

use openarc::core::faults::strip_privatization;
use openarc::prelude::*;

fn main() {
    for b in openarc::suite::all(Scale::default()) {
        let (program, sema) = frontend(b.source(Variant::Optimized)).unwrap();
        let (faulty, stats) = strip_privatization(&program).unwrap();
        if stats.private_removed + stats.reductions_removed == 0 {
            println!("{:<10} no clauses to strip", b.name);
            continue;
        }
        let topts = TranslateOptions {
            auto_privatize: false,
            auto_reduction: false,
            ..Default::default()
        };
        let (_, report) = verify_kernels(&faulty, &sema, &topts, VerifyOptions::default()).unwrap();
        let active: Vec<&str> = report
            .kernels
            .iter()
            .filter(|k| k.flagged())
            .map(|k| k.kernel.as_str())
            .collect();
        let raced: std::collections::BTreeSet<&str> =
            report.races.iter().map(|(k, _)| k.as_str()).collect();
        let latent: Vec<&str> = raced
            .iter()
            .filter(|k| !active.contains(*k))
            .copied()
            .collect();
        println!(
            "{:<10} stripped {:>2} clauses → active: {:?}, latent: {:?}",
            b.name,
            stats.private_removed + stats.reductions_removed,
            active,
            latent
        );
    }
}
