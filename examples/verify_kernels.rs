//! Kernel verification (§III-A): inject the paper's fault — remove a
//! `private` clause and disable automatic privatization — then let the
//! verifier compare every kernel against its sequential CPU reference.
//! Also prints the memory-transfer-demoted program (the paper's
//! Listing 2 transformation).
//!
//! Run with: `cargo run --example verify_kernels`

use openarc::core::faults::strip_privatization;
use openarc::prelude::*;

fn main() {
    let src = r#"
double a[128];
double b[128];
double tmp;
void main() {
    int j;
    for (j = 0; j < 128; j++) { b[j] = (double) j; }
    #pragma acc data copyin(b) copyout(a)
    {
        #pragma acc kernels loop gang worker private(tmp)
        for (j = 0; j < 128; j++) {
            tmp = b[j] * 2.0;
            a[j] = tmp + 1.0;
        }
    }
}
"#;
    let (program, sema) = frontend(src).expect("frontend");

    // 1. Show the memory-transfer demotion (Listing 2).
    let demoted = demote_source(&program, &std::iter::once(0).collect(), 1).unwrap();
    println!("--- demoted program (target kernel 0) ---");
    println!("{}", openarc::minic::print_program(&demoted));

    // 2. Verify the healthy program: clean.
    let (_, ok) = verify_kernels(
        &program,
        &sema,
        &TranslateOptions::default(),
        VerifyOptions::default(),
    )
    .unwrap();
    println!("healthy program: {} kernel(s) flagged", ok.flagged().len());
    assert!(ok.flagged().is_empty());

    // 3. Inject the fault: strip private(tmp), disable recognition.
    let (faulty, stats) = strip_privatization(&program).unwrap();
    println!("stripped {} private clause(s)", stats.private_removed);
    let topts = TranslateOptions {
        auto_privatize: false,
        auto_reduction: false,
        ..Default::default()
    };
    let (_, bad) = verify_kernels(&faulty, &sema, &topts, VerifyOptions::default()).unwrap();
    for k in &bad.kernels {
        println!(
            "kernel {}: launches={} failed={} max |err| = {:.3}",
            k.kernel, k.launches, k.failed_launches, k.max_abs_err
        );
    }
    assert_eq!(bad.flagged().len(), 1, "the race must be detected");
    println!(
        "race oracle saw: {:?}",
        bad.races
            .iter()
            .map(|(k, r)| (k, &r.label))
            .collect::<Vec<_>>()
    );
}
