/* JACOBI 2D 5-point stencil, in the paper's *unoptimized* shape:
 * the host copy of `a` is conservatively refreshed on every sweep with
 * `#pragma acc update`, which the §III-B transfer verifier flags as
 * redundant (Listing 4).  Try:
 *
 *   openarc check   examples/jacobi.c
 *   openarc profile examples/jacobi.c --summary --explain a
 *   openarc profile examples/jacobi.c --trace-out jacobi-trace.json
 *   openarc demote  examples/jacobi.c 0
 */
double a[32][32];
double anew[32][32];
double checksum;
void main() {
    int i; int j; int k; double tmp; double fac;
    for (i = 0; i < 32; i++) {
        for (j = 0; j < 32; j++) {
            a[i][j] = 0.0;
            anew[i][j] = 0.0;
        }
    }
    for (j = 0; j < 32; j++) { a[0][j] = 100.0; anew[0][j] = 100.0; }
#pragma acc data copyin(a) create(anew)
{
    for (k = 0; k < 4; k++) {
#pragma acc update device(a)
#pragma acc kernels loop gang worker collapse(2) private(tmp)
        for (i = 1; i < 31; i++) {
            for (j = 1; j < 31; j++) {
                tmp = a[i - 1][j] + a[i + 1][j] + a[i][j - 1] + a[i][j + 1];
                anew[i][j] = 0.25 * tmp;
            }
        }
#pragma acc kernels loop gang worker collapse(2) private(fac)
        for (i = 1; i < 31; i++) {
            for (j = 1; j < 31; j++) {
                fac = 1.0;
                a[i][j] = fac * anew[i][j];
            }
        }
#pragma acc update host(a)
    }
}
    checksum = 0.0;
    for (i = 0; i < 32; i++) {
        for (j = 0; j < 32; j++) {
            checksum += a[i][j];
        }
    }
}
