//! Programmatic use of the execution event journal (what `openarc
//! profile` does under the hood): run the unoptimized JACOBI with a
//! journal attached, reconcile the journal against the simulator's
//! `TimeCategory` accounting, export a Chrome trace, and replay the
//! event timeline that explains why the per-sweep `update` transfers
//! are flagged redundant.
//!
//! Run with: `cargo run --example profile_trace`

use openarc::prelude::*;
use openarc::trace::category_totals;

fn main() {
    let b = openarc::suite::jacobi::benchmark(Scale::default());
    let (program, sema) = frontend(b.source(Variant::Unoptimized)).unwrap();
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let tr = translate(&program, &sema, &topts).unwrap();

    // A cloned journal shares the buffer with the executor's copy, so we
    // can keep a handle and read the events after the run.
    let journal = Journal::enabled();
    let run = execute(
        &tr,
        &ExecOptions {
            check_transfers: true,
            journal: journal.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    // `drain` takes the buffer — this is the journal's only reader, so
    // there is no need to pay for a copy the way `snapshot` would.
    let events = journal.drain();

    // The journal's per-category slice totals reconcile *exactly* with
    // the simulated clock's breakdown — same additions, same order.
    for (cat, total) in category_totals(&events) {
        let clock_cat = openarc::gpusim::clock::TimeCategory::ALL
            .into_iter()
            .find(|t| t.trace_category() == cat)
            .unwrap();
        assert_eq!(total, run.machine.clock.breakdown.get(clock_cat), "{cat}");
    }

    print!("{}", summarize(&events));

    let out = std::env::temp_dir().join("jacobi-trace.json");
    std::fs::write(&out, chrome_trace(&events)).unwrap();
    println!("--\nchrome trace written to {}", out.display());
    println!("(open chrome://tracing or https://ui.perfetto.dev and load it)");

    // The interactive question from §III-B: why was the `update`
    // transfer of `a` flagged redundant?  The per-variable timeline
    // shows each H2D at `update0` immediately followed by the finding.
    println!();
    println!("{}", explain_var(&events, "a").unwrap());
}
