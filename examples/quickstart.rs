//! Quickstart: translate an OpenACC program, run it on the simulated
//! machine, and inspect outputs, transfer statistics, and simulated time.
//!
//! Run with: `cargo run --example quickstart`

use openarc::prelude::*;

fn main() {
    // The paper's Listing 1 shape: a data region holding two vectors on
    // the device while an iterative solver runs kernels over them.
    let src = r#"
double q[256];
double w[256];
double checksum;
int niter;
void main() {
    int it; int j;
    niter = 10;
    for (j = 0; j < 256; j++) { w[j] = 1.0 + (double) (j % 7); }
    #pragma acc data copyin(w) create(q)
    {
        for (it = 1; it <= niter; it++) {
            #pragma acc kernels loop gang worker
            for (j = 0; j < 256; j++) { q[j] = w[j]; }
            #pragma acc kernels loop gang worker
            for (j = 0; j < 256; j++) { w[j] = q[j] * 1.01; }
        }
        #pragma acc update host(w)
    }
    checksum = 0.0;
    for (j = 0; j < 256; j++) { checksum += w[j]; }
}
"#;
    let (program, sema) = frontend(src).expect("frontend");
    let tr = translate(&program, &sema, &TranslateOptions::default()).expect("translate");
    let run = execute(&tr, &ExecOptions::default()).expect("execute");

    println!(
        "checksum          = {:.3}",
        run.global_scalar(&tr, "checksum").unwrap().as_f64()
    );
    println!("kernel launches   = {}", run.kernel_launches);
    println!("simulated time    = {:.1} µs", run.sim_time_us());
    println!(
        "transfers         = {} ({} bytes)",
        run.machine.stats.total_count(),
        run.machine.stats.total_bytes()
    );
    println!("device allocations = {}", run.machine.stats.dev_allocs);
    assert!(run.races.is_empty());
}
