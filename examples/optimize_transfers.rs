//! The interactive memory-transfer optimization loop (§III-B, Figure 2):
//! start from a conservatively-annotated JACOBI, let the tool report
//! redundant transfers (Listing 4 messages), and watch the programmer
//! model defer/remove them until the transfer pattern is optimal.
//!
//! Run with: `cargo run --example optimize_transfers`

use openarc::prelude::*;

fn main() {
    let b = openarc::suite::jacobi::benchmark(Scale::default());

    // Peek at the raw tool output for one instrumented run.
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let (program, sema) = frontend(b.source(Variant::Unoptimized)).unwrap();
    let tr = translate(&program, &sema, &topts).unwrap();
    let run = execute(
        &tr,
        &ExecOptions {
            check_transfers: true,
            race_detect: false,
            ..Default::default()
        },
    )
    .unwrap();
    println!("--- tool report (first profiling run) ---");
    print!("{}", run.machine.report);

    // Drive the loop to a fixpoint.
    let out = optimize_transfers(
        &program,
        &sema,
        &topts,
        &b.outputs,
        &ExecOptions {
            race_detect: false,
            ..Default::default()
        },
        10,
    )
    .unwrap();
    println!("\n--- interactive loop ---");
    for l in &out.log {
        println!(
            "iteration {}: applied {:?}, reverted {:?}",
            l.index, l.applied, l.reverted
        );
    }
    println!(
        "\nconverged = {} after {} iteration(s), {} incorrect",
        out.converged, out.iterations, out.incorrect_iterations
    );
    println!("final transfer count = {}", out.final_stats.total_count());
    assert!(out.converged);
}
