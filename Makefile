# Development gate for OpenARC-rs. `make check` is what CI runs.

CARGO ?= cargo

.PHONY: check fmt lint test doc build bench paper

check: fmt lint test doc

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

test:
	$(CARGO) test --workspace -q

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

build:
	$(CARGO) build --workspace --release

bench:
	$(CARGO) bench

# Regenerate every table and figure of the paper's evaluation.
paper:
	$(CARGO) run --release -p openarc-bench --bin paper
