//! Data-race detection inside simulated kernels.
//!
//! This is the *ground-truth oracle* our Table 2 reproduction uses to
//! classify injected concurrency bugs: the paper's kernel-verification tool
//! only observes *active* errors (wrong outputs), while races whose final
//! value happens to be unused are *latent*. The simulator sees every
//! conflicting access, so it can count latent races the output comparison
//! cannot.

use openarc_vm::Handle;
use std::collections::HashMap;

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read.
    Read,
    /// Write.
    Write,
}

/// Summary of races observed on one buffer during one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// The buffer.
    pub handle: Handle,
    /// Buffer label (source variable name).
    pub label: String,
    /// Number of conflicting access pairs observed.
    pub conflicts: u64,
    /// Example conflicting element index.
    pub example_idx: u64,
    /// Example pair of thread ids.
    pub example_threads: (u64, u64),
}

#[derive(Debug, Clone, Copy)]
struct LastAccess {
    tid: u64,
    wrote: bool,
    read_tid: u64,
    read_any: bool,
    /// More than one distinct thread has read this element. Without this
    /// a later read by the eventual writer would mask the foreign read
    /// (lockstep order: foreign read, own read, own write) and the
    /// write-after-read conflict would go unreported.
    read_many: bool,
}

/// Per-launch access table. Tracks, per element, the last writer and
/// whether any other thread touched it.
#[derive(Debug, Default)]
pub struct RaceDetector {
    last: HashMap<(Handle, u64), LastAccess>,
    races: HashMap<Handle, RaceReport>,
}

impl RaceDetector {
    /// Fresh detector (one per kernel launch).
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// Record an access by thread `tid` to `handle[idx]`.
    pub fn record(&mut self, handle: Handle, label: &str, idx: u64, tid: u64, kind: AccessKind) {
        let entry = self.last.entry((handle, idx));
        match entry {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(LastAccess {
                    tid,
                    wrote: kind == AccessKind::Write,
                    read_tid: tid,
                    read_any: kind == AccessKind::Read,
                    read_many: false,
                });
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let la = o.get_mut();
                let conflict = match kind {
                    // write-after-write, or write after a read by any
                    // other thread (even one since shadowed by the
                    // writer's own read).
                    AccessKind::Write => {
                        (la.wrote && la.tid != tid)
                            || (la.read_any && (la.read_tid != tid || la.read_many))
                    }
                    // read-after-write by another thread
                    AccessKind::Read => la.wrote && la.tid != tid,
                };
                if conflict {
                    let other = if la.wrote {
                        la.tid
                    } else if la.read_tid != tid {
                        la.read_tid
                    } else {
                        la.tid
                    };
                    let rep = self.races.entry(handle).or_insert_with(|| RaceReport {
                        handle,
                        label: label.to_string(),
                        conflicts: 0,
                        example_idx: idx,
                        example_threads: (other, tid),
                    });
                    rep.conflicts += 1;
                }
                match kind {
                    AccessKind::Write => {
                        la.wrote = true;
                        la.tid = tid;
                    }
                    AccessKind::Read => {
                        if la.read_any && la.read_tid != tid {
                            la.read_many = true;
                        }
                        la.read_any = true;
                        la.read_tid = tid;
                    }
                }
            }
        }
    }

    /// Reports for all buffers that raced, sorted by label.
    pub fn reports(&self) -> Vec<RaceReport> {
        let mut v: Vec<RaceReport> = self.races.values().cloned().collect();
        v.sort_by(|a, b| a.label.cmp(&b.label));
        v
    }

    /// True if any race was observed.
    pub fn any(&self) -> bool {
        !self.races.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: Handle = Handle(3);

    #[test]
    fn disjoint_indices_do_not_race() {
        let mut d = RaceDetector::new();
        d.record(H, "a", 0, 0, AccessKind::Write);
        d.record(H, "a", 1, 1, AccessKind::Write);
        d.record(H, "a", 0, 0, AccessKind::Read);
        assert!(!d.any());
    }

    #[test]
    fn write_write_conflict_detected() {
        let mut d = RaceDetector::new();
        d.record(H, "tmp", 0, 0, AccessKind::Write);
        d.record(H, "tmp", 0, 1, AccessKind::Write);
        assert!(d.any());
        let r = &d.reports()[0];
        assert_eq!(r.label, "tmp");
        assert_eq!(r.example_threads, (0, 1));
        assert_eq!(r.conflicts, 1);
    }

    #[test]
    fn read_after_foreign_write_detected() {
        let mut d = RaceDetector::new();
        d.record(H, "s", 0, 2, AccessKind::Write);
        d.record(H, "s", 0, 5, AccessKind::Read);
        assert!(d.any());
    }

    #[test]
    fn write_after_foreign_read_detected() {
        let mut d = RaceDetector::new();
        d.record(H, "s", 0, 2, AccessKind::Read);
        d.record(H, "s", 0, 5, AccessKind::Write);
        assert!(d.any());
    }

    #[test]
    fn same_thread_sequence_is_fine() {
        let mut d = RaceDetector::new();
        d.record(H, "x", 0, 4, AccessKind::Read);
        d.record(H, "x", 0, 4, AccessKind::Write);
        d.record(H, "x", 0, 4, AccessKind::Read);
        assert!(!d.any());
    }

    #[test]
    fn conflicts_accumulate_per_buffer() {
        let mut d = RaceDetector::new();
        for t in 0..10u64 {
            d.record(H, "acc", 0, t, AccessKind::Read);
            d.record(H, "acc", 0, t, AccessKind::Write);
        }
        let r = &d.reports()[0];
        assert!(r.conflicts >= 9, "{}", r.conflicts);
        assert_eq!(d.reports().len(), 1);
    }

    #[test]
    fn own_read_does_not_mask_foreign_read() {
        // Lockstep loop-carried dependence order: thread 2 reads, then
        // thread 1 reads and writes the same element. The write still
        // conflicts with thread 2's earlier read.
        let mut d = RaceDetector::new();
        d.record(H, "b", 1, 2, AccessKind::Read);
        d.record(H, "b", 1, 1, AccessKind::Read);
        d.record(H, "b", 1, 1, AccessKind::Write);
        assert!(d.any());
    }

    #[test]
    fn reads_only_never_race() {
        let mut d = RaceDetector::new();
        for t in 0..5u64 {
            d.record(H, "ro", 0, t, AccessKind::Read);
        }
        assert!(!d.any());
    }
}
