//! # openarc-gpusim
//!
//! Deterministic GPU simulator for OpenARC-rs — the substitute for the
//! paper's Tesla M2090 + CUDA stack (see DESIGN.md §4).
//!
//! What it preserves of the real machine, because the paper's results
//! depend on it:
//!
//! * **Separate address spaces** — device memory is its own
//!   [`openarc_vm::MemSpace`]; data moves only through explicit transfers,
//!   so missing/redundant-transfer bugs behave as on hardware.
//! * **Lockstep thread execution** ([`exec::launch`]) — races from missed
//!   privatization corrupt results deterministically, like
//!   warp-synchronous execution.
//! * **Transfer/latency cost shape** ([`cost::CostModel`]) — per-transfer
//!   latency plus bandwidth term, slow single threads but high aggregate
//!   throughput, so time breakdowns (Figures 1/3/4) keep the paper's shape.
//! * **Floating-point divergence** — `float` math stays in f32 and
//!   reductions combine in tree order ([`exec::tree_combine`]).
//!
//! Beyond the paper's hardware, the simulator adds a race **oracle**
//! ([`race::RaceDetector`]) used to count latent errors in the Table 2
//! reproduction.
//!
//! ## Event journal
//!
//! The simulated clock ([`clock::SimClock`]) owns the run's
//! [`openarc_trace::Journal`]. Every time charge
//! ([`SimClock::advance`], and the stall portion of [`SimClock::wait`])
//! emits a `Slice` event tagged with its [`TimeCategory`] at the moment
//! the charge lands — so the journal's per-category totals are the same
//! f64 additions, in the same order, as [`TimeBreakdown`], and reconcile
//! with it exactly. Async work enqueued via [`SimClock::enqueue_async`]
//! reports its true simulated start time so kernel/transfer spans land
//! on the right queue track of the trace.

#![warn(missing_docs)]

pub mod clock;
pub mod cost;
pub mod device;
pub mod exec;
pub mod race;

pub use clock::{SimClock, TimeBreakdown, TimeCategory};
pub use cost::CostModel;
pub use device::{Device, DeviceEnv, DeviceId, DeviceSet};
pub use exec::{launch, tree_combine, KernelOutcome, LaunchConfig};
pub use race::{AccessKind, RaceDetector, RaceReport};
