//! Simulated wall clock with async-queue timelines and a per-category
//! time breakdown (the accounting behind the paper's Figure 3).
//!
//! When a [`JournalPart`] is attached, the clock emits a
//! [`openarc_trace::EventKind::Slice`] at the instant each charge lands, so
//! per-category sums over the journal reproduce [`TimeBreakdown`] exactly
//! (same `f64` additions, same order).

use crate::device::DeviceId;
use openarc_trace::{Category, EventKind, JournalPart, TraceEvent, Track};
use std::collections::HashMap;

/// Where simulated time was spent. Matches Figure 3's legend plus kernel
/// execution (which the figure folds into Async-Wait because verification
/// kernels run asynchronously).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeCategory {
    /// Device memory frees.
    GpuMemFree,
    /// Device memory allocations.
    GpuMemAlloc,
    /// Host↔device transfers (synchronous part).
    MemTransfer,
    /// Host blocked in `wait` for async work.
    AsyncWait,
    /// Output comparison against the CPU reference (kernel verification).
    ResultComp,
    /// Host CPU computation.
    CpuTime,
    /// Synchronous kernel execution.
    KernelExec,
}

impl TimeCategory {
    /// All categories, in Figure 3 order.
    pub const ALL: [TimeCategory; 7] = [
        TimeCategory::GpuMemFree,
        TimeCategory::GpuMemAlloc,
        TimeCategory::MemTransfer,
        TimeCategory::AsyncWait,
        TimeCategory::ResultComp,
        TimeCategory::CpuTime,
        TimeCategory::KernelExec,
    ];

    /// Display label (Figure 3 legend).
    pub fn label(self) -> &'static str {
        match self {
            TimeCategory::GpuMemFree => "GPU Mem Free",
            TimeCategory::GpuMemAlloc => "GPU Mem Alloc",
            TimeCategory::MemTransfer => "Mem Transfer",
            TimeCategory::AsyncWait => "Async-Wait",
            TimeCategory::ResultComp => "Result-Comp",
            TimeCategory::CpuTime => "CPU Time",
            TimeCategory::KernelExec => "Kernel Exec",
        }
    }

    /// The journal-schema category this clock category maps onto.
    pub fn trace_category(self) -> Category {
        match self {
            TimeCategory::GpuMemFree => Category::GpuMemFree,
            TimeCategory::GpuMemAlloc => Category::GpuMemAlloc,
            TimeCategory::MemTransfer => Category::MemTransfer,
            TimeCategory::AsyncWait => Category::AsyncWait,
            TimeCategory::ResultComp => Category::ResultComp,
            TimeCategory::CpuTime => Category::CpuTime,
            TimeCategory::KernelExec => Category::KernelExec,
        }
    }
}

/// Accumulated simulated time per category, µs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeBreakdown {
    per_cat: HashMap<u8, f64>,
}

impl TimeBreakdown {
    fn key(cat: TimeCategory) -> u8 {
        TimeCategory::ALL.iter().position(|c| *c == cat).unwrap() as u8
    }

    /// Add `dt` µs to `cat`.
    pub fn add(&mut self, cat: TimeCategory, dt: f64) {
        *self.per_cat.entry(Self::key(cat)).or_insert(0.0) += dt;
    }

    /// Time spent in `cat`.
    pub fn get(&self, cat: TimeCategory) -> f64 {
        self.per_cat.get(&Self::key(cat)).copied().unwrap_or(0.0)
    }

    /// Sum of all categories.
    pub fn total(&self) -> f64 {
        self.per_cat.values().sum()
    }
}

/// The machine clock: a host timeline plus one timeline per async queue,
/// where queues are namespaced per simulated device (`(device, queue)`
/// keys). Single-device callers use the [`SimClock::enqueue_async`] /
/// [`SimClock::wait`] shorthands, which address [`DeviceId::PRIMARY`].
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    host_now: f64,
    queues: HashMap<(DeviceId, i64), f64>,
    /// Per-category accounting of host-visible time.
    pub breakdown: TimeBreakdown,
    /// Event journal writer: a buffered [`JournalPart`] so the per-charge
    /// emission path is a branch plus a push — no lock. The default
    /// (disabled) part makes every emission a single branch. Flush it (or
    /// drop the clock) to publish into the shared journal.
    pub journal: JournalPart,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Rebuild a clock from a recorded final state: host time,
    /// per-category breakdown, and the per-`(device, queue)` timeline
    /// snapshot from [`SimClock::queue_snapshot`]. The journal starts
    /// disabled. Used by the on-disk artifact cache to reconstruct the
    /// observable clock of a cached run; restoring the queue ends keeps
    /// any replay across the restore point from seeing in-flight async
    /// state silently zeroed.
    pub fn restore(
        host_now: f64,
        breakdown: TimeBreakdown,
        queues: Vec<(DeviceId, i64, f64)>,
    ) -> SimClock {
        SimClock {
            host_now,
            queues: queues
                .into_iter()
                .map(|(d, q, end)| ((d, q), end))
                .collect(),
            breakdown,
            journal: JournalPart::default(),
        }
    }

    /// Snapshot every queue timeline as `(device, queue, end)` triples,
    /// sorted by `(device, queue)` so the encoding is deterministic.
    pub fn queue_snapshot(&self) -> Vec<(DeviceId, i64, f64)> {
        let mut out: Vec<(DeviceId, i64, f64)> = self
            .queues
            .iter()
            .map(|((d, q), end)| (*d, *q, *end))
            .collect();
        out.sort_unstable_by_key(|(d, q, _)| (*d, *q));
        out
    }

    /// Current host time, µs.
    pub fn now(&self) -> f64 {
        self.host_now
    }

    /// Advance the host timeline by `dt` µs, charging `cat`.
    pub fn advance(&mut self, cat: TimeCategory, dt: f64) {
        debug_assert!(dt >= 0.0, "negative time {dt}");
        self.journal.emit(TraceEvent {
            ts_us: self.host_now,
            dur_us: dt,
            track: Track::Host,
            kind: EventKind::Slice {
                cat: cat.trace_category(),
            },
        });
        self.host_now += dt;
        self.breakdown.add(cat, dt);
    }

    /// Enqueue `dt` µs of asynchronous work on the primary device's
    /// `queue`. See [`SimClock::enqueue_async_on`].
    pub fn enqueue_async(&mut self, queue: i64, dt: f64) -> f64 {
        self.enqueue_async_on(DeviceId::PRIMARY, queue, dt)
    }

    /// Enqueue `dt` µs of asynchronous work on device `dev`'s `queue`.
    /// The work starts no earlier than the host's current time and the
    /// queue's previous end; the host does not block. Returns the
    /// simulated start time of the enqueued span, so callers can journal
    /// it with a true timestamp. Queues on distinct devices are fully
    /// independent timelines.
    pub fn enqueue_async_on(&mut self, dev: DeviceId, queue: i64, dt: f64) -> f64 {
        let end = self.queues.entry((dev, queue)).or_insert(0.0);
        let start = end.max(self.host_now);
        *end = start + dt;
        start
    }

    /// Block the host until the primary device's `queue` drains. See
    /// [`SimClock::wait_on`].
    pub fn wait(&mut self, queue: i64) {
        self.wait_on(DeviceId::PRIMARY, queue);
    }

    /// Block the host until device `dev`'s `queue` drains, charging the
    /// stall to [`TimeCategory::AsyncWait`].
    pub fn wait_on(&mut self, dev: DeviceId, queue: i64) {
        if let Some(end) = self.queues.get(&(dev, queue)).copied() {
            if end > self.host_now {
                let stall = end - self.host_now;
                self.journal.emit(TraceEvent {
                    ts_us: self.host_now,
                    dur_us: stall,
                    track: Track::Host,
                    kind: EventKind::Slice {
                        cat: Category::AsyncWait,
                    },
                });
                self.host_now = end;
                self.breakdown.add(TimeCategory::AsyncWait, stall);
            }
        }
    }

    /// Block the host until every queue on device `dev` drains, in
    /// sorted-id order.
    pub fn wait_all_on(&mut self, dev: DeviceId) {
        let mut queues: Vec<i64> = self
            .queues
            .keys()
            .filter(|(d, _)| *d == dev)
            .map(|(_, q)| *q)
            .collect();
        queues.sort_unstable();
        for q in queues {
            self.wait_on(dev, q);
        }
    }

    /// Block the host until every queue on every device drains. Queues
    /// drain in sorted `(device, id)` order so journaled stall slices are
    /// deterministic — identical to sorted-id order when only the primary
    /// device has queues.
    pub fn wait_all(&mut self) {
        let mut keys: Vec<(DeviceId, i64)> = self.queues.keys().copied().collect();
        keys.sort_unstable();
        for (d, q) in keys {
            self.wait_on(d, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates_by_category() {
        let mut c = SimClock::new();
        c.advance(TimeCategory::CpuTime, 5.0);
        c.advance(TimeCategory::MemTransfer, 3.0);
        c.advance(TimeCategory::CpuTime, 2.0);
        assert_eq!(c.now(), 10.0);
        assert_eq!(c.breakdown.get(TimeCategory::CpuTime), 7.0);
        assert_eq!(c.breakdown.get(TimeCategory::MemTransfer), 3.0);
        assert_eq!(c.breakdown.total(), 10.0);
    }

    #[test]
    fn async_overlap_hides_gpu_time() {
        let mut c = SimClock::new();
        c.enqueue_async(1, 100.0); // kernel on queue 1
        c.advance(TimeCategory::CpuTime, 60.0); // CPU overlaps
        c.wait(1);
        // Only the remaining 40 µs stall the host.
        assert_eq!(c.breakdown.get(TimeCategory::AsyncWait), 40.0);
        assert_eq!(c.now(), 100.0);
    }

    #[test]
    fn async_fully_hidden_when_cpu_longer() {
        let mut c = SimClock::new();
        c.enqueue_async(1, 30.0);
        c.advance(TimeCategory::CpuTime, 50.0);
        c.wait(1);
        assert_eq!(c.breakdown.get(TimeCategory::AsyncWait), 0.0);
        assert_eq!(c.now(), 50.0);
    }

    #[test]
    fn queue_serializes_its_own_work() {
        let mut c = SimClock::new();
        c.enqueue_async(1, 10.0);
        c.enqueue_async(1, 10.0); // starts after the first
        c.wait(1);
        assert_eq!(c.now(), 20.0);
    }

    #[test]
    fn separate_queues_overlap() {
        let mut c = SimClock::new();
        c.enqueue_async(1, 10.0);
        c.enqueue_async(2, 10.0);
        c.wait_all();
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    fn wait_on_idle_queue_is_free() {
        let mut c = SimClock::new();
        c.wait(7);
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn async_after_host_progress_starts_at_host_now() {
        let mut c = SimClock::new();
        c.advance(TimeCategory::CpuTime, 100.0);
        let start = c.enqueue_async(1, 5.0);
        assert_eq!(start, 100.0);
        c.wait(1);
        assert_eq!(c.now(), 105.0);
    }

    #[test]
    fn async_transfer_kernel_chain_reconciles_with_breakdown() {
        // The verified-launch pipeline's clock shape: staged demotion
        // copies enqueued async, the kernel queued behind them on the same
        // queue, CPU reference time overlapping, then one wait. Journal
        // slices must reconcile with the breakdown bit-for-bit, and the
        // async work must surface purely as the wait's stall.
        let shared = openarc_trace::Journal::enabled();
        let mut c = SimClock::new();
        c.journal = JournalPart::new(shared.clone());
        let t0 = c.enqueue_async(3, 4.0); // staged copy 1
        let t1 = c.enqueue_async(3, 4.0); // staged copy 2, queued behind it
        let t2 = c.enqueue_async(3, 20.0); // async kernel behind the copies
        assert_eq!((t0, t1, t2), (0.0, 4.0, 8.0), "queue serializes the chain");
        c.advance(TimeCategory::CpuTime, 10.0); // CPU reference overlaps
        c.wait(3);
        c.journal.flush();
        // The transfers and kernel never touch their synchronous
        // categories — everything async folds into the wait's stall.
        assert_eq!(c.breakdown.get(TimeCategory::MemTransfer), 0.0);
        assert_eq!(c.breakdown.get(TimeCategory::KernelExec), 0.0);
        assert_eq!(c.breakdown.get(TimeCategory::AsyncWait), 28.0 - 10.0);
        assert_eq!(c.now(), 28.0);
        // Event-for-event reconciliation: per-category slice sums equal
        // the breakdown, and slices tile the host timeline end to end.
        let events = shared.snapshot();
        for (cat, total) in openarc_trace::category_totals(&events) {
            let clock_cat = TimeCategory::ALL
                .iter()
                .copied()
                .find(|t| t.trace_category() == cat)
                .unwrap();
            assert_eq!(total, c.breakdown.get(clock_cat), "{cat}");
        }
        let mut cursor = 0.0;
        for e in &events {
            assert_eq!(e.ts_us, cursor, "slices tile the host timeline");
            cursor += e.dur_us;
        }
        assert_eq!(cursor, c.now());
    }

    #[test]
    fn same_queue_id_on_distinct_devices_is_independent() {
        let mut c = SimClock::new();
        c.enqueue_async_on(DeviceId(0), 1, 10.0);
        c.enqueue_async_on(DeviceId(1), 1, 10.0); // same id, other device
        c.wait_all();
        // Independent timelines: both spans ran concurrently.
        assert_eq!(c.now(), 10.0);
        // Whereas chaining on one device's queue serializes:
        let mut c = SimClock::new();
        c.enqueue_async_on(DeviceId(1), 1, 10.0);
        c.enqueue_async_on(DeviceId(1), 1, 10.0);
        c.wait_all();
        assert_eq!(c.now(), 20.0);
    }

    #[test]
    fn wait_all_on_drains_only_that_device() {
        let mut c = SimClock::new();
        c.enqueue_async_on(DeviceId(0), 1, 10.0);
        c.enqueue_async_on(DeviceId(1), 1, 30.0);
        c.wait_all_on(DeviceId(0));
        assert_eq!(c.now(), 10.0);
        c.wait_all_on(DeviceId(1));
        assert_eq!(c.now(), 30.0);
    }

    #[test]
    fn restore_preserves_queue_timelines() {
        // Regression: `restore` used to drop queue timelines, silently
        // zeroing in-flight async state for any replay across a restore
        // point. A wait after restore must still see the queued work.
        let mut c = SimClock::new();
        c.enqueue_async_on(DeviceId(0), 1, 40.0);
        c.enqueue_async_on(DeviceId(1), 2, 70.0);
        c.advance(TimeCategory::CpuTime, 10.0);

        let snap = c.queue_snapshot();
        assert_eq!(
            snap,
            vec![(DeviceId(0), 1, 40.0), (DeviceId(1), 2, 70.0)],
            "snapshot is sorted by (device, queue)"
        );
        let mut r = SimClock::restore(c.now(), c.breakdown.clone(), snap);
        assert_eq!(r.now(), c.now());
        assert_eq!(r.breakdown, c.breakdown);
        assert_eq!(r.queue_snapshot(), c.queue_snapshot());

        // The restored clock replays exactly like the original.
        c.wait_all();
        r.wait_all();
        assert_eq!(r.now(), c.now());
        assert_eq!(r.now(), 70.0);
        assert_eq!(
            r.breakdown.get(TimeCategory::AsyncWait).to_bits(),
            c.breakdown.get(TimeCategory::AsyncWait).to_bits()
        );
    }

    #[test]
    fn journal_slices_reconcile_with_breakdown() {
        let shared = openarc_trace::Journal::enabled();
        let mut c = SimClock::new();
        c.journal = JournalPart::new(shared.clone());
        c.advance(TimeCategory::CpuTime, 1.25);
        c.advance(TimeCategory::MemTransfer, 0.5);
        c.enqueue_async(1, 10.0);
        c.advance(TimeCategory::CpuTime, 3.0);
        c.wait_all();
        c.journal.flush();
        let events = shared.snapshot();
        for (cat, total) in openarc_trace::category_totals(&events) {
            let clock_cat = TimeCategory::ALL
                .iter()
                .copied()
                .find(|t| t.trace_category() == cat)
                .unwrap();
            assert_eq!(total, c.breakdown.get(clock_cat), "{cat}");
        }
    }
}
