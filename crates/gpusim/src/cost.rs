//! Cost model for the simulated accelerator machine.
//!
//! The paper's platform was an Intel Xeon X5660 host with an NVIDIA Tesla
//! M2090 over PCIe 2.0. We model the *shape* of that machine: a host CPU
//! executing ~10⁹ simple operations per second, an accelerator with much
//! higher aggregate throughput but slower single threads, and a transfer
//! link whose per-transfer latency dominates small copies while bandwidth
//! dominates large ones. All times are in microseconds of simulated time.

/// Tunable machine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of one host↔device transfer (PCIe + driver latency), µs.
    pub xfer_latency_us: f64,
    /// Transfer bandwidth in bytes per µs (8 GB/s ≈ 8000 B/µs).
    pub xfer_bytes_per_us: f64,
    /// Device memory allocation cost, µs.
    pub alloc_us: f64,
    /// Device memory free cost, µs.
    pub free_us: f64,
    /// Kernel launch overhead, µs.
    pub launch_us: f64,
    /// Host CPU rate: interpreted VM instructions per µs.
    pub cpu_instr_per_us: f64,
    /// Aggregate device rate: VM instructions per µs across all threads.
    pub gpu_agg_instr_per_us: f64,
    /// Single device thread rate (GPU cores are slower than CPU cores).
    pub gpu_thread_instr_per_us: f64,
    /// Cost of one runtime coherence check / status call, µs (drives the
    /// Figure 4 instrumentation-overhead measurement).
    pub check_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Roughly Fermi-class ratios: CPU 1 GHz-equivalent interpreter,
        // GPU 50× aggregate throughput, individual GPU thread 10× slower
        // than a CPU thread, PCIe 2.0 x16 ≈ 6 GB/s with ~20 µs latency.
        CostModel {
            xfer_latency_us: 20.0,
            xfer_bytes_per_us: 6000.0,
            alloc_us: 10.0,
            free_us: 5.0,
            launch_us: 8.0,
            cpu_instr_per_us: 1000.0,
            gpu_agg_instr_per_us: 50_000.0,
            gpu_thread_instr_per_us: 100.0,
            check_us: 0.08,
        }
    }
}

impl CostModel {
    /// Time for one host↔device transfer of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.xfer_latency_us + bytes as f64 / self.xfer_bytes_per_us
    }

    /// Time for a kernel that executed `total_instrs` over all threads, with
    /// the longest single thread executing `max_thread_instrs`.
    ///
    /// The kernel is throughput-bound when wide, latency-bound (critical
    /// path of the longest thread) when narrow.
    pub fn kernel_time(&self, total_instrs: u64, max_thread_instrs: u64) -> f64 {
        let throughput = total_instrs as f64 / self.gpu_agg_instr_per_us;
        let critical = max_thread_instrs as f64 / self.gpu_thread_instr_per_us;
        self.launch_us + throughput.max(critical)
    }

    /// Time for `instrs` interpreted host instructions.
    pub fn cpu_time(&self, instrs: u64) -> f64 {
        instrs as f64 / self.cpu_instr_per_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_latency_dominates_small_copies() {
        let c = CostModel::default();
        let small = c.transfer_time(64);
        let large = c.transfer_time(64 * 1024 * 1024);
        assert!(small < 21.0, "{small}");
        assert!(large > 1000.0, "{large}");
        // Two small transfers cost more than one transfer of combined size.
        assert!(2.0 * c.transfer_time(1024) > c.transfer_time(2048));
    }

    #[test]
    fn kernel_time_bounded_by_critical_path() {
        let c = CostModel::default();
        // Narrow kernel: 1 thread, 10_000 instrs → latency-bound.
        let narrow = c.kernel_time(10_000, 10_000);
        assert!(narrow >= 10_000.0 / c.gpu_thread_instr_per_us);
        // Wide kernel: 1M instrs over many threads, longest 100.
        let wide = c.kernel_time(1_000_000, 100);
        assert!((wide - (c.launch_us + 1_000_000.0 / c.gpu_agg_instr_per_us)).abs() < 1e-9);
    }

    #[test]
    fn gpu_aggregate_faster_than_cpu() {
        let c = CostModel::default();
        let n = 10_000_000u64;
        assert!(c.kernel_time(n, n / 1000) < c.cpu_time(n));
    }
}
