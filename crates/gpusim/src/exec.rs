//! Lockstep kernel executor.
//!
//! Kernels are MiniC functions compiled to bytecode whose first parameter
//! is the global thread id. The executor instantiates one resumable
//! [`ThreadState`] per thread and steps them **round-robin, one instruction
//! at a time**, in waves of bounded width (like resident thread blocks).
//!
//! Lockstep interleaving is what makes the paper's target bugs observable:
//! when a privatization is missed and a scalar temporary is shared, every
//! thread's write lands before any thread's read, so the race corrupts the
//! result deterministically — exactly the "active error" class of Table 2.

use crate::device::{Device, DeviceEnv};
use crate::race::{RaceDetector, RaceReport};
use openarc_vm::{Module, ThreadState, Value, VmError};

/// Execution knobs for one launch.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Number of threads resident (stepped in lockstep) at once.
    pub wave: u32,
    /// Total instruction budget across all threads (runaway guard).
    pub step_budget: u64,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            wave: 256,
            step_budget: 2_000_000_000,
        }
    }
}

/// Instruction counts and race reports from one kernel launch.
#[derive(Debug, Clone, Default)]
pub struct KernelOutcome {
    /// Instructions executed over all threads.
    pub total_instrs: u64,
    /// Longest single-thread instruction count.
    pub max_thread_instrs: u64,
    /// Races observed (empty when detection is off).
    pub races: Vec<RaceReport>,
    /// Number of threads launched.
    pub n_threads: u64,
}

/// Launch `kernel` over `n_threads` threads. Thread `i` receives arguments
/// `[Int(i), base_args...]`.
pub fn launch(
    device: &mut Device,
    module: &Module,
    kernel: &str,
    base_args: &[Value],
    n_threads: u64,
    cfg: &LaunchConfig,
) -> Result<KernelOutcome, VmError> {
    let mut outcome = KernelOutcome {
        n_threads,
        ..Default::default()
    };
    let mut detector = device.race_detect.then(RaceDetector::new);
    let wave = cfg.wave.max(1) as u64;
    let mut spent: u64 = 0;

    let mut start = 0u64;
    while start < n_threads {
        let end = (start + wave).min(n_threads);
        let mut threads: Vec<ThreadState> = Vec::with_capacity((end - start) as usize);
        let mut args: Vec<Value> = Vec::with_capacity(base_args.len() + 1);
        for tid in start..end {
            args.clear();
            args.push(Value::Int(tid as i64));
            args.extend_from_slice(base_args);
            threads.push(ThreadState::new(module, kernel, &args)?);
        }
        let mut env = DeviceEnv::new(&mut device.mem, detector.as_mut());
        // Lockstep: one instruction per live thread per round.
        let mut live = threads.len();
        while live > 0 {
            for (i, t) in threads.iter_mut().enumerate() {
                if t.is_done() {
                    continue;
                }
                env.current_tid = start + i as u64;
                t.step(module, &mut env)?;
                spent += 1;
                if spent > cfg.step_budget {
                    return Err(VmError::StepLimit(cfg.step_budget));
                }
                if t.is_done() {
                    live -= 1;
                }
            }
        }
        for t in &threads {
            outcome.total_instrs += t.steps;
            outcome.max_thread_instrs = outcome.max_thread_instrs.max(t.steps);
        }
        start = end;
    }
    if let Some(d) = detector {
        outcome.races = d.reports();
    }
    Ok(outcome)
}

/// Combine per-thread partial values pairwise (tournament tree), the way a
/// GPU reduction combines partials. For floating point this produces
/// different rounding than the host's left-to-right loop — the precision
/// mismatch the paper's configurable error margin exists to absorb.
pub fn tree_combine(
    vals: &[Value],
    f: &dyn Fn(Value, Value) -> Result<Value, VmError>,
) -> Result<Option<Value>, VmError> {
    if vals.is_empty() {
        return Ok(None);
    }
    let mut level: Vec<Value> = vals.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(f(pair[0], pair[1])?);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    Ok(Some(level[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::ast::BinOp;
    use openarc_minic::frontend;
    use openarc_minic::ScalarTy;
    use openarc_vm::{compile, interp::eval_bin};

    /// Compile a standalone kernel program (kernels take `__gid` first).
    fn kernel_module(src: &str) -> Module {
        let (p, s) = frontend(src).expect("frontend");
        compile(&p, &s).expect("compile")
    }

    #[test]
    fn parallel_elementwise_copy() {
        let m = kernel_module("void k(int gid, double *q, double *w) { q[gid] = w[gid]; }");
        let mut dev = Device::new();
        let q = dev.mem.alloc(ScalarTy::Double, 100, "q");
        let w = dev.mem.alloc(ScalarTy::Double, 100, "w");
        for i in 0..100 {
            dev.mem.store(w, i, Value::F64(i as f64)).unwrap();
        }
        let out = launch(
            &mut dev,
            &m,
            "k",
            &[Value::Ptr(q), Value::Ptr(w)],
            100,
            &LaunchConfig::default(),
        )
        .unwrap();
        assert_eq!(out.n_threads, 100);
        assert!(out.races.is_empty(), "{:?}", out.races);
        for i in 0..100 {
            assert_eq!(dev.mem.load(q, i).unwrap(), Value::F64(i as f64));
        }
        assert!(out.total_instrs > 0);
        assert!(out.max_thread_instrs <= out.total_instrs);
    }

    #[test]
    fn missed_privatization_races_and_corrupts() {
        // `tmp` is a shared one-element buffer instead of a private local:
        // lockstep guarantees every thread's write lands before the reads.
        let m = kernel_module(
            "void k(int gid, double *a, double *tmp) { tmp[0] = (double) gid; a[gid] = tmp[0] * 2.0; }",
        );
        let mut dev = Device::new();
        let a = dev.mem.alloc(ScalarTy::Double, 64, "a");
        let tmp = dev.mem.alloc(ScalarTy::Double, 1, "tmp");
        let out = launch(
            &mut dev,
            &m,
            "k",
            &[Value::Ptr(a), Value::Ptr(tmp)],
            64,
            &LaunchConfig::default(),
        )
        .unwrap();
        assert!(!out.races.is_empty(), "expected a race on tmp");
        assert_eq!(out.races[0].label, "tmp");
        // Lockstep: every thread read the LAST writer's value (63).
        let mut wrong = 0;
        for i in 0..64 {
            if dev.mem.load(a, i).unwrap() != Value::F64(i as f64 * 2.0) {
                wrong += 1;
            }
        }
        assert!(
            wrong >= 63,
            "lockstep should corrupt nearly all lanes, got {wrong}"
        );
    }

    #[test]
    fn private_local_does_not_race() {
        let m = kernel_module(
            "void k(int gid, double *a) { double tmp; tmp = (double) gid; a[gid] = tmp * 2.0; }",
        );
        let mut dev = Device::new();
        let a = dev.mem.alloc(ScalarTy::Double, 64, "a");
        let out = launch(
            &mut dev,
            &m,
            "k",
            &[Value::Ptr(a)],
            64,
            &LaunchConfig::default(),
        )
        .unwrap();
        assert!(out.races.is_empty());
        for i in 0..64 {
            assert_eq!(dev.mem.load(a, i).unwrap(), Value::F64(i as f64 * 2.0));
        }
    }

    #[test]
    fn waves_partition_large_launches() {
        let m = kernel_module("void k(int gid, int *a) { a[gid] = gid + 1; }");
        let mut dev = Device::new();
        let a = dev.mem.alloc(ScalarTy::Int, 1000, "a");
        let cfg = LaunchConfig {
            wave: 64,
            ..Default::default()
        };
        launch(&mut dev, &m, "k", &[Value::Ptr(a)], 1000, &cfg).unwrap();
        for i in 0..1000 {
            assert_eq!(dev.mem.load(a, i).unwrap(), Value::Int(i as i64 + 1));
        }
    }

    #[test]
    fn step_budget_enforced() {
        let m = kernel_module("void k(int gid, int *a) { while (1) { a[0] = gid; } }");
        let mut dev = Device::new();
        let a = dev.mem.alloc(ScalarTy::Int, 1, "a");
        let cfg = LaunchConfig {
            wave: 8,
            step_budget: 10_000,
        };
        let r = launch(&mut dev, &m, "k", &[Value::Ptr(a)], 8, &cfg);
        assert!(matches!(r, Err(VmError::StepLimit(_))));
    }

    #[test]
    fn zero_threads_is_a_noop() {
        let m = kernel_module("void k(int gid) { }");
        let mut dev = Device::new();
        let out = launch(&mut dev, &m, "k", &[], 0, &LaunchConfig::default()).unwrap();
        assert_eq!(out.total_instrs, 0);
        assert_eq!(out.n_threads, 0);
    }

    #[test]
    fn tree_combine_matches_sum_for_ints() {
        let vals: Vec<Value> = (1..=10).map(Value::Int).collect();
        let f = |a: Value, b: Value| eval_bin(BinOp::Add, a, b);
        let r = tree_combine(&vals, &f).unwrap().unwrap();
        assert_eq!(r, Value::Int(55));
    }

    #[test]
    fn tree_combine_float_order_differs_from_sequential() {
        // A big head value swallows the 1.0s one-by-one sequentially (f32
        // eps at 1e8 is 8.0), while the tree first builds them into one
        // large partial that survives the final add.
        let mut vals = vec![Value::F32(1e8)];
        vals.extend(std::iter::repeat_n(Value::F32(1.0), 1000));
        let mut seq = 0.0f32;
        for v in &vals {
            if let Value::F32(x) = v {
                seq += x;
            }
        }
        let f = |a: Value, b: Value| eval_bin(BinOp::Add, a, b);
        let tree = match tree_combine(&vals, &f).unwrap().unwrap() {
            Value::F32(x) => x,
            other => panic!("{other:?}"),
        };
        assert_ne!(seq, tree, "tree and sequential rounding should differ");
        assert!((seq - tree).abs() / seq.abs() < 1e-4, "but only slightly");
    }

    #[test]
    fn tree_combine_empty_is_none() {
        let f = |a: Value, b: Value| eval_bin(BinOp::Add, a, b);
        assert_eq!(tree_combine(&[], &f).unwrap(), None);
    }

    #[test]
    fn race_detection_can_be_disabled() {
        let m = kernel_module("void k(int gid, int *x) { x[0] = gid; }");
        let mut dev = Device::new();
        dev.race_detect = false;
        let x = dev.mem.alloc(ScalarTy::Int, 1, "x");
        let out = launch(
            &mut dev,
            &m,
            "k",
            &[Value::Ptr(x)],
            32,
            &LaunchConfig::default(),
        )
        .unwrap();
        assert!(out.races.is_empty());
    }
}
