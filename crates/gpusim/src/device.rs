//! The simulated accelerator device: its own address space and the
//! kernel-visible execution environment.

use crate::race::{AccessKind, RaceDetector};
use openarc_minic::ScalarTy;
use openarc_vm::{Env, Handle, MemSpace, Value, VmError};
use std::collections::HashMap;

/// Identifier of one simulated device within a [`DeviceSet`].
///
/// Device 0 ([`DeviceId::PRIMARY`]) is the device every single-device
/// code path talks to; the multi-device APIs thread an explicit id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The default device: what every pre-multi-device call site means.
    pub const PRIMARY: DeviceId = DeviceId(0);
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// A simulated GPU: a separate memory space plus race-detection switch.
#[derive(Debug, Default)]
pub struct Device {
    /// Device memory — disjoint from the host [`MemSpace`].
    pub mem: MemSpace,
    /// When true, kernel launches record conflicting accesses.
    pub race_detect: bool,
}

impl Device {
    /// A fresh device with race detection enabled (the simulator is our
    /// ground-truth oracle, so it defaults on; benches can disable it).
    pub fn new() -> Device {
        Device {
            mem: MemSpace::new(),
            race_detect: true,
        }
    }
}

/// N simulated devices, each with its own memory space and race-detection
/// switch. Device 0 is the primary device that all single-device code
/// paths address; a DAG-scheduled run fans launches across the rest.
#[derive(Debug)]
pub struct DeviceSet {
    devices: Vec<Device>,
}

impl DeviceSet {
    /// `n` fresh devices (race detection on). `n` is clamped to at least 1
    /// — an empty device set has no meaning for the runtime.
    pub fn new(n: usize) -> DeviceSet {
        DeviceSet {
            devices: (0..n.max(1)).map(|_| Device::new()).collect(),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false: a [`DeviceSet`] holds at least one device.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All valid ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.devices.len() as u32).map(DeviceId)
    }

    /// The primary device (id 0).
    pub fn primary(&self) -> &Device {
        &self.devices[0]
    }

    /// The primary device (id 0), mutably.
    pub fn primary_mut(&mut self) -> &mut Device {
        &mut self.devices[0]
    }

    /// Device `id`. Panics on an out-of-range id: the runtime assigns ids
    /// from a plan bounded by `len()`, so a bad id is a scheduler bug.
    pub fn get(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// Device `id`, mutably.
    pub fn get_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0 as usize]
    }

    /// Toggle race detection on every device.
    pub fn set_race_detect(&mut self, on: bool) {
        for d in &mut self.devices {
            d.race_detect = on;
        }
    }
}

impl Default for DeviceSet {
    fn default() -> DeviceSet {
        DeviceSet::new(1)
    }
}

/// The [`Env`] a simulated GPU thread executes against. Kernels receive all
/// data through parameters (CUDA-style), so global-slot access is an
/// internal error.
pub struct DeviceEnv<'a> {
    mem: &'a mut MemSpace,
    races: Option<&'a mut RaceDetector>,
    labels: HashMap<Handle, String>,
    /// Id of the thread currently being stepped (set by the executor).
    pub current_tid: u64,
}

impl<'a> DeviceEnv<'a> {
    /// Wrap device memory (and optionally a race detector) for one launch.
    pub fn new(mem: &'a mut MemSpace, races: Option<&'a mut RaceDetector>) -> DeviceEnv<'a> {
        DeviceEnv {
            mem,
            races,
            labels: HashMap::new(),
            current_tid: 0,
        }
    }

    fn label_of(&mut self, h: Handle) -> String {
        if let Some(l) = self.labels.get(&h) {
            return l.clone();
        }
        let l = self.mem.get(h).map(|b| b.label.clone()).unwrap_or_default();
        self.labels.insert(h, l.clone());
        l
    }

    fn note(&mut self, h: Handle, idx: u64, kind: AccessKind) {
        if self.races.is_some() {
            let tid = self.current_tid;
            let label = self.label_of(h);
            if let Some(r) = self.races.as_deref_mut() {
                r.record(h, &label, idx, tid, kind);
            }
        }
    }
}

impl Env for DeviceEnv<'_> {
    fn load_global(&mut self, slot: u16) -> Result<Value, VmError> {
        Err(VmError::Internal(format!(
            "kernel accessed host global slot {slot}; kernels must receive data via parameters"
        )))
    }

    fn store_global(&mut self, slot: u16, _v: Value) -> Result<(), VmError> {
        Err(VmError::Internal(format!(
            "kernel wrote host global slot {slot}; kernels must receive data via parameters"
        )))
    }

    fn load_elem(&mut self, h: Handle, idx: u64) -> Result<Value, VmError> {
        self.note(h, idx, AccessKind::Read);
        self.mem.load(h, idx)
    }

    fn store_elem(&mut self, h: Handle, idx: u64, v: Value) -> Result<(), VmError> {
        self.note(h, idx, AccessKind::Write);
        self.mem.store(h, idx, v)
    }

    fn malloc(&mut self, _elem: ScalarTy, _len: u64, _label: &str) -> Result<Handle, VmError> {
        Err(VmError::Internal(
            "kernels cannot allocate device memory".into(),
        ))
    }

    fn free(&mut self, _h: Handle) -> Result<(), VmError> {
        Err(VmError::Internal(
            "kernels cannot free device memory".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_env_tracks_accesses() {
        let mut mem = MemSpace::new();
        let h = mem.alloc(ScalarTy::Double, 4, "a");
        let mut det = RaceDetector::new();
        let mut env = DeviceEnv::new(&mut mem, Some(&mut det));
        env.current_tid = 0;
        env.store_elem(h, 0, Value::F64(1.0)).unwrap();
        env.current_tid = 1;
        env.store_elem(h, 0, Value::F64(2.0)).unwrap();
        assert!(det.any());
        assert_eq!(det.reports()[0].label, "a");
    }

    #[test]
    fn device_env_without_detector_still_works() {
        let mut mem = MemSpace::new();
        let h = mem.alloc(ScalarTy::Int, 2, "x");
        let mut env = DeviceEnv::new(&mut mem, None);
        env.store_elem(h, 1, Value::Int(9)).unwrap();
        assert_eq!(env.load_elem(h, 1).unwrap(), Value::Int(9));
    }

    #[test]
    fn kernel_global_access_is_internal_error() {
        let mut mem = MemSpace::new();
        let mut env = DeviceEnv::new(&mut mem, None);
        assert!(env.load_global(0).is_err());
        assert!(env.store_global(0, Value::Int(1)).is_err());
        assert!(env.malloc(ScalarTy::Int, 4, "x").is_err());
    }
}
