//! Criterion bench over the Figure 3 pipeline: wall-clock cost of kernel
//! verification (demoted transfers + device run + CPU reference +
//! comparison) versus a plain run.

use criterion::{criterion_group, criterion_main, Criterion};
use openarc_core::exec::{execute, ExecMode, ExecOptions, VerifyOptions};
use openarc_suite::{hotspot, translate_variant, Scale, Variant};

fn bench_figure3(c: &mut Criterion) {
    let b = hotspot::benchmark(Scale::default());
    let tr = translate_variant(&b, Variant::Optimized, &Default::default()).unwrap();
    let mut g = c.benchmark_group("figure3_hotspot");
    g.sample_size(10);
    g.bench_function("plain", |bench| {
        bench.iter(|| {
            execute(&tr, &ExecOptions { race_detect: false, ..Default::default() }).unwrap()
        })
    });
    g.bench_function("verify_all_kernels", |bench| {
        bench.iter(|| {
            execute(
                &tr,
                &ExecOptions {
                    mode: ExecMode::Verify(VerifyOptions::default()),
                    race_detect: false,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figure3);
criterion_main!(benches);
