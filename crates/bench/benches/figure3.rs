//! Wall-clock cost of kernel verification (demoted transfers, device run,
//! CPU reference, comparison) versus a plain run — the Figure 3 pipeline.

use openarc_bench::timing::report;
use openarc_core::exec::{execute, ExecMode, ExecOptions, VerifyOptions};
use openarc_suite::{hotspot, translate_variant, Scale, Variant};

fn main() {
    println!("figure3_hotspot");
    let b = hotspot::benchmark(Scale::default());
    let tr = translate_variant(&b, Variant::Optimized, &Default::default()).unwrap();
    report("plain", 10, || {
        execute(
            &tr,
            &ExecOptions {
                race_detect: false,
                ..Default::default()
            },
        )
        .unwrap()
    });
    report("verify_all_kernels", 10, || {
        execute(
            &tr,
            &ExecOptions {
                mode: ExecMode::Verify(VerifyOptions::default()),
                race_detect: false,
                ..Default::default()
            },
        )
        .unwrap()
    });
}
