//! Criterion bench over the Table 2 pipeline: clause stripping +
//! race-injected verification of one benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use openarc_core::exec::VerifyOptions;
use openarc_core::faults::strip_privatization;
use openarc_core::translate::TranslateOptions;
use openarc_core::verify::verify_kernels;
use openarc_suite::{ep, Scale, Variant};

fn bench_table2(c: &mut Criterion) {
    let b = ep::benchmark(Scale::default());
    let (p, s) = openarc_minic::frontend(b.source(Variant::Optimized)).unwrap();
    let mut g = c.benchmark_group("table2_ep");
    g.sample_size(10);
    g.bench_function("strip_and_verify", |bench| {
        bench.iter(|| {
            let (stripped, _) = strip_privatization(&p).unwrap();
            let topts = TranslateOptions {
                auto_privatize: false,
                auto_reduction: false,
                ..Default::default()
            };
            verify_kernels(&stripped, &s, &topts, VerifyOptions::default()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
