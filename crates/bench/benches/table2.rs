//! Wall-clock cost of clause stripping + race-injected verification of
//! one benchmark (the Table 2 pipeline).

use openarc_bench::timing::report;
use openarc_core::exec::VerifyOptions;
use openarc_core::faults::strip_privatization;
use openarc_core::translate::TranslateOptions;
use openarc_core::verify::verify_kernels;
use openarc_suite::{ep, Scale, Variant};

fn main() {
    println!("table2_ep");
    let b = ep::benchmark(Scale::default());
    let (p, s) = openarc_minic::frontend(b.source(Variant::Optimized)).unwrap();
    report("strip_and_verify", 10, || {
        let (stripped, _) = strip_privatization(&p).unwrap();
        let topts = TranslateOptions {
            auto_privatize: false,
            auto_reduction: false,
            ..Default::default()
        };
        verify_kernels(&stripped, &s, &topts, VerifyOptions::default()).unwrap()
    });
}
