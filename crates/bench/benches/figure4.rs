//! Wall-clock overhead of the memory-transfer-verification
//! instrumentation (the Figure 4 pipeline).

use openarc_bench::timing::report;
use openarc_core::exec::{execute, ExecOptions};
use openarc_core::translate::TranslateOptions;
use openarc_suite::{srad, translate_variant, Scale, Variant};

fn main() {
    println!("figure4_srad");
    let b = srad::benchmark(Scale::default());
    let plain_tr = translate_variant(&b, Variant::Optimized, &Default::default()).unwrap();
    let instr_tr = translate_variant(
        &b,
        Variant::Optimized,
        &TranslateOptions {
            instrument: true,
            ..Default::default()
        },
    )
    .unwrap();
    report("uninstrumented", 10, || {
        execute(
            &plain_tr,
            &ExecOptions {
                race_detect: false,
                ..Default::default()
            },
        )
        .unwrap()
    });
    report("instrumented", 10, || {
        execute(
            &instr_tr,
            &ExecOptions {
                check_transfers: true,
                race_detect: false,
                ..Default::default()
            },
        )
        .unwrap()
    });
}
