//! Criterion bench over the Figure 4 pipeline: wall-clock overhead of the
//! memory-transfer-verification instrumentation.

use criterion::{criterion_group, criterion_main, Criterion};
use openarc_core::exec::{execute, ExecOptions};
use openarc_core::translate::TranslateOptions;
use openarc_suite::{srad, translate_variant, Scale, Variant};

fn bench_figure4(c: &mut Criterion) {
    let b = srad::benchmark(Scale::default());
    let plain_tr = translate_variant(&b, Variant::Optimized, &Default::default()).unwrap();
    let instr_tr = translate_variant(
        &b,
        Variant::Optimized,
        &TranslateOptions { instrument: true, ..Default::default() },
    )
    .unwrap();
    let mut g = c.benchmark_group("figure4_srad");
    g.sample_size(10);
    g.bench_function("uninstrumented", |bench| {
        bench.iter(|| {
            execute(&plain_tr, &ExecOptions { race_detect: false, ..Default::default() }).unwrap()
        })
    });
    g.bench_function("instrumented", |bench| {
        bench.iter(|| {
            execute(
                &instr_tr,
                &ExecOptions { check_transfers: true, race_detect: false, ..Default::default() },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
