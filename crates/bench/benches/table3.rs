//! Wall-clock cost of the full interactive optimization loop on the
//! conservatively-annotated JACOBI (the Table 3 pipeline).

use openarc_bench::timing::report;
use openarc_core::exec::ExecOptions;
use openarc_core::interactive::optimize_transfers;
use openarc_core::translate::TranslateOptions;
use openarc_suite::{jacobi, Scale, Variant};

fn main() {
    println!("table3_jacobi");
    let b = jacobi::benchmark(Scale::default());
    let (p, s) = openarc_minic::frontend(b.source(Variant::Unoptimized)).unwrap();
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    report("interactive_loop", 10, || {
        let eopts = ExecOptions {
            race_detect: false,
            ..Default::default()
        };
        let out = optimize_transfers(&p, &s, &topts, &b.outputs, &eopts, 10).unwrap();
        assert!(out.converged);
        out.iterations
    });
}
