//! Criterion bench over the Table 3 pipeline: the full interactive
//! optimization loop on the conservatively-annotated JACOBI.

use criterion::{criterion_group, criterion_main, Criterion};
use openarc_core::exec::ExecOptions;
use openarc_core::interactive::optimize_transfers;
use openarc_core::translate::TranslateOptions;
use openarc_suite::{jacobi, Scale, Variant};

fn bench_table3(c: &mut Criterion) {
    let b = jacobi::benchmark(Scale::default());
    let (p, s) = openarc_minic::frontend(b.source(Variant::Unoptimized)).unwrap();
    let topts = TranslateOptions { instrument: true, ..Default::default() };
    let mut g = c.benchmark_group("table3_jacobi");
    g.sample_size(10);
    g.bench_function("interactive_loop", |bench| {
        bench.iter(|| {
            let eopts = ExecOptions { race_detect: false, ..Default::default() };
            let out = optimize_transfers(&p, &s, &topts, &b.outputs, &eopts, 10).unwrap();
            assert!(out.converged);
            out.iterations
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
