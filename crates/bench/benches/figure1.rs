//! Criterion bench over the Figure 1 pipeline: wall-clock cost of running
//! a benchmark under the naive vs. optimized memory-management scheme.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use openarc_core::exec::ExecOptions;
use openarc_suite::{jacobi, run_variant, Scale, Variant};

fn bench_figure1(c: &mut Criterion) {
    let scale = Scale::default();
    let b = jacobi::benchmark(scale);
    let mut g = c.benchmark_group("figure1_jacobi");
    g.sample_size(10);
    for v in [Variant::Naive, Variant::Optimized] {
        g.bench_function(v.name(), |bench| {
            bench.iter_batched(
                || (),
                |_| {
                    let eopts = ExecOptions { race_detect: false, ..Default::default() };
                    let (_, r) = run_variant(&b, v, &Default::default(), &eopts).unwrap();
                    r.machine.stats.total_bytes()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
