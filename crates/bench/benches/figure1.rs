//! Wall-clock cost of running a benchmark under the naive vs. optimized
//! memory-management scheme (the Figure 1 pipeline).

use openarc_bench::timing::report;
use openarc_core::exec::ExecOptions;
use openarc_suite::{jacobi, run_variant, Scale, Variant};

fn main() {
    println!("figure1_jacobi");
    let b = jacobi::benchmark(Scale::default());
    for v in [Variant::Naive, Variant::Optimized] {
        report(v.name(), 10, || {
            let eopts = ExecOptions {
                race_detect: false,
                ..Default::default()
            };
            let (_, r) = run_variant(&b, v, &Default::default(), &eopts).unwrap();
            r.machine.stats.total_bytes()
        });
    }
}
