//! Plain-text renderers for the experiment rows (the bins print these and
//! also dump JSON next to them).

use crate::experiments::*;

/// Render Figure 1 as an aligned text table.
pub fn figure1_text(rows: &[Fig1Row]) -> String {
    let mut s = String::from(
        "Figure 1 — OpenACC default memory management, normalized to fully optimized\n\
         benchmark    time_ratio    bytes_ratio    naive_us        opt_us\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>10.1}x {:>12.1}x {:>12.1} {:>12.1}\n",
            r.name, r.time_ratio, r.bytes_ratio, r.naive_us, r.opt_us
        ));
    }
    s
}

/// Render Table 2.
pub fn table2_text(t: &Table2) -> String {
    let mut s = String::from(
        "Table 2 — kernel verification under private/reduction fault injection\n\
         benchmark    kernels  private  reduction  active(detected)  latent(undetected)\n",
    );
    for r in &t.rows {
        s.push_str(&format!(
            "{:<12} {:>7} {:>8} {:>10} {:>17} {:>19}\n",
            r.name, r.kernels, r.with_private, r.with_reduction, r.active_detected, r.latent
        ));
    }
    s.push_str(&format!(
        "\nTotals: kernels tested = {}, with private data = {}, with reduction = {},\n        active errors = {} (all detected; {} missed), latent errors = {} (none detected by verification)\n",
        t.kernels_tested,
        t.kernels_with_private,
        t.kernels_with_reduction,
        t.active_errors,
        t.active_missed,
        t.latent_errors
    ));
    s
}

/// Render Figure 3.
pub fn figure3_text(rows: &[Fig3Row]) -> String {
    let mut s = String::from(
        "Figure 3 — kernel-verification time breakdown (normalized to sequential CPU)\n",
    );
    if let Some(first) = rows.first() {
        s.push_str(&format!("{:<12}", "benchmark"));
        for (label, _) in &first.categories {
            s.push_str(&format!("{:>14}", label));
        }
        s.push_str(&format!("{:>10}\n", "total"));
    }
    for r in rows {
        s.push_str(&format!("{:<12}", r.name));
        for (_, v) in &r.categories {
            s.push_str(&format!("{:>14.2}", v));
        }
        s.push_str(&format!("{:>10.2}\n", r.total));
    }
    s
}

/// Render Table 3.
pub fn table3_text(rows: &[Table3Row]) -> String {
    let mut s = String::from(
        "Table 3 — interactive memory-transfer optimization\n\
         benchmark    total_iterations  incorrect_iterations  uncaught_redundancy  converged\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>16} {:>21} {:>20} {:>10}\n",
            r.name, r.total_iterations, r.incorrect_iterations, r.uncaught_redundancy, r.converged
        ));
    }
    s
}

/// Render Figure 4.
pub fn figure4_text(rows: &[Fig4Row]) -> String {
    let mut s = String::from(
        "Figure 4 — memory-transfer-verification overhead\n\
         benchmark    overhead_%     plain_us    instrumented_us\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>9.2}% {:>12.1} {:>16.1}\n",
            r.name, r.overhead_pct, r.plain_us, r.instrumented_us
        ));
    }
    s
}
