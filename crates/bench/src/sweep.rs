//! Batch-mode sweep driver: fans benchmark work across cores.
//!
//! Every figure/table of the evaluation walks the same 12-benchmark
//! matrix, and each cell is an independent deterministic simulation — an
//! embarrassingly parallel workload. A [`Sweep`] couples a problem
//! [`Scale`], a worker count, and one shared pipeline
//! [`Session`] so that
//!
//! * cells run concurrently on [`openarc_core::sched::run_tasks`] workers,
//! * repeated compilations of the same variant hit the session's artifact
//!   cache regardless of which worker asks, and
//! * results and journals come back in **task order**, making parallel
//!   output byte-identical to a sequential run.

use crate::timing;
use openarc_core::exec::ExecOptions;
use openarc_core::pipeline::Session;
use openarc_core::sched::run_tasks;
use openarc_core::translate::TranslateOptions;
use openarc_suite::{all, run_variant_cached, Benchmark, Scale, Variant};
use openarc_trace::json::Json;
use openarc_trace::{merge_parts, Journal, TraceEvent};

/// One batch sweep: scale × worker count × shared artifact cache.
pub struct Sweep {
    /// Problem scale every cell runs at.
    pub scale: Scale,
    /// Worker threads (`1` = sequential on the calling thread).
    pub jobs: usize,
    /// Shared stage cache; thread-safe, so all workers use it directly.
    pub session: Session,
}

impl Sweep {
    /// Sweep with a fresh in-memory session.
    pub fn new(scale: Scale, jobs: usize) -> Sweep {
        Sweep::with_session(scale, jobs, Session::builder().build())
    }

    /// Sweep over a caller-configured session (e.g. one carrying a disk
    /// cache from [`crate::args::BenchArgs::session`]).
    pub fn with_session(scale: Scale, jobs: usize, session: Session) -> Sweep {
        Sweep {
            scale,
            jobs,
            session,
        }
    }

    /// Sequential sweep (one worker).
    pub fn sequential(scale: Scale) -> Sweep {
        Sweep::new(scale, 1)
    }

    /// Run `f` over all twelve benchmarks, fanned across the sweep's
    /// workers; results return in benchmark order. The first error wins.
    pub fn map_benchmarks<T, F>(&self, f: F) -> Result<Vec<T>, String>
    where
        T: Send,
        F: Fn(&Benchmark) -> Result<T, String> + Sync,
    {
        let benches = all(self.scale);
        let f = &f;
        let tasks: Vec<_> = benches.iter().map(|b| move || f(b)).collect();
        run_tasks(self.jobs, tasks).into_iter().collect()
    }

    /// Run `f` over every (benchmark, variant) cell of the matrix — 36
    /// fine-grained tasks instead of 12 benchmark-sized ones, so one
    /// expensive benchmark's variants spread across workers instead of
    /// serializing on whichever worker drew it. Results return in
    /// (benchmark, variant) order. The first error wins.
    pub fn map_cells<T, F>(&self, f: F) -> Result<Vec<T>, String>
    where
        T: Send,
        F: Fn(&Benchmark, Variant) -> Result<T, String> + Sync,
    {
        let benches = all(self.scale);
        let f = &f;
        let mut tasks = Vec::with_capacity(benches.len() * Variant::ALL.len());
        for b in &benches {
            for v in Variant::ALL {
                tasks.push(move || f(b, v));
            }
        }
        run_tasks(self.jobs, tasks).into_iter().collect()
    }
}

/// One cell of the full benchmark × variant matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Benchmark name.
    pub bench: String,
    /// Variant name.
    pub variant: &'static str,
    /// Simulated time, µs.
    pub sim_us: f64,
    /// Bytes moved between host and device.
    pub transferred_bytes: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Journal events the run emitted.
    pub events: usize,
}

impl MatrixRow {
    /// JSON object for one matrix cell.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", Json::from(self.bench.as_str())),
            ("variant", Json::from(self.variant)),
            ("sim_us", Json::from(self.sim_us)),
            ("transferred_bytes", Json::from(self.transferred_bytes)),
            ("kernel_launches", Json::from(self.kernel_launches)),
            ("events", Json::from(self.events)),
        ])
    }
}

impl Sweep {
    /// Run the full 12-benchmark × 3-variant matrix as 36 independent
    /// cell tasks, journaling every run into a per-cell buffer. Returns
    /// the 36 rows plus the merged event stream; both are in
    /// (benchmark, variant) order — deterministic and bit-identical for
    /// any `jobs` value.
    pub fn matrix(&self) -> Result<(Vec<MatrixRow>, Vec<TraceEvent>), String> {
        let cells = self.map_cells(|b, v| {
            // A private journal per cell: workers never contend on one
            // buffer, and the merge below fixes the global order.
            let journal = Journal::enabled();
            let eopts = ExecOptions {
                race_detect: false,
                journal: journal.clone(),
                ..Default::default()
            };
            let (_, r) =
                run_variant_cached(&self.session, b, v, &TranslateOptions::default(), &eopts)?;
            // `drain` (not `snapshot`): the cell owns its buffer, so the
            // merge below moves events instead of copying them.
            let events = journal.drain();
            Ok((
                MatrixRow {
                    bench: b.name.to_string(),
                    variant: v.name(),
                    sim_us: r.sim_time_us(),
                    transferred_bytes: r.machine.stats.total_bytes(),
                    kernel_launches: r.kernel_launches,
                    events: events.len(),
                },
                events,
            ))
        })?;
        let mut rows = Vec::with_capacity(cells.len());
        let mut parts = Vec::with_capacity(cells.len());
        for (row, evs) in cells {
            rows.push(row);
            parts.push(evs);
        }
        Ok((rows, merge_parts(parts)))
    }

    /// Measure the wall-clock cost of [`Sweep::matrix`] at this sweep's
    /// worker count over `samples` runs. Each sample uses a fresh session
    /// so compilation cost is included (otherwise every sample after the
    /// first would measure only execution).
    pub fn time_matrix(&self, samples: usize) -> timing::Stats {
        timing::measure(samples, || {
            Sweep::new(self.scale, self.jobs).matrix().unwrap()
        })
    }
}

/// Unwrap an experiment result in a bin, printing the error to stderr and
/// exiting with status `1` on failure.
pub fn exit_on_error<T>(bin: &str, r: Result<T, String>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{bin}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_36_cells_and_journals() {
        let sw = Sweep::sequential(Scale::default());
        let (rows, events) = sw.matrix().unwrap();
        assert_eq!(rows.len(), 36);
        assert!(!events.is_empty());
        assert_eq!(rows.iter().map(|r| r.events).sum::<usize>(), events.len());
        // Task order: benchmarks alphabetical (suite order), variants in
        // Variant::ALL order within each.
        assert_eq!(rows[0].bench, "BACKPROP");
        assert_eq!(rows[0].variant, "naive");
        assert_eq!(rows[2].variant, "optimized");
    }
}
