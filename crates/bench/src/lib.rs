//! # openarc-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§IV). See [`experiments`] for the drivers and the
//! `figure1`/`figure3`/`figure4`/`table2`/`table3`/`paper` binaries for
//! the renderers. All drivers take a [`sweep::Sweep`] — scale × worker
//! count × shared pipeline session — so the same code runs sequentially
//! or fanned across cores (`--jobs N`) with byte-identical output;
//! `cargo bench` and the `pipeline` bin measure the real (wall-clock)
//! cost of the same pipelines with the [`timing`] helper.

#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod fuzzstats;
pub mod render;
pub mod sweep;
pub mod timing;
