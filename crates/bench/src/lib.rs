//! # openarc-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§IV). See [`experiments`] for the drivers and the
//! `figure1`/`figure3`/`figure4`/`table2`/`table3` binaries for the
//! renderers; `cargo bench` measures the real (wall-clock) cost of the
//! same pipelines with the [`timing`] helper.

#![warn(missing_docs)]

pub mod experiments;
pub mod render;
pub mod timing;
