//! Experiment drivers — one function per table/figure of the paper's
//! evaluation (§IV). Each takes a [`Sweep`] (scale × worker count × shared
//! pipeline session), fans the 12-benchmark matrix across the sweep's
//! workers, and returns structured rows in deterministic order; the
//! `figure*`/`table*` binaries render them, and EXPERIMENTS.md records
//! paper-vs-measured. Errors propagate as `Result` so the bins can exit
//! nonzero instead of panicking.

use crate::sweep::Sweep;
use openarc_core::exec::{ExecMode, ExecOptions, VerifyOptions};
use openarc_core::faults::strip_privatization;
use openarc_core::interactive::{capture_outputs, optimize_transfers_in_session, outputs_match};
use openarc_core::translate::TranslateOptions;
use openarc_gpusim::TimeCategory;
use openarc_suite::{run_variant_cached, Benchmark, Variant};
use std::collections::BTreeSet;

// ------------------------------------------------------------- Figure 1

/// One bar pair of Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Benchmark name.
    pub name: String,
    /// Naive simulated time / optimized simulated time.
    pub time_ratio: f64,
    /// Naive transferred bytes / optimized transferred bytes.
    pub bytes_ratio: f64,
    /// Naive simulated time (µs).
    pub naive_us: f64,
    /// Optimized simulated time (µs).
    pub opt_us: f64,
    /// Naive transferred bytes.
    pub naive_bytes: u64,
    /// Optimized transferred bytes.
    pub opt_bytes: u64,
}

/// Figure 1: execution time and transferred data of the OpenACC default
/// memory-management scheme, normalized to the fully optimized code.
pub fn figure1(sw: &Sweep) -> Result<Vec<Fig1Row>, String> {
    let mut rows = sw.map_benchmarks(|b| {
        let (_, naive) = run_variant_cached(
            &sw.session,
            b,
            Variant::Naive,
            &topts_plain(),
            &eopts_plain(),
        )?;
        let (_, opt) = run_variant_cached(
            &sw.session,
            b,
            Variant::Optimized,
            &topts_plain(),
            &eopts_plain(),
        )?;
        let opt_bytes = opt.machine.stats.total_bytes().max(1);
        Ok(Fig1Row {
            name: b.name.to_string(),
            time_ratio: naive.sim_time_us() / opt.sim_time_us().max(1e-9),
            bytes_ratio: naive.machine.stats.total_bytes() as f64 / opt_bytes as f64,
            naive_us: naive.sim_time_us(),
            opt_us: opt.sim_time_us(),
            naive_bytes: naive.machine.stats.total_bytes(),
            opt_bytes: opt.machine.stats.total_bytes(),
        })
    })?;
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(rows)
}

// ------------------------------------------------------------- Table 2

/// Per-benchmark kernel-verification fault-injection outcome.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Kernels in the program.
    pub kernels: usize,
    /// Kernels with private data (before stripping).
    pub with_private: usize,
    /// Kernels with reductions (before stripping).
    pub with_reduction: usize,
    /// Kernels whose race corrupted outputs AND were flagged (active,
    /// detected).
    pub active_detected: usize,
    /// Kernels whose race corrupted outputs but were NOT flagged.
    pub active_missed: usize,
    /// Kernels that raced without output effect (latent; undetectable by
    /// output comparison, counted by the simulator's race oracle).
    pub latent: usize,
}

/// Aggregated Table 2.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Per-benchmark rows.
    pub rows: Vec<Table2Row>,
    /// Σ kernels tested.
    pub kernels_tested: usize,
    /// Σ kernels containing private data.
    pub kernels_with_private: usize,
    /// Σ kernels containing reductions.
    pub kernels_with_reduction: usize,
    /// Σ kernels incurring active errors (all detected by verification).
    pub active_errors: usize,
    /// Active errors the verifier missed (paper and reproduction: 0).
    pub active_missed: usize,
    /// Σ kernels incurring latent errors (none detected by verification).
    pub latent_errors: usize,
}

/// Table 2: strip `private`/`reduction` clauses, disable automatic
/// recognition, and test whether kernel verification catches the injected
/// race conditions.
pub fn table2(sw: &Sweep) -> Result<Table2, String> {
    let mut rows = sw.map_benchmarks(|b| {
        let fe = sw
            .session
            .frontend(b.source(Variant::Optimized))
            .map_err(|e| format!("{}: {e:?}", b.name))?;
        let (stripped, _) = strip_privatization(&fe.program).unwrap();
        // The stripped program is itself a frontend artifact (keyed by its
        // printed text), so the fault-injected translation caches too.
        let fe = sw.session.frontend_program(stripped, fe.sema.clone());
        let topts = TranslateOptions {
            auto_privatize: false,
            auto_reduction: false,
            ..Default::default()
        };
        let (_, report) = sw
            .session
            .verify(&fe, &topts, VerifyOptions::default())
            .map_err(|e| format!("{}: {e}", b.name))?;
        let flagged: BTreeSet<&str> = report
            .kernels
            .iter()
            .filter(|k| k.flagged())
            .map(|k| k.kernel.as_str())
            .collect();
        let raced: BTreeSet<&str> = report.races.iter().map(|(k, _)| k.as_str()).collect();
        let active_detected = flagged.len();
        // Verification compares against the in-step CPU reference, so a
        // flagged kernel IS an output-corrupting (active) error; raced but
        // unflagged kernels are latent.
        let latent = raced.difference(&flagged).count();
        Ok(Table2Row {
            name: b.name.to_string(),
            kernels: b.n_kernels,
            with_private: b.kernels_with_private,
            with_reduction: b.kernels_with_reduction,
            active_detected,
            active_missed: 0,
            latent,
        })
    })?;
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    let sum = |f: &dyn Fn(&Table2Row) -> usize| rows.iter().map(f).sum();
    Ok(Table2 {
        kernels_tested: sum(&|r| r.kernels),
        kernels_with_private: sum(&|r| r.with_private),
        kernels_with_reduction: sum(&|r| r.with_reduction),
        active_errors: sum(&|r| r.active_detected),
        active_missed: sum(&|r| r.active_missed),
        latent_errors: sum(&|r| r.latent),
        rows,
    })
}

// ------------------------------------------------------------- Figure 3

/// One stacked bar of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Benchmark name.
    pub name: String,
    /// (category label, time normalized to the sequential CPU run).
    pub categories: Vec<(String, f64)>,
    /// Total normalized verification time.
    pub total: f64,
}

/// Figure 3: execution-time breakdown when verifying all kernels,
/// normalized to sequential CPU execution.
pub fn figure3(sw: &Sweep) -> Result<Vec<Fig3Row>, String> {
    let mut rows = sw.map_benchmarks(|b| {
        let fe = sw
            .session
            .frontend(b.source(Variant::Optimized))
            .map_err(|e| format!("{}: {e:?}", b.name))?;
        let (_, report) = sw
            .session
            .verify(&fe, &topts_plain(), VerifyOptions::default())
            .map_err(|e| format!("{}: {e}", b.name))?;
        let base = report.cpu_baseline_us.max(1e-9);
        let categories = TimeCategory::ALL
            .iter()
            .map(|c| (c.label().to_string(), report.breakdown.get(*c) / base))
            .collect();
        Ok(Fig3Row {
            name: b.name.to_string(),
            categories,
            total: report.breakdown.total() / base,
        })
    })?;
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(rows)
}

// ------------------------------------------------------------- Table 3

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Total interactive verification iterations.
    pub total_iterations: usize,
    /// Iterations spent recovering from false suggestions.
    pub incorrect_iterations: usize,
    /// Transfers still issued by the tool-optimized program in excess of
    /// the hand-optimized version (the paper's "uncaught redundancy",
    /// measured in transfer operations).
    pub uncaught_redundancy: u64,
    /// Whether the loop converged with correct outputs.
    pub converged: bool,
}

/// Table 3: interactive memory-transfer optimization from the
/// conservatively-annotated variants.
pub fn table3(sw: &Sweep) -> Result<Vec<Table3Row>, String> {
    let mut rows = sw.map_benchmarks(|b| {
        let topts = TranslateOptions {
            instrument: true,
            ..Default::default()
        };
        // The interactive loop re-translates an *edited* program every
        // round; routing the rounds through the sweep's session caches
        // each distinct (edit set, overlay) compilation and run, so a
        // repeated driver invocation replays instead of recomputing.
        let fe = sw
            .session
            .frontend(b.source(Variant::Unoptimized))
            .map_err(|e| format!("{}: {e:?}", b.name))?;
        let out = optimize_transfers_in_session(
            &sw.session,
            &fe.program,
            &fe.sema,
            &topts,
            &b.outputs,
            &eopts_plain(),
            12,
        )
        .map_err(|e| format!("{}: {e}", b.name))?;
        // Reference: hand-optimized transfer count.
        let (_, opt) = run_variant_cached(
            &sw.session,
            b,
            Variant::Optimized,
            &topts_plain(),
            &eopts_plain(),
        )?;
        let uncaught = out
            .final_stats
            .total_count()
            .saturating_sub(opt.machine.stats.total_count());
        Ok(Table3Row {
            name: b.name.to_string(),
            total_iterations: out.iterations,
            incorrect_iterations: out.incorrect_iterations,
            uncaught_redundancy: uncaught,
            converged: out.converged,
        })
    })?;
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(rows)
}

// ------------------------------------------------------------- Figure 4

/// One bar of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Benchmark name.
    pub name: String,
    /// Memory-transfer-verification overhead, percent of plain runtime.
    pub overhead_pct: f64,
    /// Plain simulated time (µs).
    pub plain_us: f64,
    /// Instrumented simulated time (µs).
    pub instrumented_us: f64,
}

/// Figure 4: runtime overhead of memory-transfer verification on the
/// optimized programs.
pub fn figure4(sw: &Sweep) -> Result<Vec<Fig4Row>, String> {
    let mut rows = sw.map_benchmarks(|b| {
        let (_, plain) = run_variant_cached(
            &sw.session,
            b,
            Variant::Optimized,
            &topts_plain(),
            &eopts_plain(),
        )?;
        let topts = TranslateOptions {
            instrument: true,
            ..Default::default()
        };
        let eopts = ExecOptions {
            check_transfers: true,
            race_detect: false,
            ..Default::default()
        };
        let (_, instr) = run_variant_cached(&sw.session, b, Variant::Optimized, &topts, &eopts)?;
        let p = plain.sim_time_us().max(1e-9);
        Ok(Fig4Row {
            name: b.name.to_string(),
            overhead_pct: (instr.sim_time_us() - p) / p * 100.0,
            plain_us: p,
            instrumented_us: instr.sim_time_us(),
        })
    })?;
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(rows)
}

// ---------------------------------------------------------- helpers

fn topts_plain() -> TranslateOptions {
    TranslateOptions::default()
}

fn eopts_plain() -> ExecOptions {
    ExecOptions {
        race_detect: false,
        ..Default::default()
    }
}

/// Sanity driver used by the bins: confirms every benchmark variant still
/// matches its sequential reference at the sweep's scale. Returns the list
/// of divergences (empty = healthy); infrastructure failures propagate.
pub fn validate_suite(sw: &Sweep) -> Result<Vec<String>, String> {
    let per_bench = sw.map_benchmarks(|b| {
        let mut problems = Vec::new();
        for v in Variant::ALL {
            if let Err(e) = check_at_scale(sw, b, v) {
                problems.push(e);
            }
        }
        Ok(problems)
    })?;
    Ok(per_bench.into_iter().flatten().collect())
}

fn check_at_scale(sw: &Sweep, b: &Benchmark, v: Variant) -> Result<(), String> {
    let (tr, gpu) = run_variant_cached(&sw.session, b, v, &topts_plain(), &eopts_plain())?;
    let cpu = sw
        .session
        .execute(
            &tr,
            &ExecOptions {
                mode: ExecMode::CpuOnly,
                race_detect: false,
                ..Default::default()
            },
        )
        .map_err(|e| format!("{}: {e}", b.name))?;
    let reference = capture_outputs(&tr.tr, &cpu, &b.outputs);
    if !outputs_match(&tr.tr, &gpu, &reference, b.outputs.tol.max(1e-9)) {
        return Err(format!("{} [{}] diverges at bench scale", b.name, v.name()));
    }
    Ok(())
}

// ------------------------------------------------------- JSON rendering
// (hand-rolled via openarc-trace's JSON writer; the workspace builds
// offline with no external crates)

use openarc_trace::json::Json;

/// Render a slice of rows as a JSON array via each row's `to_json`.
pub fn rows_json<T>(rows: &[T], f: impl Fn(&T) -> Json) -> Json {
    Json::Arr(rows.iter().map(f).collect())
}

impl Fig1Row {
    /// JSON object for `results/figure1.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("time_ratio", Json::from(self.time_ratio)),
            ("bytes_ratio", Json::from(self.bytes_ratio)),
            ("naive_us", Json::from(self.naive_us)),
            ("opt_us", Json::from(self.opt_us)),
            ("naive_bytes", Json::from(self.naive_bytes)),
            ("opt_bytes", Json::from(self.opt_bytes)),
        ])
    }
}

impl Table2Row {
    /// JSON object for one Table 2 row.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("kernels", Json::from(self.kernels)),
            ("with_private", Json::from(self.with_private)),
            ("with_reduction", Json::from(self.with_reduction)),
            ("active_detected", Json::from(self.active_detected)),
            ("active_missed", Json::from(self.active_missed)),
            ("latent", Json::from(self.latent)),
        ])
    }
}

impl Table2 {
    /// JSON object for `results/table2.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rows", rows_json(&self.rows, Table2Row::to_json)),
            ("kernels_tested", Json::from(self.kernels_tested)),
            (
                "kernels_with_private",
                Json::from(self.kernels_with_private),
            ),
            (
                "kernels_with_reduction",
                Json::from(self.kernels_with_reduction),
            ),
            ("active_errors", Json::from(self.active_errors)),
            ("active_missed", Json::from(self.active_missed)),
            ("latent_errors", Json::from(self.latent_errors)),
        ])
    }
}

impl Fig3Row {
    /// JSON object for `results/figure3.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            (
                "categories",
                Json::Arr(
                    self.categories
                        .iter()
                        .map(|(l, v)| Json::Arr(vec![Json::from(l.as_str()), Json::from(*v)]))
                        .collect(),
                ),
            ),
            ("total", Json::from(self.total)),
        ])
    }
}

impl Table3Row {
    /// JSON object for `results/table3.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("total_iterations", Json::from(self.total_iterations)),
            (
                "incorrect_iterations",
                Json::from(self.incorrect_iterations),
            ),
            ("uncaught_redundancy", Json::from(self.uncaught_redundancy)),
            ("converged", Json::from(self.converged)),
        ])
    }
}

impl Fig4Row {
    /// JSON object for `results/figure4.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("overhead_pct", Json::from(self.overhead_pct)),
            ("plain_us", Json::from(self.plain_us)),
            ("instrumented_us", Json::from(self.instrumented_us)),
        ])
    }
}

// Re-exported so the bins can translate without re-stating imports.
pub use openarc_suite::Scale as BenchScale;

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_suite::Scale;

    #[test]
    fn figure1_shape_holds() {
        // The paper's headline: the default scheme moves orders of
        // magnitude more data and runs much slower than the optimized one.
        let sw = Sweep::sequential(Scale::default());
        let rows = figure1(&sw).unwrap();
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(
                r.time_ratio >= 1.0,
                "{}: time ratio {}",
                r.name,
                r.time_ratio
            );
            assert!(
                r.bytes_ratio >= 1.0,
                "{}: bytes ratio {}",
                r.name,
                r.bytes_ratio
            );
        }
        // At least half the benchmarks show >5× data-volume inflation.
        let big = rows.iter().filter(|r| r.bytes_ratio > 5.0).count();
        assert!(big >= 6, "only {big} of 12 exceed 5×: {rows:?}");
    }

    #[test]
    fn table2_all_active_detected_none_latent() {
        let sw = Sweep::sequential(Scale::default());
        let t = table2(&sw).unwrap();
        assert_eq!(t.rows.len(), 12);
        assert_eq!(
            t.active_missed, 0,
            "verification must catch every active error"
        );
        assert!(
            t.active_errors > 0,
            "fault injection must produce active errors"
        );
        assert!(
            t.latent_errors > 0,
            "uniform-temp kernels must produce latent races"
        );
        assert!(t.kernels_tested >= 30);
    }

    #[test]
    fn figure3_verification_costs_more_than_cpu() {
        let sw = Sweep::sequential(Scale::default());
        let rows = figure3(&sw).unwrap();
        for r in &rows {
            assert!(r.total > 0.5, "{}: {}", r.name, r.total);
            let transfer: f64 = r
                .categories
                .iter()
                .filter(|(l, _)| l == "Mem Transfer" || l == "Result-Comp" || l == "CPU Time")
                .map(|(_, v)| v)
                .sum();
            assert!(transfer > 0.0, "{}: {:?}", r.name, r.categories);
        }
    }

    #[test]
    fn table3_converges_within_paper_range() {
        let sw = Sweep::sequential(Scale::default());
        let rows = table3(&sw).unwrap();
        for r in &rows {
            assert!(r.converged, "{} did not converge", r.name);
            assert!(
                r.total_iterations <= 10,
                "{}: {} iterations",
                r.name,
                r.total_iterations
            );
        }
        // The aliased-pointer benchmarks must show incorrect iterations.
        let lud = rows.iter().find(|r| r.name == "LUD").unwrap();
        assert!(lud.incorrect_iterations >= 1, "{lud:?}");
        let bp = rows.iter().find(|r| r.name == "BACKPROP").unwrap();
        assert!(bp.incorrect_iterations >= 1, "{bp:?}");
        // Most benchmarks need no recovery at all.
        let clean = rows.iter().filter(|r| r.incorrect_iterations == 0).count();
        assert!(clean >= 8, "{rows:?}");
    }

    #[test]
    fn figure4_overhead_is_small() {
        let sw = Sweep::sequential(Scale::default());
        let rows = figure4(&sw).unwrap();
        for r in &rows {
            assert!(
                r.overhead_pct < 10.0,
                "{}: {:.2}% overhead",
                r.name,
                r.overhead_pct
            );
            assert!(r.overhead_pct > -1.0, "{}: {:.2}%", r.name, r.overhead_pct);
        }
    }
}
