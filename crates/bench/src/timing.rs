//! Minimal wall-clock measurement for the `benches/` targets.
//!
//! The workspace builds offline with no external crates, so the benches
//! use this helper instead of Criterion: fixed sample count, median /
//! min / max over `std::time::Instant`.

use std::time::Instant;

/// Wall-clock stats over repeated runs of a closure, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median sample.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of samples.
    pub samples: usize,
}

/// Run `f` once as warmup, then `samples` timed times; returns the stats.
pub fn measure<T>(samples: usize, mut f: impl FnMut() -> T) -> Stats {
    std::hint::black_box(f());
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    Stats {
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        max_ns: *times.last().unwrap(),
        samples,
    }
}

/// Measure and print one labelled row (`label  median  min  max`).
pub fn report<T>(label: &str, samples: usize, f: impl FnMut() -> T) -> Stats {
    let s = measure(samples, f);
    println!(
        "{:<28} median {:>10.3} ms   min {:>10.3} ms   max {:>10.3} ms   ({} samples)",
        label,
        s.median_ns as f64 / 1e6,
        s.min_ns as f64 / 1e6,
        s.max_ns as f64 / 1e6,
        s.samples
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_orders_stats() {
        let s = measure(5, || (0..1000u64).sum::<u64>());
        assert_eq!(s.samples, 5);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }
}
