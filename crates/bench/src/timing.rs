//! Minimal wall-clock measurement for the `benches/` targets and the
//! `pipeline` batch-mode bin.
//!
//! The workspace builds offline with no external crates, so the benches
//! use this helper instead of Criterion: fixed sample count, p50 / p95 /
//! min / max over `std::time::Instant`, with a JSON rendering for
//! machine-readable reports (`BENCH_pipeline.json`).

use openarc_trace::json::Json;
use std::time::Instant;

/// Wall-clock stats over repeated runs of a closure, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median (p50) sample.
    pub median_ns: u128,
    /// 95th-percentile sample (nearest-rank; equals the max for small
    /// sample counts).
    pub p95_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of samples.
    pub samples: usize,
}

impl Stats {
    /// p50 in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.median_ns as f64 / 1e6
    }

    /// p95 in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.p95_ns as f64 / 1e6
    }

    /// Minimum in milliseconds.
    pub fn min_ms(&self) -> f64 {
        self.min_ns as f64 / 1e6
    }

    /// JSON object (`p50_ms` / `p95_ms` / `min_ms` / `max_ms` / `samples`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("p50_ms", Json::from(self.p50_ms())),
            ("p95_ms", Json::from(self.p95_ms())),
            ("min_ms", Json::from(self.min_ms())),
            ("max_ms", Json::from(self.max_ns as f64 / 1e6)),
            ("samples", Json::from(self.samples)),
        ])
    }
}

impl Stats {
    /// Stats over externally collected samples (nanoseconds) — e.g. the
    /// per-request latencies a load generator measured across many
    /// client threads. Panics on an empty sample set.
    pub fn from_samples(mut times: Vec<u128>) -> Stats {
        assert!(!times.is_empty(), "Stats::from_samples needs >= 1 sample");
        times.sort_unstable();
        // Nearest-rank percentile on the sorted samples.
        let rank = |p: usize| times[(p * (times.len() - 1) + 50) / 100];
        Stats {
            median_ns: rank(50),
            p95_ns: rank(95),
            min_ns: times[0],
            max_ns: *times.last().unwrap(),
            samples: times.len(),
        }
    }
}

/// Run `f` once as warmup, then `samples` timed times; returns the stats.
pub fn measure<T>(samples: usize, mut f: impl FnMut() -> T) -> Stats {
    std::hint::black_box(f());
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_nanos());
    }
    Stats::from_samples(times)
}

/// Measure and print one labelled row (`label  p50  p95  min  max`).
pub fn report<T>(label: &str, samples: usize, f: impl FnMut() -> T) -> Stats {
    let s = measure(samples, f);
    println!(
        "{:<28} p50 {:>10.3} ms   p95 {:>10.3} ms   min {:>10.3} ms   max {:>10.3} ms   ({} samples)",
        label,
        s.p50_ms(),
        s.p95_ms(),
        s.min_ms(),
        s.max_ns as f64 / 1e6,
        s.samples
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_orders_stats() {
        let s = measure(5, || (0..1000u64).sum::<u64>());
        assert_eq!(s.samples, 5);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.max_ns);
    }

    #[test]
    fn from_samples_matches_measure_semantics() {
        let s = Stats::from_samples(vec![5, 1, 3, 2, 4]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 5);
        assert_eq!(s.median_ns, 3);
        assert_eq!(s.p95_ns, 5);
    }

    #[test]
    fn stats_render_to_json() {
        let s = measure(3, || 1 + 1);
        let j = s.to_json().pretty();
        assert!(j.contains("\"p50_ms\""));
        assert!(j.contains("\"p95_ms\""));
        assert!(j.contains("\"samples\": 3"));
    }
}
