//! Regenerate Figure 3.
use openarc_bench::{args, experiments, render, sweep};

fn main() {
    let sw = args::sweep_from_env("figure3");
    let rows = sweep::exit_on_error("figure3", experiments::figure3(&sw));
    println!("{}", render::figure3_text(&rows));
    let json = experiments::rows_json(&rows, |r| r.to_json()).pretty();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/figure3.json", json).ok();
}
