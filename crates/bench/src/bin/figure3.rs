//! Regenerate Figure 3.
use openarc_bench::{experiments, render};
use openarc_suite::Scale;

fn main() {
    let rows = experiments::figure3(Scale::bench());
    println!("{}", render::figure3_text(&rows));
    let json = experiments::rows_json(&rows, |r| r.to_json()).pretty();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/figure3.json", json).ok();
}
