//! Regenerate Figure 4.
use openarc_bench::{args, experiments, render, sweep};

fn main() {
    let sw = args::sweep_from_env("figure4");
    let rows = sweep::exit_on_error("figure4", experiments::figure4(&sw));
    println!("{}", render::figure4_text(&rows));
    let json = experiments::rows_json(&rows, |r| r.to_json()).pretty();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/figure4.json", json).ok();
}
