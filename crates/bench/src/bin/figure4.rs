//! Regenerate Figure 4.
use openarc_bench::{experiments, render};
use openarc_suite::Scale;

fn main() {
    let rows = experiments::figure4(Scale::bench());
    println!("{}", render::figure4_text(&rows));
    let json = experiments::rows_json(&rows, |r| r.to_json()).pretty();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/figure4.json", json).ok();
}
