//! Load generator for the `openarc serve` daemon: N concurrent clients
//! hammer the 12-benchmark corpus over the newline-framed JSON protocol
//! and the run writes throughput + latency percentiles to
//! `BENCH_serve.json`.
//!
//! The gate is **byte identity**: every served report is compared
//! against the report the one-shot path renders for the same program and
//! action (`core::api::handle` — exactly what `openarc run/check/verify`
//! print). A daemon that drops, reorders, or cross-contaminates tenant
//! state fails the `identical_reports` bit; a daemon whose shared
//! sessions actually warm up shows `warm_cache_hits > 0` once a second
//! client repeats the corpus.
//!
//! ```text
//! serve_load [--clients N] [--jobs N] [--queue N] [--scale small|bench]
//!            [--connect ADDR] [--out PATH]
//! ```
//!
//! Without `--connect` the daemon is self-hosted in-process on an
//! ephemeral port; with it, the generator drives an external
//! `openarc serve` (CI starts the real binary and passes its address).

use openarc_bench::timing::Stats;
use openarc_core::api::{self, Action, Request, Response};
use openarc_core::pipeline::Session;
use openarc_core::serve::{Server, ServerConfig};
use openarc_suite::{all, Scale, Variant};
use openarc_trace::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Actions the corpus cycles through. `profile` is excluded: its
/// deliverable is a wall-clock journal, not a deterministic report.
const ACTIONS: [Action; 3] = [Action::Run, Action::Check, Action::Verify];

struct Args {
    clients: usize,
    jobs: usize,
    queue: usize,
    scale: Scale,
    connect: Option<String>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 4,
        jobs: 4,
        queue: 64,
        scale: Scale::default(),
        connect: None,
        out: "BENCH_serve.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients expects a positive integer".to_string())?;
                if args.clients == 0 {
                    return Err("--clients must be >= 1".into());
                }
            }
            "--jobs" => args.jobs = openarc_core::sched::parse_jobs(value("--jobs")?)?,
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue expects a positive integer".to_string())?;
            }
            "--scale" => {
                args.scale = match value("--scale")? {
                    "small" => Scale::default(),
                    "bench" => Scale::bench(),
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--connect" => args.connect = Some(value("--connect")?.to_string()),
            "--out" => args.out = value("--out")?.to_string(),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// One corpus item: what to send and what the one-shot path prints.
#[derive(Clone)]
struct Expected {
    name: &'static str,
    request: Request,
    report: String,
    exit_code: i32,
}

/// Build the request corpus and its one-shot ground truth: the 12
/// benchmarks (naive variant), each under run/check/verify in rotation.
fn build_corpus(scale: Scale) -> Result<Vec<Expected>, String> {
    let session = Session::builder().build();
    all(scale)
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let action = ACTIONS[i % ACTIONS.len()];
            let request = Request::new(action, b.source(Variant::Naive));
            let resp = api::handle(&session, &request)
                .map_err(|e| format!("{} one-shot {}: {e}", b.name, action.as_str()))?;
            Ok(Expected {
                name: b.name,
                request,
                report: resp.report,
                exit_code: resp.exit_code,
            })
        })
        .collect()
}

/// Send one line, read one line.
fn round_trip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<Json, String> {
    writeln!(stream, "{line}").map_err(|e| e.to_string())?;
    let mut reply = String::new();
    reader.read_line(&mut reply).map_err(|e| e.to_string())?;
    if reply.is_empty() {
        return Err("server closed the connection".into());
    }
    Json::parse(&reply).map_err(|e| format!("bad response line: {e}"))
}

/// What one client measured over its pass through the corpus.
struct ClientReport {
    latencies_ns: Vec<u128>,
    mismatches: Vec<String>,
    retries: u64,
}

/// One client: a single connection, the full corpus in order, every
/// report checked against the one-shot ground truth. `Overloaded`
/// refusals honour the server's `retry_after_ms` hint.
fn run_client(addr: &str, corpus: &[Expected]) -> Result<ClientReport, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut out = ClientReport {
        latencies_ns: Vec::with_capacity(corpus.len()),
        mismatches: Vec::new(),
        retries: 0,
    };
    for item in corpus {
        let line = item.request.to_json().to_string();
        let reply = loop {
            let t0 = Instant::now();
            let reply = round_trip(&mut stream, &mut reader, &line)?;
            if reply.get("ok").and_then(Json::as_bool) == Some(true) {
                out.latencies_ns.push(t0.elapsed().as_nanos());
                break reply;
            }
            let err = reply
                .get("error")
                .map(|e| e.to_string())
                .unwrap_or_else(|| reply.to_string());
            let retry_after = reply
                .get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_u64);
            match retry_after {
                Some(ms) if out.retries < 100 => {
                    out.retries += 1;
                    std::thread::sleep(Duration::from_millis(ms.min(100)));
                }
                _ => return Err(format!("{}: {err}", item.name)),
            }
        };
        let resp = Response::from_json(
            reply
                .get("response")
                .ok_or_else(|| format!("{}: response payload missing", item.name))?,
        )
        .map_err(|e| format!("{}: {e}", item.name))?;
        if resp.report != item.report || resp.exit_code != item.exit_code {
            out.mismatches.push(format!(
                "{} {}: served report differs from one-shot",
                item.name,
                item.request.action.as_str()
            ));
        }
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_load: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = drive(&args) {
        eprintln!("serve_load: {e}");
        std::process::exit(1);
    }
}

fn drive(args: &Args) -> Result<(), String> {
    eprintln!(
        "building the {}-benchmark one-shot ground truth (n={}, iters={})...",
        all(args.scale).len(),
        args.scale.n,
        args.scale.iters
    );
    let corpus = build_corpus(args.scale)?;

    // Self-host unless CI pointed us at an external daemon.
    let (addr, hosted) = match &args.connect {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind_tcp(
                ServerConfig {
                    workers: args.jobs,
                    queue_capacity: args.queue,
                    cache_dir: None,
                    stats_interval: Some(Duration::from_millis(500)),
                    ..ServerConfig::default()
                },
                "127.0.0.1:0",
            )
            .map_err(|e| e.to_string())?;
            let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
            let handle = std::thread::spawn(move || {
                server.run().expect("serve loop failed");
            });
            (addr, Some(handle))
        }
    };
    eprintln!(
        "driving {} clients x {} requests at {addr}",
        args.clients,
        corpus.len()
    );

    let t0 = Instant::now();
    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| scope.spawn(|| run_client(&addr, &corpus)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let wall = t0.elapsed();

    // One trailing stats probe: did the shared sessions actually warm up?
    let mut stream = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let stats = round_trip(&mut stream, &mut reader, r#"{"action":"stats"}"#)?;
    let stats = stats.get("stats").cloned().ok_or("stats payload missing")?;
    if hosted.is_some() {
        round_trip(&mut stream, &mut reader, r#"{"action":"shutdown"}"#)?;
    }
    drop((stream, reader));
    if let Some(handle) = hosted {
        handle.join().map_err(|_| "server thread panicked")?;
    }

    let mut latencies: Vec<u128> = Vec::new();
    let mut mismatches: Vec<String> = Vec::new();
    let mut retries = 0;
    for r in reports {
        latencies.extend(r.latencies_ns);
        mismatches.extend(r.mismatches);
        retries += r.retries;
    }
    let lat = Stats::from_samples(latencies.clone());
    let total = latencies.len() as u64;
    let throughput = total as f64 / wall.as_secs_f64();
    let warm_hits = stats
        .get("stages")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| r.get("hits").and_then(Json::as_u64))
                .sum::<u64>()
        })
        .unwrap_or(0);

    for m in &mismatches {
        eprintln!("MISMATCH: {m}");
    }
    println!(
        "{} requests over {} clients in {:.1} ms: {:.1} req/s, p50 {:.2} ms, p95 {:.2} ms, \
         {} warm stage hits, {} retries, identical_reports={}",
        total,
        args.clients,
        wall.as_secs_f64() * 1e3,
        throughput,
        lat.p50_ms(),
        lat.p95_ms(),
        warm_hits,
        retries,
        mismatches.is_empty()
    );

    let out = Json::obj(vec![
        ("clients", Json::from(args.clients as u64)),
        ("jobs", Json::from(args.jobs as u64)),
        ("queue_capacity", Json::from(args.queue as u64)),
        ("n", Json::from(args.scale.n as u64)),
        ("iters", Json::from(args.scale.iters as u64)),
        ("requests", Json::from(total)),
        ("wall_ms", Json::from(wall.as_secs_f64() * 1e3)),
        ("throughput_rps", Json::from(throughput)),
        ("latency", lat.to_json()),
        ("identical_reports", Json::from(mismatches.is_empty())),
        ("warm_cache_hits", Json::from(warm_hits)),
        ("retries", Json::from(retries)),
        ("server", stats),
    ]);
    std::fs::write(&args.out, format!("{}\n", out.pretty()))
        .map_err(|e| format!("{}: {e}", args.out))?;
    eprintln!("wrote {}", args.out);
    if !mismatches.is_empty() {
        return Err(format!("{} served reports mismatched", mismatches.len()));
    }
    Ok(())
}
