//! Regenerate Table 2.
use openarc_bench::{args, experiments, render, sweep};

fn main() {
    let sw = args::sweep_from_env("table2");
    let t = sweep::exit_on_error("table2", experiments::table2(&sw));
    println!("{}", render::table2_text(&t));
    let json = t.to_json().pretty();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/table2.json", json).ok();
}
