//! Regenerate Table 2.
use openarc_bench::{experiments, render};
use openarc_suite::Scale;

fn main() {
    let t = experiments::table2(Scale::bench());
    println!("{}", render::table2_text(&t));
    let json = t.to_json().pretty();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/table2.json", json).ok();
}
