//! Regenerate Table 3.
use openarc_bench::{experiments, render};
use openarc_suite::Scale;

fn main() {
    let rows = experiments::table3(Scale::bench());
    println!("{}", render::table3_text(&rows));
    let json = serde_json::to_string_pretty(&rows).unwrap();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/table3.json", json).ok();
}
