//! Regenerate Table 3.
use openarc_bench::{args, experiments, render, sweep};

fn main() {
    let sw = args::sweep_from_env("table3");
    let rows = sweep::exit_on_error("table3", experiments::table3(&sw));
    println!("{}", render::table3_text(&rows));
    let json = experiments::rows_json(&rows, |r| r.to_json()).pretty();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/table3.json", json).ok();
}
