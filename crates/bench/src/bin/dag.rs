//! DAG-executor benchmark: for every benchmark in the suite, run kernel
//! verification under the sequential oracle (`dagJobs=1, devices=1`) and
//! under the dependency-DAG schedule (`dagJobs=4, devices=2`) with each
//! placement policy — round-robin, cost-model EFT, and EFT over costs
//! calibrated from the round-robin run's journal — gate on every
//! verification observable being bit-identical, and report wall-clock
//! p50/p95 per mode plus per-device utilization of each placement's
//! simulated timeline. Writes `BENCH_dag.json`; exits non-zero when the
//! identity gate fails or when EFT regresses against round-robin on any
//! benchmark.
//!
//! Wall-clock numbers compare the host cost of the schedulers (same
//! simulated work either way). The placement comparison runs on the
//! *device-side makespan* — the bottleneck device's total busy time on
//! the simulated timeline. Verification's end-to-end `sim_us` is pinned
//! by the host-serial reference execution and comparison, so placement
//! barely moves it (it is still gated against regression); the device
//! makespan is what the placement controls, and it shrinking under EFT
//! is the cost model steering heavy kernels apart.

use openarc_bench::args::{BenchArgs, FLAGS_HELP};
use openarc_bench::timing;
use openarc_core::exec::dag::cost::MeasuredCosts;
use openarc_core::exec::dag::Placement;
use openarc_core::exec::{execute, ExecMode, ExecOptions, RunResult, VerifyOptions};
use openarc_core::translate::TranslateOptions;
use openarc_trace::json::Json;
use openarc_trace::{EventKind, Journal, TraceEvent, Track};

const DAG_JOBS: usize = 4;
const DEVICES: usize = 2;

fn verify_run(
    tr: &openarc_core::translate::Translated,
    dag_jobs: usize,
    devices: usize,
    placement: Placement,
    measured: Option<MeasuredCosts>,
) -> (RunResult, Vec<TraceEvent>) {
    let journal = Journal::enabled();
    let eopts = ExecOptions {
        mode: ExecMode::Verify(VerifyOptions {
            dag_jobs,
            devices,
            placement,
            measured,
            ..Default::default()
        }),
        journal: journal.clone(),
        ..Default::default()
    };
    let r = execute(tr, &eopts).unwrap_or_else(|e| {
        eprintln!("dag: verify run failed: {e}");
        std::process::exit(1)
    });
    (r, journal.drain())
}

/// Every verification observable agrees between the two runs.
fn observables_identical(a: &RunResult, b: &RunResult) -> bool {
    a.verify.len() == b.verify.len()
        && a.verify.iter().zip(&b.verify).all(|(x, y)| {
            x.kernel == y.kernel
                && x.launches == y.launches
                && x.failed_launches == y.failed_launches
                && x.compared_elems == y.compared_elems
                && x.mismatched_elems == y.mismatched_elems
                && x.max_abs_err.to_bits() == y.max_abs_err.to_bits()
                && x.assertion_failures == y.assertion_failures
        })
        && a.machine.report.issues == b.machine.report.issues
        && a.races == b.races
        && a.kernel_launches == b.kernel_launches
        && a.host_instrs == b.host_instrs
}

/// Per-device busy time on the simulated timeline: the sum of queue-track
/// span durations per device.
fn device_busy(events: &[TraceEvent], devices: usize) -> Vec<f64> {
    let mut busy = vec![0.0f64; devices];
    for e in events {
        if let Track::Queue { dev, .. } = e.track {
            if (dev as usize) < devices {
                busy[dev as usize] += e.dur_us;
            }
        }
    }
    busy
}

/// Each device's busy time as a fraction of the *bottleneck* device's
/// busy time. 1.0 means the device carries as much load as the heaviest
/// one; a low minimum means the placement parked the work on one device.
fn device_utilization(busy: &[f64]) -> Vec<f64> {
    let bottleneck = busy.iter().copied().fold(0.0f64, f64::max);
    busy.iter().map(|b| b / bottleneck.max(1e-9)).collect()
}

/// Any two kernel spans on distinct devices overlapping in simulated time?
fn cross_device_overlap(events: &[TraceEvent]) -> bool {
    let spans: Vec<(u32, f64, f64)> = events
        .iter()
        .filter_map(|e| match (&e.kind, &e.track) {
            (EventKind::KernelComplete { .. }, Track::Queue { dev, .. }) => {
                Some((*dev, e.ts_us, e.ts_us + e.dur_us))
            }
            _ => None,
        })
        .collect();
    spans.iter().enumerate().any(|(i, a)| {
        spans[i + 1..]
            .iter()
            .any(|b| a.0 != b.0 && a.1 < b.2 && b.1 < a.2)
    })
}

/// One placement's measured leg for one benchmark.
struct PlacementResult {
    placement: Placement,
    identical: bool,
    overlap: bool,
    sim_us: f64,
    /// Device-side makespan: the bottleneck device's total busy time. The
    /// run-level `sim_us` is dominated by the host-serial reference
    /// execution and comparison, so it barely moves with placement; this
    /// is the quantity a placement actually controls — how long the
    /// device-side work would take were the devices the constraint.
    dev_makespan_us: f64,
    util: Vec<f64>,
    timing: timing::Stats,
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match BenchArgs::parse(&raw, None) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("dag: {e}");
            eprintln!("usage: dag {FLAGS_HELP}");
            std::process::exit(2);
        }
    };
    let scale = args.scale;
    let samples = 5;

    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut any_overlap = false;
    let mut eft_regressions: Vec<String> = Vec::new();
    let mut eft_wins = 0usize;
    println!(
        "{:<10} {:>9} {:>9} | {:>9} {:>11} | {:>9} {:>11} {:>7} | {:>9} {:>11}",
        "benchmark",
        "seq sim",
        "dag sim",
        "rr dev",
        "rr util",
        "eft dev",
        "eft util",
        "cut",
        "meas dev",
        "meas util"
    );
    for b in openarc_suite::all(scale) {
        let tr = openarc_suite::translate_variant(
            &b,
            openarc_suite::Variant::Naive,
            &TranslateOptions::default(),
        )
        .unwrap_or_else(|e| {
            eprintln!("dag: {e}");
            std::process::exit(1)
        });

        let (oracle, _) = verify_run(&tr, 1, 1, Placement::RoundRobin, None);
        let t_seq = timing::measure(samples, || {
            verify_run(&tr, 1, 1, Placement::RoundRobin, None)
        });

        // Round-robin leg first: its journal calibrates the measured leg.
        let (rr_run, rr_events) = verify_run(&tr, DAG_JOBS, DEVICES, Placement::RoundRobin, None);
        let calibration = MeasuredCosts::from_journal(&rr_events);

        let mut legs: Vec<PlacementResult> = Vec::new();
        for placement in [Placement::RoundRobin, Placement::Eft, Placement::Measured] {
            let measured = (placement == Placement::Measured).then(|| calibration.clone());
            let (run, events) = if placement == Placement::RoundRobin {
                // Reuse the calibration run; reruns are bit-identical.
                (
                    verify_run(&tr, DAG_JOBS, DEVICES, placement, None).0,
                    rr_events.clone(),
                )
            } else {
                verify_run(&tr, DAG_JOBS, DEVICES, placement, measured.clone())
            };
            let identical = observables_identical(&oracle, &run);
            all_identical &= identical;
            let overlap = cross_device_overlap(&events);
            any_overlap |= overlap;
            let t = timing::measure(samples, || {
                verify_run(&tr, DAG_JOBS, DEVICES, placement, measured.clone())
            });
            let busy = device_busy(&events, DEVICES);
            legs.push(PlacementResult {
                placement,
                identical,
                overlap,
                sim_us: run.sim_time_us(),
                dev_makespan_us: busy.iter().copied().fold(0.0f64, f64::max),
                util: device_utilization(&busy),
                timing: t,
            });
        }
        drop(rr_run);

        let rr_sim = legs[0].sim_us;
        let eft_sim = legs[1].sim_us;
        let rr_dev = legs[0].dev_makespan_us;
        let eft_dev = legs[1].dev_makespan_us;
        let cut = 1.0 - eft_dev / rr_dev.max(1e-9);
        // EFT must not regress on either axis: the device-side makespan it
        // optimizes (1% tolerance covers first-touch allocation noise when
        // a balanced plan mirrors a variable onto a second device), nor
        // the end-to-end simulated time (which placement barely moves, but
        // must never be made worse).
        if eft_dev > rr_dev * 1.01 || eft_sim > rr_sim * 1.01 {
            eft_regressions.push(b.name.to_string());
        }
        if cut >= 0.15 {
            eft_wins += 1;
        }
        let utils = |l: &PlacementResult| {
            l.util
                .iter()
                .map(|u| format!("{:.2}", u))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "{:<10} {:>7.0}µs {:>7.0}µs | {:>7.0}µs {:>11} | {:>7.0}µs {:>11} {:>6.1}% | {:>7.0}µs {:>11}{}",
            b.name,
            oracle.sim_time_us(),
            eft_sim,
            rr_dev,
            utils(&legs[0]),
            eft_dev,
            utils(&legs[1]),
            cut * 100.0,
            legs[2].dev_makespan_us,
            utils(&legs[2]),
            if legs.iter().all(|l| l.identical) {
                ""
            } else {
                "  DIVERGED"
            }
        );

        let placements = Json::obj(
            legs.iter()
                .map(|l| {
                    let min_util = l.util.iter().copied().fold(f64::INFINITY, f64::min);
                    (
                        l.placement.as_str(),
                        Json::obj(vec![
                            ("identical_output", Json::from(l.identical)),
                            ("cross_device_overlap", Json::from(l.overlap)),
                            ("timing", l.timing.to_json()),
                            ("sim_us", Json::from(l.sim_us)),
                            ("device_makespan_us", Json::from(l.dev_makespan_us)),
                            (
                                "device_utilization",
                                Json::Arr(l.util.iter().copied().map(Json::from).collect()),
                            ),
                            ("min_utilization", Json::from(min_util)),
                        ]),
                    )
                })
                .collect(),
        );
        rows.push(Json::obj(vec![
            ("name", Json::from(b.name)),
            (
                "identical_output",
                Json::from(legs.iter().all(|l| l.identical)),
            ),
            (
                "cross_device_overlap",
                Json::from(legs.iter().any(|l| l.overlap)),
            ),
            ("sequential", t_seq.to_json()),
            ("sim_us_sequential", Json::from(oracle.sim_time_us())),
            ("sim_us_roundrobin", Json::from(rr_sim)),
            ("sim_us_eft", Json::from(eft_sim)),
            ("dev_makespan_us_roundrobin", Json::from(rr_dev)),
            ("dev_makespan_us_eft", Json::from(eft_dev)),
            ("eft_makespan_cut", Json::from(cut)),
            ("placements", placements),
        ]));
    }

    let no_regression = eft_regressions.is_empty();
    let report = Json::obj(vec![
        ("n", Json::from(scale.n)),
        ("iters", Json::from(scale.iters)),
        ("dag_jobs", Json::from(DAG_JOBS)),
        ("devices", Json::from(DEVICES)),
        ("identical_output", Json::from(all_identical)),
        ("any_cross_device_overlap", Json::from(any_overlap)),
        ("eft_no_regression", Json::from(no_regression)),
        ("eft_benchmarks_cut_15pct", Json::from(eft_wins)),
        ("benchmarks", Json::Arr(rows)),
    ]);
    std::fs::write("BENCH_dag.json", report.pretty()).ok();
    println!(
        "wrote BENCH_dag.json (identical_output={all_identical}, \
         cross-device overlap on ≥1 benchmark: {any_overlap}, \
         EFT ≥15% device-makespan cut on {eft_wins} benchmarks, \
         regressions: {})",
        if no_regression {
            "none".to_string()
        } else {
            eft_regressions.join(", ")
        }
    );
    if !all_identical {
        eprintln!("dag: a DAG schedule diverged from the sequential oracle");
        std::process::exit(1);
    }
    if !no_regression {
        eprintln!(
            "dag: EFT regressed vs round-robin (device makespan or sim time) on: {}",
            eft_regressions.join(", ")
        );
        std::process::exit(1);
    }
}
