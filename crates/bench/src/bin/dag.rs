//! DAG-executor benchmark: for every benchmark in the suite, run kernel
//! verification under the sequential oracle (`dagJobs=1, devices=1`) and
//! under the dependency-DAG schedule (`dagJobs=4, devices=2`), gate on
//! every verification observable being bit-identical, and report
//! wall-clock p50/p95 for both modes plus per-device utilization of the
//! DAG run's simulated timeline. Writes `BENCH_dag.json`; exits non-zero
//! when the identity gate fails.
//!
//! Wall-clock numbers compare the host cost of the two schedulers (same
//! simulated work either way); the *simulated* times show the overlap the
//! DAG exposes — `sim_us` shrinking under the DAG run is device-level
//! concurrency, not measurement noise.

use openarc_bench::args::{BenchArgs, FLAGS_HELP};
use openarc_bench::timing;
use openarc_core::exec::{execute, ExecMode, ExecOptions, RunResult, VerifyOptions};
use openarc_core::translate::TranslateOptions;
use openarc_trace::json::Json;
use openarc_trace::{EventKind, Journal, TraceEvent, Track};

const DAG_JOBS: usize = 4;
const DEVICES: usize = 2;

fn verify_run(
    tr: &openarc_core::translate::Translated,
    dag_jobs: usize,
    devices: usize,
) -> (RunResult, Vec<TraceEvent>) {
    let journal = Journal::enabled();
    let eopts = ExecOptions {
        mode: ExecMode::Verify(VerifyOptions {
            dag_jobs,
            devices,
            ..Default::default()
        }),
        journal: journal.clone(),
        ..Default::default()
    };
    let r = execute(tr, &eopts).unwrap_or_else(|e| {
        eprintln!("dag: verify run failed: {e}");
        std::process::exit(1)
    });
    (r, journal.drain())
}

/// Every verification observable agrees between the two runs.
fn observables_identical(a: &RunResult, b: &RunResult) -> bool {
    a.verify.len() == b.verify.len()
        && a.verify.iter().zip(&b.verify).all(|(x, y)| {
            x.kernel == y.kernel
                && x.launches == y.launches
                && x.failed_launches == y.failed_launches
                && x.compared_elems == y.compared_elems
                && x.mismatched_elems == y.mismatched_elems
                && x.max_abs_err.to_bits() == y.max_abs_err.to_bits()
                && x.assertion_failures == y.assertion_failures
        })
        && a.machine.report.issues == b.machine.report.issues
        && a.races == b.races
        && a.kernel_launches == b.kernel_launches
        && a.host_instrs == b.host_instrs
}

/// Per-device busy time on the simulated timeline: the sum of queue-track
/// span durations per device, as a fraction of the run's simulated
/// makespan.
fn device_utilization(events: &[TraceEvent], sim_us: f64, devices: usize) -> Vec<f64> {
    let mut busy = vec![0.0f64; devices];
    for e in events {
        if let Track::Queue { dev, .. } = e.track {
            if (dev as usize) < devices {
                busy[dev as usize] += e.dur_us;
            }
        }
    }
    busy.iter().map(|b| b / sim_us.max(1e-9)).collect()
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match BenchArgs::parse(&raw, None) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("dag: {e}");
            eprintln!("usage: dag {FLAGS_HELP}");
            std::process::exit(2);
        }
    };
    let scale = args.scale;
    let samples = 5;

    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut any_overlap = false;
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>9}  util/device",
        "benchmark", "seq p50", "dag p50", "seq sim", "dag sim"
    );
    for b in openarc_suite::all(scale) {
        let tr = openarc_suite::translate_variant(
            &b,
            openarc_suite::Variant::Naive,
            &TranslateOptions::default(),
        )
        .unwrap_or_else(|e| {
            eprintln!("dag: {e}");
            std::process::exit(1)
        });

        let (oracle, _) = verify_run(&tr, 1, 1);
        let (dag, dag_events) = verify_run(&tr, DAG_JOBS, DEVICES);
        let identical = observables_identical(&oracle, &dag);
        all_identical &= identical;

        // Cross-device span overlap on the simulated timeline.
        let spans: Vec<(u32, f64, f64)> = dag_events
            .iter()
            .filter_map(|e| match (&e.kind, &e.track) {
                (EventKind::KernelComplete { .. }, Track::Queue { dev, .. }) => {
                    Some((*dev, e.ts_us, e.ts_us + e.dur_us))
                }
                _ => None,
            })
            .collect();
        let overlap = spans.iter().enumerate().any(|(i, a)| {
            spans[i + 1..]
                .iter()
                .any(|b| a.0 != b.0 && a.1 < b.2 && b.1 < a.2)
        });
        any_overlap |= overlap;

        let t_seq = timing::measure(samples, || verify_run(&tr, 1, 1));
        let t_dag = timing::measure(samples, || verify_run(&tr, DAG_JOBS, DEVICES));
        let util = device_utilization(&dag_events, dag.sim_time_us(), DEVICES);
        println!(
            "{:<10} {:>8.2}ms {:>8.2}ms {:>7.0}µs {:>7.0}µs  {}{}",
            b.name,
            t_seq.p50_ms(),
            t_dag.p50_ms(),
            oracle.sim_time_us(),
            dag.sim_time_us(),
            util.iter()
                .map(|u| format!("{:.2}", u))
                .collect::<Vec<_>>()
                .join(" "),
            if identical { "" } else { "  DIVERGED" }
        );
        rows.push(Json::obj(vec![
            ("name", Json::from(b.name)),
            ("identical_output", Json::from(identical)),
            ("cross_device_overlap", Json::from(overlap)),
            ("sequential", t_seq.to_json()),
            ("dag", t_dag.to_json()),
            ("sim_us_sequential", Json::from(oracle.sim_time_us())),
            ("sim_us_dag", Json::from(dag.sim_time_us())),
            (
                "device_utilization",
                Json::Arr(util.into_iter().map(Json::from).collect()),
            ),
        ]));
    }

    let report = Json::obj(vec![
        ("n", Json::from(scale.n)),
        ("iters", Json::from(scale.iters)),
        ("dag_jobs", Json::from(DAG_JOBS)),
        ("devices", Json::from(DEVICES)),
        ("identical_output", Json::from(all_identical)),
        ("any_cross_device_overlap", Json::from(any_overlap)),
        ("benchmarks", Json::Arr(rows)),
    ]);
    std::fs::write("BENCH_dag.json", report.pretty()).ok();
    println!(
        "wrote BENCH_dag.json (identical_output={all_identical}, \
         cross-device overlap on ≥1 benchmark: {any_overlap})"
    );
    if !all_identical {
        eprintln!("dag: DAG schedule diverged from the sequential oracle");
        std::process::exit(1);
    }
}
