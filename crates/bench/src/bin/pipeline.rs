//! Batch-mode pipeline benchmark: runs the full 12-benchmark × 3-variant
//! matrix sequentially and fanned across `--jobs N` workers, asserts the
//! parallel output is byte-identical (rows, journals, and category
//! totals), times both modes, and writes the machine-readable
//! `BENCH_pipeline.json` report.
use openarc_bench::sweep::{parse_bin_args, Sweep};
use openarc_bench::timing;
use openarc_trace::json::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, jobs) = match parse_bin_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("pipeline: {e}");
            eprintln!(
                "usage: pipeline [--scale small|bench] [--jobs N|auto] [--n SIZE] [--iters COUNT]"
            );
            std::process::exit(2);
        }
    };
    // With the default --jobs 1 there is nothing to compare against, so
    // fall back to one worker per core.
    let jobs = if jobs <= 1 {
        openarc_core::sched::auto_jobs()
    } else {
        jobs
    };

    let sequential = Sweep::sequential(scale);
    let parallel = Sweep::new(scale, jobs);
    let (rows_seq, events_seq) = match sequential.matrix() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("pipeline: sequential matrix failed: {e}");
            std::process::exit(1);
        }
    };
    let (rows_par, events_par) = match parallel.matrix() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("pipeline: parallel matrix failed: {e}");
            std::process::exit(1);
        }
    };

    // Determinism gate: the parallel run must be byte-identical to the
    // sequential one — same rows (f64s compared bit-for-bit via the JSON
    // rendering), same merged journal, same per-category totals.
    let json_seq = Json::Arr(rows_seq.iter().map(|r| r.to_json()).collect()).pretty();
    let json_par = Json::Arr(rows_par.iter().map(|r| r.to_json()).collect()).pretty();
    let identical = json_seq == json_par
        && events_seq == events_par
        && openarc_trace::category_totals(&events_seq)
            == openarc_trace::category_totals(&events_par);
    if !identical {
        eprintln!("pipeline: parallel output diverges from sequential — determinism bug");
        std::process::exit(1);
    }
    println!(
        "matrix: {} cells, {} journal events, parallel (jobs={jobs}) output identical to sequential",
        rows_seq.len(),
        events_seq.len()
    );

    // Where the parallel matrix spent its wall-clock time, per pipeline
    // stage (summed across workers; cache hits included).
    let stages = parallel.session.stage_times();
    println!("parallel stage breakdown (wall clock, summed across workers):");
    for (stage, us) in stages {
        if us > 0.0 {
            println!("  {:<12} {:>12.1} µs", stage.label(), us);
        }
    }

    let samples = 5;
    let t_seq = timing::report("matrix sequential", samples, || {
        Sweep::sequential(scale).matrix().unwrap()
    });
    let t_par = timing::report(&format!("matrix --jobs {jobs}"), samples, || {
        Sweep::new(scale, jobs).matrix().unwrap()
    });
    let speedup = t_seq.p50_ms() / t_par.p50_ms().max(1e-9);
    println!("speedup (p50): {speedup:.2}x");

    let report = Json::obj(vec![
        ("n", Json::from(scale.n)),
        ("iters", Json::from(scale.iters)),
        ("jobs", Json::from(jobs)),
        ("cells", Json::from(rows_seq.len())),
        ("journal_events", Json::from(events_seq.len())),
        ("identical_output", Json::from(identical)),
        ("sequential", t_seq.to_json()),
        ("parallel", t_par.to_json()),
        ("speedup_p50", Json::from(speedup)),
        (
            "parallel_stage_us",
            Json::obj(
                stages
                    .iter()
                    .map(|(s, us)| (s.label(), Json::from(*us)))
                    .collect(),
            ),
        ),
    ])
    .pretty();
    std::fs::write("BENCH_pipeline.json", report).ok();
    println!("wrote BENCH_pipeline.json");
}
