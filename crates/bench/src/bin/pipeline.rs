//! Batch-mode pipeline benchmark: runs the full 12-benchmark × 3-variant
//! matrix sequentially and fanned across `--jobs N` workers, asserts the
//! parallel output is byte-identical (rows, journals, and category
//! totals), times both modes, and writes the machine-readable
//! `BENCH_pipeline.json` report.
//!
//! With `--cache-dir DIR` the sweeps run over the persistent artifact
//! store: the sequential pass is the **cold** run (populating the store),
//! the parallel pass runs **warm** (loading Frontend/Translate/Execute
//! artifacts back), a third timed pass measures the steady warm cost, and
//! `BENCH_cache.json` records the disk traffic — so a second process over
//! the same matrix shows zero stage misses for the persisted stages.
use openarc_bench::args::{BenchArgs, FLAGS_HELP};
use openarc_bench::sweep::Sweep;
use openarc_bench::timing;
use openarc_core::pipeline::Session;
use openarc_trace::json::Json;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match BenchArgs::parse(&raw, None) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("pipeline: {e}");
            eprintln!("usage: pipeline {FLAGS_HELP}");
            std::process::exit(2);
        }
    };
    let scale = args.scale;
    // With the default --jobs 1 there is nothing to compare against, so
    // fall back to one worker per core.
    let jobs = if args.jobs <= 1 {
        openarc_core::sched::auto_jobs()
    } else {
        args.jobs
    };

    let sequential = Sweep::with_session(scale, 1, args.session());
    let parallel = Sweep::with_session(scale, jobs, args.session());
    let (rows_seq, events_seq) = match sequential.matrix() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("pipeline: sequential matrix failed: {e}");
            std::process::exit(1);
        }
    };
    let (rows_par, events_par) = match parallel.matrix() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("pipeline: parallel matrix failed: {e}");
            std::process::exit(1);
        }
    };

    // Determinism gate: the parallel run must be byte-identical to the
    // sequential one — same rows (f64s compared bit-for-bit via the JSON
    // rendering), same merged journal, same per-category totals. With a
    // disk cache the parallel run replays stored journal streams, so the
    // gate also proves warm runs are observationally exact.
    let json_seq = Json::Arr(rows_seq.iter().map(|r| r.to_json()).collect()).pretty();
    let json_par = Json::Arr(rows_par.iter().map(|r| r.to_json()).collect()).pretty();
    let identical = json_seq == json_par
        && events_seq == events_par
        && openarc_trace::category_totals(&events_seq)
            == openarc_trace::category_totals(&events_par);
    if !identical {
        eprintln!("pipeline: parallel output diverges from sequential — determinism bug");
        std::process::exit(1);
    }
    println!(
        "matrix: {} cells, {} journal events, parallel (jobs={jobs}) output identical to sequential",
        rows_seq.len(),
        events_seq.len()
    );

    // Where the parallel matrix spent its wall-clock time, per pipeline
    // stage (summed across workers; cache hits included).
    let stages = parallel.session.stage_times();
    println!("parallel stage breakdown (wall clock, summed across workers):");
    for (stage, us) in stages {
        if us > 0.0 {
            println!("  {:<12} {:>12.1} µs", stage.label(), us);
        }
    }

    // Verified-launch pipeline gate (§III-A): for every benchmark, the
    // three-stage pipelined verify run (staged demotion copies, overlapped
    // reference, fanned-out comparison) must be bit-identical to the
    // sequential oracle. The pipelined run's wall-clock stage spans become
    // the `verify_pipeline_us` report block.
    let mut verify_stage_us = [0.0f64; 3]; // staging, overlap, compare
    let mut verify_identical = true;
    {
        use openarc_core::exec::{execute, ExecMode, ExecOptions, VerifyOptions};
        use openarc_core::translate::TranslateOptions;
        use openarc_trace::{EventKind, Journal};
        let run = |tr: &openarc_core::translate::Translated,
                   overlap: bool,
                   cjobs: usize,
                   stage_journal: Journal| {
            let journal = Journal::enabled();
            let eopts = ExecOptions {
                mode: ExecMode::Verify(VerifyOptions {
                    overlap_reference: overlap,
                    compare_jobs: cjobs,
                    ..Default::default()
                }),
                journal: journal.clone(),
                stage_journal,
                ..Default::default()
            };
            let r = execute(tr, &eopts).unwrap_or_else(|e| {
                eprintln!("pipeline: verify run failed: {e}");
                std::process::exit(1)
            });
            (r, journal.drain())
        };
        for b in openarc_suite::all(scale) {
            let tr = openarc_suite::translate_variant(
                &b,
                openarc_suite::Variant::Optimized,
                &TranslateOptions::default(),
            )
            .unwrap_or_else(|e| {
                eprintln!("pipeline: {e}");
                std::process::exit(1)
            });
            let stage_journal = Journal::enabled();
            let (seq, seq_events) = run(&tr, false, 1, Journal::disabled());
            let (par, par_events) = run(&tr, true, jobs, stage_journal.clone());
            let same = par_events == seq_events
                && par.sim_time_us().to_bits() == seq.sim_time_us().to_bits()
                && par.verify.len() == seq.verify.len()
                && par.verify.iter().zip(&seq.verify).all(|(p, s)| {
                    p.kernel == s.kernel
                        && p.launches == s.launches
                        && p.failed_launches == s.failed_launches
                        && p.compared_elems == s.compared_elems
                        && p.mismatched_elems == s.mismatched_elems
                        && p.max_abs_err.to_bits() == s.max_abs_err.to_bits()
                        && p.assertion_failures == s.assertion_failures
                });
            if !same {
                eprintln!(
                    "pipeline: {} pipelined verify diverges from the sequential oracle",
                    b.name
                );
                verify_identical = false;
            }
            for e in stage_journal.drain() {
                if let EventKind::Stage { stage, .. } = e.kind {
                    match stage {
                        "verify:staging" => verify_stage_us[0] += e.dur_us,
                        "verify:overlap" => verify_stage_us[1] += e.dur_us,
                        "verify:compare" => verify_stage_us[2] += e.dur_us,
                        _ => {}
                    }
                }
            }
        }
        println!(
            "verify pipeline (compare jobs={jobs}): staging {:.1} µs, overlap {:.1} µs, \
             compare {:.1} µs{}",
            verify_stage_us[0],
            verify_stage_us[1],
            verify_stage_us[2],
            if verify_identical {
                ", identical to sequential oracle"
            } else {
                " — DIVERGED"
            }
        );
    }

    let samples = 5;
    let t_seq = timing::report("matrix sequential", samples, || {
        Sweep::sequential(scale).matrix().unwrap()
    });
    let t_par = timing::report(&format!("matrix --jobs {jobs}"), samples, || {
        Sweep::new(scale, jobs).matrix().unwrap()
    });
    let speedup = t_seq.p50_ms() / t_par.p50_ms().max(1e-9);
    println!("speedup (p50): {speedup:.2}x");

    // Warm timing: fresh processes would see exactly this — a new session
    // per sample, every persisted stage served from disk.
    let t_warm = args.cache_dir.as_ref().map(|dir| {
        let dir = dir.clone();
        timing::report("matrix warm (disk cache)", samples, move || {
            Sweep::with_session(scale, 1, Session::builder().disk_cache(&dir).build())
                .matrix()
                .unwrap()
        })
    });

    let mut report = vec![
        ("n", Json::from(scale.n)),
        ("iters", Json::from(scale.iters)),
        ("jobs", Json::from(jobs)),
        ("cells", Json::from(rows_seq.len())),
        ("journal_events", Json::from(events_seq.len())),
        (
            "identical_output",
            Json::from(identical && verify_identical),
        ),
        ("sequential", t_seq.to_json()),
        ("parallel", t_par.to_json()),
        ("speedup_p50", Json::from(speedup)),
        (
            "parallel_stage_us",
            Json::obj(
                stages
                    .iter()
                    .map(|(s, us)| (s.label(), Json::from(*us)))
                    .collect(),
            ),
        ),
        (
            "verify_pipeline_us",
            Json::obj(vec![
                ("jobs", Json::from(jobs)),
                ("staging", Json::from(verify_stage_us[0])),
                ("overlap", Json::from(verify_stage_us[1])),
                ("compare", Json::from(verify_stage_us[2])),
                ("identical", Json::from(verify_identical)),
            ]),
        ),
    ];
    if let Some(t_warm) = &t_warm {
        report.push(("warm", t_warm.to_json()));
        report.push((
            "warm_speedup_p50",
            Json::from(t_seq.p50_ms() / t_warm.p50_ms().max(1e-9)),
        ));
    }
    let disk_json = |s: openarc_core::DiskStats| {
        Json::obj(vec![
            ("hits", Json::from(s.hits)),
            ("misses", Json::from(s.misses)),
            ("stores", Json::from(s.stores)),
            ("evictions", Json::from(s.evictions)),
            ("corrupt", Json::from(s.corrupt)),
        ])
    };
    if let Some(dir) = &args.cache_dir {
        let seq_disk = sequential.session.stats().disk;
        let par_disk = parallel.session.stats().disk;

        // Per-codec warm-load comparison: the store is all-binary after
        // the runs above, so export a JSON twin and time a full
        // sequential decode of every persisted stage through each codec
        // (p50 of `samples` passes). The JSON twin is a scratch copy;
        // the measured store is never mutated.
        use openarc_core::cache::{DiskCache, DISK_STAGES};
        let store = DiskCache::new(dir);
        let json_dir = dir.with_file_name(format!(
            "{}-json-export",
            dir.file_name().unwrap_or_default().to_string_lossy()
        ));
        let _ = std::fs::remove_dir_all(&json_dir);
        let json_store = DiskCache::new(&json_dir);
        let exported = store.export_json(&json_store);
        if exported.skipped > 0 {
            eprintln!(
                "pipeline: {} cache entries failed to export to JSON",
                exported.skipped
            );
            std::process::exit(1);
        }
        let timed_decode = |cache: &DiskCache, stage, ext| {
            let mut entries = 0;
            let stats = timing::measure(samples, || {
                entries = cache.decode_stage(stage, ext).unwrap_or_else(|e| {
                    eprintln!("pipeline: warm {ext} decode failed: {e}");
                    std::process::exit(1);
                })
            });
            (entries, stats.median_ns as f64 / 1e3)
        };
        println!("warm load, full store decode (p50 of {samples} passes):");
        let mut warm_rows = Vec::new();
        let (mut bin_total_us, mut json_total_us) = (0.0f64, 0.0f64);
        for stage in DISK_STAGES {
            let (entries, bin_us) = timed_decode(&store, stage, "bin");
            let (json_entries, json_us) = timed_decode(&json_store, stage, "json");
            if json_entries != entries {
                eprintln!(
                    "pipeline: JSON twin of stage {} has {json_entries} entries, expected {entries}",
                    stage.label()
                );
                std::process::exit(1);
            }
            bin_total_us += bin_us;
            json_total_us += json_us;
            println!(
                "  {:<12} {entries:>4} entries   bin {bin_us:>10.1} µs   json {json_us:>10.1} µs",
                stage.label()
            );
            warm_rows.push((
                stage.label(),
                Json::obj(vec![
                    ("entries", Json::from(entries)),
                    ("bin", Json::from(bin_us)),
                    ("json", Json::from(json_us)),
                ]),
            ));
        }
        let _ = std::fs::remove_dir_all(&json_dir);
        let codec_speedup = json_total_us / bin_total_us.max(1e-9);
        println!(
            "  {:<12}      total    bin {bin_total_us:>10.1} µs   json {json_total_us:>10.1} µs   \
             ({codec_speedup:.2}x)",
            ""
        );
        let cache_report = Json::obj(vec![
            ("dir", Json::from(dir.to_string_lossy().as_ref())),
            ("codec", Json::from("bin")),
            ("cold", disk_json(seq_disk)),
            ("warm", disk_json(par_disk)),
            ("warm_load_us", Json::obj(warm_rows)),
            (
                "codec_warm_load",
                Json::obj(vec![
                    ("bin_p50_us", Json::from(bin_total_us)),
                    ("json_p50_us", Json::from(json_total_us)),
                    ("speedup", Json::from(codec_speedup)),
                ]),
            ),
        ]);
        report.push(("cache", cache_report.clone()));
        // Stand-alone stats file for CI artifact upload next to the main
        // report.
        std::fs::write("BENCH_cache.json", cache_report.pretty()).ok();
        println!(
            "cache: cold {} stores, warm {} hits / {} misses (wrote BENCH_cache.json)",
            seq_disk.stores, par_disk.hits, par_disk.misses
        );
    }
    std::fs::write("BENCH_pipeline.json", Json::obj(report).pretty()).ok();
    println!("wrote BENCH_pipeline.json");
    if !verify_identical {
        std::process::exit(1);
    }
}
