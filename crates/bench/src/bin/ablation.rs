//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Check placement** — the §III-B first-access/last-write placement
//!    vs. naive per-access checking: instrumentation cost.
//! 2. **Listing-3 GPU-check hoisting** — with vs. without: how many
//!    per-iteration redundant copyouts the tool can detect ("optimizing
//!    GPU-coherence-check placement allows us to detect additional
//!    redundant transfers, which was not possible in the previous
//!    schemes").
//! 3. **Lockstep execution width** — the simulator's wave-based lockstep
//!    vs. one-thread-at-a-time execution: whether injected races manifest
//!    at all (why the substrate design makes Table 2 reproducible).

use openarc_core::exec::{execute, ExecMode, ExecOptions, VerifyOptions};
use openarc_core::faults::strip_privatization;
use openarc_core::translate::{translate, TranslateOptions};
use openarc_gpusim::LaunchConfig;
use openarc_runtime::IssueKind;
use openarc_suite::{jacobi, Scale, Variant};

fn main() {
    ablate_check_placement();
    ablate_hoisting();
    ablate_lockstep();
}

/// Ablation 1: optimized vs naive check placement on the optimized JACOBI.
fn ablate_check_placement() {
    println!("Ablation 1 — coherence-check placement (JACOBI, optimized variant)");
    let baseline = {
        let b = jacobi::benchmark(Scale::bench());
        let (p, s) = openarc_minic::frontend(b.source(Variant::Optimized)).unwrap();
        let tr = translate(&p, &s, &TranslateOptions::default()).unwrap();
        execute(
            &tr,
            &ExecOptions {
                race_detect: false,
                ..Default::default()
            },
        )
        .unwrap()
        .sim_time_us()
    };
    println!(
        "{:<22}{:>14}{:>16}{:>12}",
        "placement", "sim_time_us", "static checks", "overhead"
    );
    for (label, optimize) in [("first-access+hoist", true), ("every-access", false)] {
        let b = jacobi::benchmark(Scale::bench());
        let (p, s) = openarc_minic::frontend(b.source(Variant::Optimized)).unwrap();
        let topts = TranslateOptions {
            instrument: true,
            optimize_checks: optimize,
            ..Default::default()
        };
        let tr = translate(&p, &s, &topts).unwrap();
        let checks = tr
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    openarc_core::ir::RtOp::CheckRead { .. }
                        | openarc_core::ir::RtOp::CheckWrite { .. }
                        | openarc_core::ir::RtOp::ResetStatus { .. }
                )
            })
            .count();
        let r = execute(
            &tr,
            &ExecOptions {
                check_transfers: true,
                race_detect: false,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "{:<22}{:>14.1}{:>16}{:>11.2}%",
            label,
            r.sim_time_us(),
            checks,
            (r.sim_time_us() - baseline) / baseline * 100.0
        );
    }
    println!();
}

/// Ablation 2: Listing-3 hoisting on/off → detected redundant copyouts in
/// the paper's exact Listing 3/4 scenario (kernel writes `b` each
/// iteration, only the final value is consumed).
fn ablate_hoisting() {
    println!("Ablation 2 — Listing-3 GPU write-check hoisting (paper's JACOBI excerpt)");
    println!("{:<22}{:>22}", "hoisting", "redundant copyouts");
    let src = r#"
double a[64];
double b[64];
double out;
void main() {
    int k; int j;
    for (j = 0; j < 64; j++) { a[j] = 1.0; }
    #pragma acc data copyin(a) create(b)
    {
        for (k = 0; k < 8; k++) {
            #pragma acc kernels loop gang
            for (j = 0; j < 64; j++) { b[j] = a[j] + (double) k; }
            #pragma acc update host(b)
        }
    }
    out = b[0];
}
"#;
    for (label, hoist) in [("enabled (paper)", true), ("disabled (prior art)", false)] {
        let (p, s) = openarc_minic::frontend(src).unwrap();
        let topts = TranslateOptions {
            instrument: true,
            hoist_gpu_checks: hoist,
            ..Default::default()
        };
        let tr = translate(&p, &s, &topts).unwrap();
        let r = execute(
            &tr,
            &ExecOptions {
                check_transfers: true,
                race_detect: false,
                ..Default::default()
            },
        )
        .unwrap();
        let redundant = r.machine.report.count(IssueKind::Redundant);
        println!("{:<22}{:>22}", label, redundant);
    }
    println!();
}

/// Ablation 3: lockstep wave width → does the injected JACOBI race
/// manifest?
fn ablate_lockstep() {
    println!("Ablation 3 — lockstep wave width vs race manifestation (JACOBI, stripped clauses)");
    println!(
        "{:<22}{:>10}{:>18}",
        "wave width", "races", "verification FAIL"
    );
    let b = jacobi::benchmark(Scale::default());
    let (p, s) = openarc_minic::frontend(b.source(Variant::Optimized)).unwrap();
    let (stripped, _) = strip_privatization(&p).unwrap();
    let topts = TranslateOptions {
        auto_privatize: false,
        auto_reduction: false,
        ..Default::default()
    };
    for wave in [1u32, 4, 64, 256] {
        let tr = translate(&stripped, &s, &topts).unwrap();
        let r = execute(
            &tr,
            &ExecOptions {
                mode: ExecMode::Verify(VerifyOptions::default()),
                launch: LaunchConfig {
                    wave,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let flagged = r.verify.iter().any(|k| k.flagged());
        println!("{:<22}{:>10}{:>18}", wave, r.races.len(), flagged);
    }
}
