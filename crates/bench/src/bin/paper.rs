//! Regenerate the whole evaluation section in one run.
use openarc_bench::{experiments, render};
use openarc_suite::Scale;

fn main() {
    let scale = Scale::bench();
    let problems = experiments::validate_suite(scale);
    assert!(problems.is_empty(), "suite validation failed: {problems:?}");
    println!(
        "suite validated at bench scale (n={}, iters={})\n",
        scale.n, scale.iters
    );
    println!("{}", render::figure1_text(&experiments::figure1(scale)));
    println!("{}", render::table2_text(&experiments::table2(scale)));
    println!("{}", render::figure3_text(&experiments::figure3(scale)));
    println!("{}", render::table3_text(&experiments::table3(scale)));
    println!("{}", render::figure4_text(&experiments::figure4(scale)));
}
