//! Regenerate the whole evaluation section in one run. The five
//! experiments share one [`openarc_bench::sweep::Sweep`], so every
//! translation and cacheable run is compiled/executed once no matter how
//! many figures touch it; `--jobs N` fans the benchmark matrix across
//! worker threads with byte-identical output.
use openarc_bench::sweep::exit_on_error;
use openarc_bench::{args, experiments, render};

fn main() {
    let sw = args::sweep_from_env("paper");
    let problems = exit_on_error("paper", experiments::validate_suite(&sw));
    if !problems.is_empty() {
        eprintln!("paper: suite validation failed:");
        for p in &problems {
            eprintln!("  {p}");
        }
        std::process::exit(1);
    }
    println!(
        "suite validated (n={}, iters={}, jobs={})\n",
        sw.scale.n, sw.scale.iters, sw.jobs
    );
    println!(
        "{}",
        render::figure1_text(&exit_on_error("paper", experiments::figure1(&sw)))
    );
    println!(
        "{}",
        render::table2_text(&exit_on_error("paper", experiments::table2(&sw)))
    );
    println!(
        "{}",
        render::figure3_text(&exit_on_error("paper", experiments::figure3(&sw)))
    );
    println!(
        "{}",
        render::table3_text(&exit_on_error("paper", experiments::table3(&sw)))
    );
    println!(
        "{}",
        render::figure4_text(&exit_on_error("paper", experiments::figure4(&sw)))
    );
    println!("pipeline cache across experiments:\n{}", sw.session.stats());
}
