//! Regenerate Figure 1.
use openarc_bench::{args, experiments, render, sweep};

fn main() {
    let sw = args::sweep_from_env("figure1");
    let rows = sweep::exit_on_error("figure1", experiments::figure1(&sw));
    println!("{}", render::figure1_text(&rows));
    let json = experiments::rows_json(&rows, |r| r.to_json()).pretty();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/figure1.json", json).ok();
}
