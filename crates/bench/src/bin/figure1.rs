//! Regenerate Figure 1.
use openarc_bench::{experiments, render};
use openarc_suite::Scale;

fn main() {
    let rows = experiments::figure1(Scale::bench());
    println!("{}", render::figure1_text(&rows));
    let json = experiments::rows_json(&rows, |r| r.to_json()).pretty();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/figure1.json", json).ok();
}
