//! Shared command-line argument parsing for the bench binaries and the
//! `openarc bench` subcommand.
//!
//! Every driver takes the same flags — `--scale small|bench`, `--jobs
//! N|auto`, `--n SIZE`, `--iters COUNT` — plus the disk-cache pair
//! `--cache-dir DIR` / `--no-cache` added with the persistent artifact
//! store. Parsing them once here keeps the eight binaries' usage strings
//! and error behaviour identical.

use crate::sweep::Sweep;
use openarc_core::pipeline::Session;
use openarc_suite::Scale;
use std::path::PathBuf;

/// The flag summary shared by every usage message.
pub const FLAGS_HELP: &str =
    "[--scale small|bench] [--jobs N|auto] [--n SIZE] [--iters COUNT] [--cache-dir DIR] [--no-cache]";

/// Parsed bench-driver arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Problem scale every cell runs at.
    pub scale: Scale,
    /// Worker threads (`1` = sequential).
    pub jobs: usize,
    /// Resolved disk-cache root: the `--cache-dir` value, else the
    /// caller's default, and `None` when `--no-cache` was given (it wins
    /// over both).
    pub cache_dir: Option<PathBuf>,
}

impl BenchArgs {
    /// Parse `args`. `default_cache` is the cache directory used when
    /// neither `--cache-dir` nor `--no-cache` appears (`None`: disk cache
    /// off by default). The error string is ready for stderr.
    pub fn parse(args: &[String], default_cache: Option<&str>) -> Result<BenchArgs, String> {
        let mut scale = Scale::bench();
        let mut jobs = 1usize;
        let mut cache_dir: Option<PathBuf> = None;
        let mut no_cache = false;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} expects a value"))
            };
            match a.as_str() {
                "--scale" => {
                    scale = match value("--scale")?.as_str() {
                        "small" => Scale::default(),
                        "bench" => Scale::bench(),
                        other => {
                            return Err(format!(
                                "--scale expects 'small' or 'bench' (got '{other}')"
                            ))
                        }
                    }
                }
                "--jobs" => jobs = openarc_core::sched::parse_jobs(&value("--jobs")?)?,
                "--n" => {
                    scale.n = value("--n")?
                        .parse()
                        .map_err(|_| "--n expects a positive integer".to_string())?
                }
                "--iters" => {
                    scale.iters = value("--iters")?
                        .parse()
                        .map_err(|_| "--iters expects a positive integer".to_string())?
                }
                "--cache-dir" => cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
                "--no-cache" => no_cache = true,
                other => {
                    return Err(format!(
                        "unknown argument '{other}' (expected {FLAGS_HELP})"
                    ))
                }
            }
        }
        if scale.n == 0 || scale.iters == 0 {
            return Err("--n and --iters must be positive".to_string());
        }
        let cache_dir = if no_cache {
            None
        } else {
            cache_dir.or_else(|| default_cache.map(PathBuf::from))
        };
        Ok(BenchArgs {
            scale,
            jobs,
            cache_dir,
        })
    }

    /// Parse a bin's process arguments (no default cache directory),
    /// printing a usage message to stderr and exiting with status `2`
    /// when they don't parse.
    pub fn from_env(bin: &str) -> BenchArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args, None) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{bin}: {e}");
                eprintln!("usage: {bin} {FLAGS_HELP}");
                std::process::exit(2);
            }
        }
    }

    /// Fresh [`Session`] honouring the resolved cache directory.
    pub fn session(&self) -> Session {
        let builder = Session::builder();
        match &self.cache_dir {
            Some(dir) => builder.disk_cache(dir).build(),
            None => builder.build(),
        }
    }

    /// Fresh [`Sweep`] at this scale and worker count, backed by
    /// [`BenchArgs::session`].
    pub fn sweep(&self) -> Sweep {
        Sweep::with_session(self.scale, self.jobs, self.session())
    }
}

/// Parse a bin's arguments and build its sweep in one call (the common
/// figure/table driver prologue).
pub fn sweep_from_env(bin: &str) -> Sweep {
    BenchArgs::from_env(bin).sweep()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_flags() {
        let a = BenchArgs::parse(&[], None).unwrap();
        assert_eq!(
            (a.scale.n, a.scale.iters, a.jobs, a.cache_dir),
            (Scale::bench().n, Scale::bench().iters, 1, None)
        );
        let a = BenchArgs::parse(&strs(&["--scale", "small", "--jobs", "4"]), None).unwrap();
        assert_eq!((a.scale.n, a.jobs), (Scale::default().n, 4));
        assert!(BenchArgs::parse(&strs(&["--jobs", "zero"]), None).is_err());
        assert!(BenchArgs::parse(&strs(&["--frobnicate"]), None).is_err());
        assert!(BenchArgs::parse(&strs(&["--n", "0"]), None).is_err());
    }

    #[test]
    fn cache_flags_resolve_with_default() {
        // No flags: the caller's default wins.
        let a = BenchArgs::parse(&[], Some("target/openarc-cache")).unwrap();
        assert_eq!(a.cache_dir, Some(PathBuf::from("target/openarc-cache")));
        // Explicit dir overrides the default.
        let a = BenchArgs::parse(&strs(&["--cache-dir", "/tmp/c"]), Some("x")).unwrap();
        assert_eq!(a.cache_dir, Some(PathBuf::from("/tmp/c")));
        // --no-cache beats both, in either flag order.
        let a =
            BenchArgs::parse(&strs(&["--no-cache", "--cache-dir", "/tmp/c"]), Some("x")).unwrap();
        assert_eq!(a.cache_dir, None);
        let a = BenchArgs::parse(&strs(&["--no-cache"]), Some("x")).unwrap();
        assert_eq!(a.cache_dir, None);
    }

    #[test]
    fn session_and_sweep_honour_the_cache_dir() {
        let dir = std::env::temp_dir().join("openarc-args-test");
        let a = BenchArgs::parse(
            &strs(&["--cache-dir", dir.to_str().unwrap(), "--scale", "small"]),
            None,
        )
        .unwrap();
        assert!(a.session().disk_cache().is_some());
        assert!(a.sweep().session.disk_cache().is_some());
        let plain = BenchArgs::parse(&strs(&["--scale", "small"]), None).unwrap();
        assert!(plain.session().disk_cache().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
