//! Render a fuzz [`CampaignReport`] as the `BENCH_fuzz.json` document.
//!
//! The shape follows the other BENCH reports: top-level campaign counters,
//! a latency [`Stats`] block over the per-program oracle times, the
//! coverage-growth evidence (baseline atom count, campaign atom count, the
//! sorted list of new atoms) and one entry per deduplicated finding. The
//! CI `fuzz-smoke` job gates on `programs`, `new_atoms` and `unminimized`
//! from this file.

use crate::timing::Stats;
use openarc_core::fuzz::CampaignReport;
use openarc_trace::json::Json;

/// `BENCH_fuzz.json` for one campaign.
pub fn campaign_json(r: &CampaignReport) -> Json {
    let exec = if r.exec_us.is_empty() {
        Json::Null
    } else {
        let ns: Vec<u128> = r.exec_us.iter().map(|us| (us * 1e3) as u128).collect();
        Stats::from_samples(ns).to_json()
    };
    let new_atoms: Vec<Json> = r
        .new_atoms()
        .into_iter()
        .map(|a| Json::Str(a.to_string()))
        .collect();
    let findings: Vec<Json> = r
        .findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("kind", Json::Str(f.kind.name().to_string())),
                ("config", Json::Str(f.config.clone())),
                ("options", Json::Str(f.options.clone())),
                ("detail", Json::Str(f.detail.clone())),
                ("occurrences", Json::from(f.occurrences)),
                ("minimized_ok", Json::Bool(f.minimized_ok)),
                ("minimized_lines", Json::from(f.minimized.lines().count())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("seed", Json::U64(r.seed)),
        ("programs", Json::from(r.programs)),
        ("rejected", Json::from(r.rejected)),
        ("racy", Json::from(r.racy)),
        ("corpus", Json::from(r.corpus)),
        ("truncated", Json::Bool(r.truncated)),
        ("fingerprint", Json::Str(format!("{:016x}", r.fingerprint))),
        ("baseline_atoms", Json::from(r.baseline_coverage.len())),
        ("coverage_atoms", Json::from(r.coverage.len())),
        ("new_atoms", Json::Arr(new_atoms)),
        ("findings", Json::Arr(findings)),
        ("unminimized", Json::from(r.unminimized())),
        ("exec_per_program", exec),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_core::fuzz::{run_campaign, CampaignConfig};

    #[test]
    fn report_renders_and_round_trips() {
        let r = run_campaign(&CampaignConfig {
            seed: 3,
            max_programs: 8,
            ..CampaignConfig::default()
        });
        let j = campaign_json(&r);
        let text = j.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("seed").and_then(Json::as_u64), Some(3));
        assert_eq!(
            back.get("programs").and_then(Json::as_u64),
            Some(r.programs as u64)
        );
        assert_eq!(
            back.get("fingerprint").and_then(Json::as_str),
            Some(format!("{:016x}", r.fingerprint).as_str())
        );
        // Coverage superset of the (empty-baseline) new-atom list.
        let atoms = back.get("new_atoms").and_then(Json::as_arr).unwrap();
        assert_eq!(atoms.len(), r.new_atoms().len());
    }

    #[test]
    fn empty_campaign_has_null_latency() {
        let r = run_campaign(&CampaignConfig {
            seed: 1,
            max_programs: 0,
            ..CampaignConfig::default()
        });
        let j = campaign_json(&r);
        assert_eq!(j.get("exec_per_program"), Some(&Json::Null));
        assert_eq!(j.get("programs").and_then(Json::as_u64), Some(0));
    }
}
