//! Parallel-determinism contract: a `--jobs N` sweep must be
//! bit-identical to a sequential one for every worker count — same rows,
//! same merged journal, same per-category time totals, same figure/table
//! outputs — and one failing cell must not strand the others.

use openarc_bench::experiments;
use openarc_bench::sweep::Sweep;
use openarc_core::sched::run_tasks;
use openarc_suite::{Scale, Variant};
use openarc_trace::{merge_parts, Category, EventKind, TraceEvent, Track};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn parallel_matrix_is_bit_identical_to_sequential() {
    let (rows_seq, events_seq) = Sweep::sequential(Scale::default()).matrix().unwrap();
    let (rows_par, events_par) = Sweep::new(Scale::default(), 4).matrix().unwrap();

    assert_eq!(rows_seq.len(), rows_par.len());
    for (a, b) in rows_seq.iter().zip(&rows_par) {
        assert_eq!(a.bench, b.bench);
        assert_eq!(a.variant, b.variant);
        // f64s compared bit-for-bit, not approximately.
        assert_eq!(
            a.sim_us.to_bits(),
            b.sim_us.to_bits(),
            "{} [{}] simulated time differs across jobs",
            a.bench,
            a.variant
        );
        assert_eq!(a.transferred_bytes, b.transferred_bytes);
        assert_eq!(a.kernel_launches, b.kernel_launches);
        assert_eq!(a.events, b.events);
    }

    // The merged journals reconcile event-for-event…
    assert_eq!(events_seq, events_par);
    // …and so do the clock-category totals derived from them.
    let totals_seq = openarc_trace::category_totals(&events_seq);
    let totals_par = openarc_trace::category_totals(&events_par);
    for ((cat, a), (_, b)) in totals_seq.iter().zip(&totals_par) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "category {cat:?} total differs across jobs"
        );
    }
}

/// Worker counts that don't divide the 36-cell matrix (3, 7) and one that
/// oversubscribes any reasonable host (16) all reproduce the sequential
/// output exactly — the chunked self-scheduler may interleave cells
/// arbitrarily, but rows and journals come back in task order.
#[test]
fn matrix_is_identical_for_odd_and_oversubscribed_worker_counts() {
    let (rows_seq, events_seq) = Sweep::sequential(Scale::default()).matrix().unwrap();
    for jobs in [3usize, 7, 16] {
        let (rows, events) = Sweep::new(Scale::default(), jobs).matrix().unwrap();
        assert_eq!(rows_seq.len(), rows.len(), "jobs={jobs}");
        for (a, b) in rows_seq.iter().zip(&rows) {
            assert_eq!(a, b, "jobs={jobs}: cell diverged");
        }
        assert_eq!(events_seq, events, "jobs={jobs}: merged journal diverged");
    }
}

/// A panic in one cell propagates to the caller, but only after every
/// other cell has run — a poisoned benchmark cannot strand the rest of
/// the matrix.
#[test]
fn one_panicking_cell_does_not_strand_the_rest() {
    static COMPLETED: AtomicUsize = AtomicUsize::new(0);
    COMPLETED.store(0, Ordering::SeqCst);
    let sw = Sweep::new(Scale::default(), 4);
    let r = catch_unwind(AssertUnwindSafe(|| {
        sw.map_cells(|b, v| {
            if b.name == "JACOBI" && v == Variant::Naive {
                panic!("injected cell failure");
            }
            COMPLETED.fetch_add(1, Ordering::SeqCst);
            Ok(())
        })
    }));
    assert!(r.is_err(), "the injected panic must reach the caller");
    assert_eq!(
        COMPLETED.load(Ordering::SeqCst),
        35,
        "every other cell must still run"
    );
}

/// Regression: workers finish out of task order under parallelism, yet
/// `merge_parts` over `run_tasks` output must concatenate the per-task
/// journal buffers in task order, not completion order.
#[test]
fn journal_parts_merge_in_task_order_despite_out_of_order_completion() {
    let ev = |i: usize| TraceEvent {
        ts_us: i as f64,
        dur_us: 1.0,
        track: Track::Host,
        kind: EventKind::Slice {
            cat: Category::CpuTime,
        },
    };
    let tasks: Vec<_> = (0..24usize)
        .map(|i| {
            move || {
                // Early tasks sleep so completion order roughly reverses
                // task order across the worker pool.
                if i < 12 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                vec![ev(2 * i), ev(2 * i + 1)]
            }
        })
        .collect();
    let parts = run_tasks(6, tasks);
    let merged = merge_parts(parts);
    let expect: Vec<TraceEvent> = (0..48).map(ev).collect();
    assert_eq!(merged, expect);
}

#[test]
fn parallel_experiments_match_sequential() {
    let seq = Sweep::sequential(Scale::default());
    let par = Sweep::new(Scale::default(), 4);

    let f1_seq = experiments::figure1(&seq).unwrap();
    let f1_par = experiments::figure1(&par).unwrap();
    assert_eq!(f1_seq.len(), f1_par.len());
    for (a, b) in f1_seq.iter().zip(&f1_par) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.time_ratio.to_bits(), b.time_ratio.to_bits(), "{}", a.name);
        assert_eq!(a.naive_bytes, b.naive_bytes);
        assert_eq!(a.opt_bytes, b.opt_bytes);
    }

    let t2_seq = experiments::table2(&seq).unwrap();
    let t2_par = experiments::table2(&par).unwrap();
    assert_eq!(t2_seq.kernels_tested, t2_par.kernels_tested);
    assert_eq!(t2_seq.active_errors, t2_par.active_errors);
    assert_eq!(t2_seq.latent_errors, t2_par.latent_errors);
    for (a, b) in t2_seq.rows.iter().zip(&t2_par.rows) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.active_detected, b.active_detected, "{}", a.name);
        assert_eq!(a.latent, b.latent, "{}", a.name);
    }
}
