//! Parallel-determinism contract: a `--jobs 4` sweep must be
//! bit-identical to a sequential one — same rows, same merged journal,
//! same per-category time totals, same figure/table outputs.

use openarc_bench::experiments;
use openarc_bench::sweep::Sweep;
use openarc_suite::Scale;

#[test]
fn parallel_matrix_is_bit_identical_to_sequential() {
    let (rows_seq, events_seq) = Sweep::sequential(Scale::default()).matrix().unwrap();
    let (rows_par, events_par) = Sweep::new(Scale::default(), 4).matrix().unwrap();

    assert_eq!(rows_seq.len(), rows_par.len());
    for (a, b) in rows_seq.iter().zip(&rows_par) {
        assert_eq!(a.bench, b.bench);
        assert_eq!(a.variant, b.variant);
        // f64s compared bit-for-bit, not approximately.
        assert_eq!(
            a.sim_us.to_bits(),
            b.sim_us.to_bits(),
            "{} [{}] simulated time differs across jobs",
            a.bench,
            a.variant
        );
        assert_eq!(a.transferred_bytes, b.transferred_bytes);
        assert_eq!(a.kernel_launches, b.kernel_launches);
        assert_eq!(a.events, b.events);
    }

    // The merged journals reconcile event-for-event…
    assert_eq!(events_seq, events_par);
    // …and so do the clock-category totals derived from them.
    let totals_seq = openarc_trace::category_totals(&events_seq);
    let totals_par = openarc_trace::category_totals(&events_par);
    for ((cat, a), (_, b)) in totals_seq.iter().zip(&totals_par) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "category {cat:?} total differs across jobs"
        );
    }
}

#[test]
fn parallel_experiments_match_sequential() {
    let seq = Sweep::sequential(Scale::default());
    let par = Sweep::new(Scale::default(), 4);

    let f1_seq = experiments::figure1(&seq).unwrap();
    let f1_par = experiments::figure1(&par).unwrap();
    assert_eq!(f1_seq.len(), f1_par.len());
    for (a, b) in f1_seq.iter().zip(&f1_par) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.time_ratio.to_bits(), b.time_ratio.to_bits(), "{}", a.name);
        assert_eq!(a.naive_bytes, b.naive_bytes);
        assert_eq!(a.opt_bytes, b.opt_bytes);
    }

    let t2_seq = experiments::table2(&seq).unwrap();
    let t2_par = experiments::table2(&par).unwrap();
    assert_eq!(t2_seq.kernels_tested, t2_par.kernels_tested);
    assert_eq!(t2_seq.active_errors, t2_par.active_errors);
    assert_eq!(t2_seq.latent_errors, t2_par.latent_errors);
    for (a, b) in t2_seq.rows.iter().zip(&t2_par.rows) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.active_detected, b.active_detected, "{}", a.name);
        assert_eq!(a.latent, b.latent, "{}", a.name);
    }
}
