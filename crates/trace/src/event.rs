//! The event schema: what the stack journals and when.
//!
//! Events come in two shapes:
//!
//! * **Slices** ([`EventKind::Slice`]) — host-timeline time charges,
//!   emitted by the simulated clock itself at the instant the time is
//!   charged. Summing slice durations per [`Category`] reproduces the
//!   clock's `TimeBreakdown` *exactly* (same additions, same order), which
//!   is what lets summaries reconcile to the unit.
//! * **Semantic events** — everything else: kernel launches/completions,
//!   device alloc/free, transfers, present-table hits/misses, coherence
//!   transitions, report findings, and verification verdicts. These carry
//!   the payload a programmer asks about ("why was this transfer flagged
//!   redundant"); spans additionally carry a duration and the async-queue
//!   track they executed on.

use std::fmt;

/// Where simulated host time was spent. Mirrors the simulator clock's
/// `TimeCategory` (Figure 3's legend) so journal totals and clock totals
/// are the same vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Device memory frees.
    GpuMemFree,
    /// Device memory allocations.
    GpuMemAlloc,
    /// Host↔device transfers (synchronous part).
    MemTransfer,
    /// Host blocked waiting for async work.
    AsyncWait,
    /// Output comparison against the CPU reference.
    ResultComp,
    /// Host CPU computation.
    CpuTime,
    /// Synchronous kernel execution.
    KernelExec,
}

impl Category {
    /// All categories, in Figure 3 order.
    pub const ALL: [Category; 7] = [
        Category::GpuMemFree,
        Category::GpuMemAlloc,
        Category::MemTransfer,
        Category::AsyncWait,
        Category::ResultComp,
        Category::CpuTime,
        Category::KernelExec,
    ];

    /// Display label (matches the clock's `TimeCategory::label`).
    pub fn label(self) -> &'static str {
        match self {
            Category::GpuMemFree => "GPU Mem Free",
            Category::GpuMemAlloc => "GPU Mem Alloc",
            Category::MemTransfer => "Mem Transfer",
            Category::AsyncWait => "Async-Wait",
            Category::ResultComp => "Result-Comp",
            Category::CpuTime => "CPU Time",
            Category::KernelExec => "Kernel Exec",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which simulated timeline an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The host timeline.
    Host,
    /// An asynchronous queue on one simulated device. Queues are
    /// namespaced per device: `(dev, id)` is the timeline identity, and
    /// the same queue id on two devices names two independent timelines.
    Queue {
        /// Device owning the queue (`0` is the primary device).
        dev: u32,
        /// Queue id within the device.
        id: i64,
    },
}

impl Track {
    /// A queue track on the primary device (device 0).
    pub fn queue0(id: i64) -> Track {
        Track::Queue { dev: 0, id }
    }

    /// The queue id, if this is a queue track (any device).
    pub fn queue(self) -> Option<i64> {
        match self {
            Track::Host => None,
            Track::Queue { id, .. } => Some(id),
        }
    }

    /// The device id, if this is a queue track.
    pub fn device(self) -> Option<u32> {
        match self {
            Track::Host => None,
            Track::Queue { dev, .. } => Some(dev),
        }
    }

    /// The `(device, queue)` pair, if this is a queue track.
    pub fn dev_queue(self) -> Option<(u32, i64)> {
        match self {
            Track::Host => None,
            Track::Queue { dev, id } => Some((dev, id)),
        }
    }
}

/// One journaled event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated start timestamp, µs.
    pub ts_us: f64,
    /// Duration, µs. `0.0` marks an instant event.
    pub dur_us: f64,
    /// Timeline the event occurred on.
    pub track: Track,
    /// Payload.
    pub kind: EventKind,
}

/// The payload of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A host-time charge, emitted by the simulated clock. The per-category
    /// sum of slice durations equals the clock's `TimeBreakdown` exactly.
    Slice {
        /// Category the time was charged to.
        cat: Category,
    },
    /// A kernel was launched (instant, at the host-side launch point).
    KernelLaunch {
        /// Kernel name.
        kernel: String,
        /// Threads in the launch.
        n_threads: u64,
        /// Async queue, if any.
        queue: Option<i64>,
        /// Device the launch was dispatched to (`0` = primary device).
        dev: u32,
    },
    /// A kernel's execution span; its end (`ts_us + dur_us`) is the
    /// completion timestamp. Lands on the queue track for async launches.
    KernelComplete {
        /// Kernel name.
        kernel: String,
    },
    /// Device memory allocated for a variable (instant).
    DevAlloc {
        /// Variable label.
        var: String,
        /// Allocation size.
        bytes: u64,
    },
    /// Device memory freed (instant).
    DevFree {
        /// Variable label.
        var: String,
    },
    /// A host↔device transfer span. Lands on the queue track when async.
    Transfer {
        /// Variable transferred.
        var: String,
        /// Report site naming the transfer (e.g. `update0`).
        site: String,
        /// Payload size.
        bytes: u64,
        /// Direction: `true` = host→device.
        to_device: bool,
    },
    /// Present-table lookup found an existing mapping (instant).
    PresentHit {
        /// Variable looked up.
        var: String,
    },
    /// Present-table lookup missed; a mapping was created (instant).
    PresentMiss {
        /// Variable looked up.
        var: String,
    },
    /// A coherence state transition on one side of a tracked variable
    /// (instant). States are the paper's `notstale` / `maystale` / `stale`.
    Coherence {
        /// Variable whose state changed.
        var: String,
        /// Side that changed: `"cpu"`, `"gpu"` (primary device), or
        /// `"gpuN"` for device N > 0.
        side: &'static str,
        /// Previous state.
        from: &'static str,
        /// New state.
        to: &'static str,
        /// What caused the transition: `"write"`, `"transfer"`, `"reset"`
        /// or `"dealloc"`.
        cause: &'static str,
    },
    /// A transfer-report finding (instant) — the journal's copy of one
    /// Listing-4-style suggestion.
    Finding {
        /// Severity: `"info"`, `"warning"` or `"error"`.
        severity: &'static str,
        /// Finding kind, e.g. `"Redundant"`, `"Missing"`.
        kind: String,
        /// Variable involved.
        var: String,
        /// Site the finding fired at.
        site: String,
        /// Rendered message.
        message: String,
    },
    /// A kernel-verification verdict (§III-A) for one launch (instant).
    Verification {
        /// Kernel verified.
        kernel: String,
        /// Whether the launch's outputs stayed within the error margin.
        passed: bool,
        /// Elements compared.
        compared_elems: u64,
        /// Elements that diverged.
        mismatched_elems: u64,
        /// Largest absolute divergence.
        max_abs_err: f64,
    },
    /// A pipeline-stage timing span emitted by the staged compilation
    /// pipeline (`Session`). Unlike [`EventKind::Slice`], the duration is
    /// **real wall-clock** µs spent compiling/executing, not simulated
    /// time, and the timestamp is the offset since the session started.
    /// Stage events therefore never enter the deterministic per-run
    /// journals compared byte-for-byte across worker counts — they live in
    /// a separate session-level stream.
    Stage {
        /// Stage label, e.g. `"Frontend"`, `"Translate"`, `"Execute"`.
        stage: &'static str,
        /// Whether the stage result came from the artifact cache.
        cached: bool,
    },
    /// A disk-cache operation performed by the staged pipeline's
    /// content-addressed artifact store (instant, session-level stream —
    /// same rules as [`EventKind::Stage`]: real wall-clock offsets, never
    /// part of the deterministic per-run journals).
    Cache {
        /// Stage label of the artifact involved, e.g. `"Frontend"`.
        stage: &'static str,
        /// Operation: `"hit"`, `"miss"`, `"store"`, `"evict"` or
        /// `"corrupt"`.
        op: &'static str,
    },
    /// One gauge sample from the `openarc serve` daemon's periodic stats
    /// heartbeat (instant, server-level stream — real wall-clock offsets
    /// since daemon start, same rules as [`EventKind::Stage`]: never part
    /// of the deterministic per-run journals).
    Serve {
        /// Gauge name, e.g. `"in_flight"`, `"queue_depth"`, `"p95_us"`,
        /// `"cache_hits"`.
        gauge: String,
        /// Sampled value.
        value: f64,
    },
}

impl TraceEvent {
    /// Short display name (the Chrome trace event name).
    pub fn name(&self) -> String {
        match &self.kind {
            EventKind::Slice { cat } => cat.label().to_string(),
            EventKind::KernelLaunch { kernel, .. } => format!("launch {kernel}"),
            EventKind::KernelComplete { kernel } => kernel.clone(),
            EventKind::DevAlloc { var, .. } => format!("alloc {var}"),
            EventKind::DevFree { var } => format!("free {var}"),
            EventKind::Transfer { var, to_device, .. } => {
                if *to_device {
                    format!("H2D {var}")
                } else {
                    format!("D2H {var}")
                }
            }
            EventKind::PresentHit { var } => format!("present-hit {var}"),
            EventKind::PresentMiss { var } => format!("present-miss {var}"),
            EventKind::Coherence { var, side, to, .. } => format!("{var}.{side} → {to}"),
            EventKind::Finding { kind, var, .. } => format!("{kind} {var}"),
            EventKind::Verification { kernel, passed, .. } => {
                format!("verify {kernel}: {}", if *passed { "ok" } else { "FAIL" })
            }
            EventKind::Stage { stage, cached } => {
                format!("stage {stage}{}", if *cached { " (cached)" } else { "" })
            }
            EventKind::Cache { stage, op } => format!("cache {op} {stage}"),
            EventKind::Serve { gauge, value } => format!("serve {gauge}={value}"),
        }
    }

    /// Chrome trace category string for this event.
    pub fn chrome_category(&self) -> &'static str {
        match &self.kind {
            EventKind::Slice { .. } => "clock",
            EventKind::KernelLaunch { .. } | EventKind::KernelComplete { .. } => "kernel",
            EventKind::DevAlloc { .. }
            | EventKind::DevFree { .. }
            | EventKind::PresentHit { .. }
            | EventKind::PresentMiss { .. } => "memory",
            EventKind::Transfer { .. } => "transfer",
            EventKind::Coherence { .. } => "coherence",
            EventKind::Finding { .. } => "finding",
            EventKind::Verification { .. } => "verify",
            EventKind::Stage { .. } => "stage",
            EventKind::Cache { .. } => "cache",
            EventKind::Serve { .. } => "serve",
        }
    }

    /// True when the event concerns the named kernel (its launch,
    /// completion, verification verdict, or a transfer/finding at a site
    /// named after it — kernel-boundary transfers use the kernel name as
    /// their report site).
    pub fn matches_kernel(&self, name: &str) -> bool {
        match &self.kind {
            EventKind::KernelLaunch { kernel, .. }
            | EventKind::KernelComplete { kernel }
            | EventKind::Verification { kernel, .. } => kernel == name,
            EventKind::Transfer { site, .. } | EventKind::Finding { site, .. } => {
                site == name || site.starts_with(&format!("{name}_"))
            }
            _ => false,
        }
    }

    /// True when the event mentions the named variable.
    pub fn mentions_var(&self, name: &str) -> bool {
        match &self.kind {
            EventKind::DevAlloc { var, .. }
            | EventKind::DevFree { var }
            | EventKind::Transfer { var, .. }
            | EventKind::PresentHit { var }
            | EventKind::PresentMiss { var }
            | EventKind::Coherence { var, .. }
            | EventKind::Finding { var, .. } => var == name,
            _ => false,
        }
    }
}
