//! Journal-derived coverage signatures for the differential fuzzer.
//!
//! A [`Signature`] is an **order-independent set** of small string atoms
//! harvested from a journal: which [`EventKind`]s fired, which coherence
//! transitions occurred, which verdict and finding kinds were produced,
//! which per-device queue shapes appeared, and which pipeline-stage cache
//! paths ran. Set semantics make the signature stable across `--jobs`
//! values by construction — two journals that contain the same events in
//! any interleaving produce byte-identical signatures — which is the
//! contract `openarc fuzz` relies on for deterministic coverage feedback
//! (and the fix for the jobs-dependent signatures the fuzzer work
//! surfaced).
//!
//! Atoms deliberately *normalize away* identity that would otherwise make
//! every input look novel: report sites drop their trailing ordinals
//! (`update3` → `update`), secondary devices collapse to `gpux`, and
//! numeric payloads (bytes, thread counts, timestamps) are never part of
//! an atom. What remains is the shape of the behaviour, which is what
//! coverage-guided scheduling needs.

use crate::event::{EventKind, TraceEvent, Track};
use std::collections::BTreeSet;
use std::fmt;

/// An order-independent set of coverage atoms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Signature {
    atoms: BTreeSet<String>,
}

impl Signature {
    /// The empty signature.
    pub fn new() -> Signature {
        Signature::default()
    }

    /// Insert one atom.
    pub fn insert(&mut self, atom: impl Into<String>) {
        self.atoms.insert(atom.into());
    }

    /// True when the atom is present.
    pub fn contains(&self, atom: &str) -> bool {
        self.atoms.contains(atom)
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when no atom has been recorded.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterate atoms in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.atoms.iter().map(|s| s.as_str())
    }

    /// Union another signature into this one.
    pub fn merge(&mut self, other: &Signature) {
        for a in &other.atoms {
            self.atoms.insert(a.clone());
        }
    }

    /// Atoms present here but absent from `baseline`, sorted.
    pub fn new_atoms<'a>(&'a self, baseline: &Signature) -> Vec<&'a str> {
        self.atoms
            .iter()
            .filter(|a| !baseline.atoms.contains(*a))
            .map(|s| s.as_str())
            .collect()
    }

    /// Count of atoms in `other` that this signature does not have yet.
    pub fn novelty(&self, other: &Signature) -> usize {
        other
            .atoms
            .iter()
            .filter(|a| !self.atoms.contains(*a))
            .count()
    }

    /// FNV-1a hash over the sorted atom list. Two signatures with the
    /// same atom set hash identically regardless of insertion order.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for a in &self.atoms {
            for b in a.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Atom separator so {"ab","c"} and {"a","bc"} differ.
            h ^= 0x1f;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        Ok(())
    }
}

/// Strip a trailing run of ASCII digits: `update12` → `update`.
fn site_class(site: &str) -> &str {
    site.trim_end_matches(|c: char| c.is_ascii_digit())
}

/// Collapse secondary-device side labels: `cpu`/`gpu` pass through, any
/// `gpuN` (N > 0) becomes `gpux` so signatures do not scale with the
/// device count.
fn side_class(side: &str) -> &str {
    if side != "gpu" && side.starts_with("gpu") {
        "gpux"
    } else {
        side
    }
}

/// Add the atoms of one event to `sig`.
pub fn event_atoms(ev: &TraceEvent, sig: &mut Signature) {
    if let Track::Queue { dev, id } = ev.track {
        sig.insert(format!("queue:dev{dev}:q{id}"));
    }
    match &ev.kind {
        EventKind::Slice { cat } => {
            sig.insert(format!("slice:{}", cat.label()));
        }
        EventKind::KernelLaunch { queue, dev, .. } => {
            sig.insert("event:kernel-launch");
            let q = match queue {
                Some(_) => "async",
                None => "sync",
            };
            sig.insert(format!("launch:dev{dev}:{q}"));
        }
        EventKind::KernelComplete { .. } => sig.insert("event:kernel-complete"),
        EventKind::DevAlloc { .. } => sig.insert("event:dev-alloc"),
        EventKind::DevFree { .. } => sig.insert("event:dev-free"),
        EventKind::Transfer {
            site, to_device, ..
        } => {
            let dir = if *to_device { "h2d" } else { "d2h" };
            sig.insert(format!("transfer:{dir}:{}", site_class(site)));
        }
        EventKind::PresentHit { .. } => sig.insert("present:hit"),
        EventKind::PresentMiss { .. } => sig.insert("present:miss"),
        EventKind::Coherence {
            side,
            from,
            to,
            cause,
            ..
        } => {
            sig.insert(format!("coh:{}:{from}>{to}:{cause}", side_class(side)));
        }
        EventKind::Finding { severity, kind, .. } => {
            sig.insert(format!("finding:{severity}:{kind}"));
        }
        EventKind::Verification {
            passed,
            mismatched_elems,
            ..
        } => {
            sig.insert(if *passed {
                "verdict:pass"
            } else {
                "verdict:fail"
            });
            if *mismatched_elems > 0 {
                sig.insert("verdict:mismatch");
            }
        }
        EventKind::Stage { stage, cached } => {
            let path = if *cached { "hit" } else { "miss" };
            sig.insert(format!("stage:{stage}:{path}"));
        }
        EventKind::Cache { stage, op } => {
            sig.insert(format!("cache:{stage}:{op}"));
        }
        EventKind::Serve { gauge, .. } => {
            sig.insert(format!("serve:{gauge}"));
        }
    }
}

/// Signature over a whole event stream. Order-independent: any permutation
/// of `events` yields the same signature.
pub fn signature_of(events: &[TraceEvent]) -> Signature {
    let mut sig = Signature::new();
    for ev in events {
        event_atoms(ev, &mut sig);
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;

    fn ev(kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts_us: 0.0,
            dur_us: 0.0,
            track: Track::Host,
            kind,
        }
    }

    #[test]
    fn order_independent() {
        let a = ev(EventKind::PresentMiss { var: "a".into() });
        let b = ev(EventKind::Slice {
            cat: Category::KernelExec,
        });
        let c = ev(EventKind::Coherence {
            var: "a".into(),
            side: "gpu",
            from: "stale",
            to: "notstale",
            cause: "transfer",
        });
        let fwd = signature_of(&[a.clone(), b.clone(), c.clone()]);
        let rev = signature_of(&[c, b, a]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.fingerprint(), rev.fingerprint());
    }

    #[test]
    fn duplicates_collapse() {
        let e = ev(EventKind::PresentHit { var: "x".into() });
        let one = signature_of(std::slice::from_ref(&e));
        let many = signature_of(&[e.clone(), e.clone(), e]);
        assert_eq!(one, many);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn site_ordinals_and_devices_normalize() {
        let t3 = ev(EventKind::Transfer {
            var: "a".into(),
            site: "update3".into(),
            bytes: 64,
            to_device: true,
        });
        let t9 = ev(EventKind::Transfer {
            var: "a".into(),
            site: "update9".into(),
            bytes: 128,
            to_device: true,
        });
        let s = signature_of(&[t3, t9]);
        assert_eq!(s.len(), 1);
        assert!(s.contains("transfer:h2d:update"));
        assert_eq!(side_class("gpu7"), "gpux");
        assert_eq!(side_class("gpu"), "gpu");
        assert_eq!(side_class("cpu"), "cpu");
    }

    #[test]
    fn queue_shape_atoms() {
        let k = TraceEvent {
            ts_us: 1.0,
            dur_us: 2.0,
            track: Track::Queue { dev: 1, id: 2 },
            kind: EventKind::KernelComplete {
                kernel: "k0".into(),
            },
        };
        let s = signature_of(&[k]);
        assert!(s.contains("queue:dev1:q2"));
        assert!(s.contains("event:kernel-complete"));
    }

    #[test]
    fn novelty_and_merge() {
        let mut base = Signature::new();
        base.insert("a");
        let mut more = Signature::new();
        more.insert("a");
        more.insert("b");
        assert_eq!(base.novelty(&more), 1);
        assert_eq!(more.new_atoms(&base), vec!["b"]);
        base.merge(&more);
        assert_eq!(base.len(), 2);
        assert_eq!(base.novelty(&more), 0);
    }

    #[test]
    fn verdict_atoms() {
        let v = ev(EventKind::Verification {
            kernel: "k".into(),
            passed: false,
            compared_elems: 10,
            mismatched_elems: 3,
            max_abs_err: 0.5,
        });
        let s = signature_of(&[v]);
        assert!(s.contains("verdict:fail"));
        assert!(s.contains("verdict:mismatch"));
    }
}
