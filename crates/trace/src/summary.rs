//! Per-category and per-kernel summaries of a journal.
//!
//! [`category_totals`] replays the journal's [`EventKind::Slice`] charges in
//! emission order, performing the *same* floating-point additions in the
//! *same* order as the simulator clock's `TimeBreakdown` — so the two
//! reconcile exactly, not approximately.

use crate::event::{Category, EventKind, TraceEvent};
use std::fmt;

/// Per-category host-time totals, in [`Category::ALL`] order.
///
/// Because slices are emitted at the instant the clock charges time, the
/// per-category sums here are bit-for-bit equal to the clock's
/// `TimeBreakdown` for the same run.
pub fn category_totals(events: &[TraceEvent]) -> [(Category, f64); 7] {
    let mut acc = [0.0f64; 7];
    for ev in events {
        if let EventKind::Slice { cat } = ev.kind {
            let idx = Category::ALL.iter().position(|c| *c == cat).unwrap();
            acc[idx] += ev.dur_us;
        }
    }
    let mut out = [(Category::GpuMemFree, 0.0); 7];
    for (i, cat) in Category::ALL.iter().enumerate() {
        out[i] = (*cat, acc[i]);
    }
    out
}

/// Aggregated activity for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Number of launches observed.
    pub launches: u64,
    /// Summed execution-span time, µs (async spans included).
    pub exec_us: f64,
    /// Host→device transfers attributed to this kernel's sites.
    pub h2d_count: u64,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Device→host transfers attributed to this kernel's sites.
    pub d2h_count: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Verification verdicts that passed.
    pub verified_ok: u64,
    /// Verification verdicts that failed.
    pub verified_fail: u64,
    /// Largest absolute error across this kernel's verdicts.
    pub max_abs_err: f64,
    /// Transfer-report findings attributed to this kernel's sites.
    pub findings: u64,
}

/// A rendered-ready digest of a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Host-time totals per category (reconciles with the clock).
    pub categories: [(Category, f64); 7],
    /// Sum over all categories, µs.
    pub total_us: f64,
    /// Per-kernel rows, in first-launch order.
    pub kernels: Vec<KernelRow>,
    /// Pipeline-stage wall-clock totals (label, µs, cache hits), in
    /// first-seen order. Empty unless the journal carries
    /// [`EventKind::Stage`] events from a staged pipeline session. These
    /// are *real* µs, so they are reported separately and never summed
    /// into [`Summary::total_us`] (which is simulated time).
    pub stages: Vec<(&'static str, f64, u64)>,
    /// Disk-cache operation counts `(stage, op, count)` in first-seen
    /// order. Empty unless the journal carries [`EventKind::Cache`] events
    /// from a session with a disk-backed artifact store.
    pub cache: Vec<(&'static str, &'static str, u64)>,
    /// Per-device activity rows `(device, busy µs, spans, queues)`, sorted
    /// by device id. Busy time sums the durations of every span journaled
    /// on one of the device's queue tracks (kernel executions and async
    /// transfers); `queues` counts the distinct queue ids used. Empty when
    /// the journal holds no queue-track events.
    pub devices: Vec<DeviceRow>,
    /// End of the simulated timeline: the largest `ts_us + dur_us` over
    /// every journaled event, µs. Device utilization is measured against
    /// this span.
    pub makespan_us: f64,
    /// Events summarized.
    pub n_events: usize,
}

/// Aggregated queue-track activity for one simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRow {
    /// Device id (`0` is the primary device).
    pub dev: u32,
    /// Summed span time on the device's queues, µs.
    pub busy_us: f64,
    /// Number of spans.
    pub spans: u64,
    /// Distinct queue ids used.
    pub queues: u64,
    /// Busy time over the run's makespan. Can exceed `1.0` when several
    /// of the device's queues overlap.
    pub util: f64,
    /// Idle gap: makespan minus busy time, floored at zero, µs.
    pub idle_us: f64,
}

/// Digest `events` into per-category totals and per-kernel rows.
pub fn summarize(events: &[TraceEvent]) -> Summary {
    let categories = category_totals(events);
    let total_us = categories.iter().map(|(_, t)| t).sum();

    let mut kernels: Vec<KernelRow> = Vec::new();
    let mut stages: Vec<(&'static str, f64, u64)> = Vec::new();
    let mut cache: Vec<(&'static str, &'static str, u64)> = Vec::new();
    let row = |kernels: &mut Vec<KernelRow>, name: &str| -> usize {
        if let Some(i) = kernels.iter().position(|r| r.name == name) {
            return i;
        }
        kernels.push(KernelRow {
            name: name.to_string(),
            launches: 0,
            exec_us: 0.0,
            h2d_count: 0,
            h2d_bytes: 0,
            d2h_count: 0,
            d2h_bytes: 0,
            verified_ok: 0,
            verified_fail: 0,
            max_abs_err: 0.0,
            findings: 0,
        });
        kernels.len() - 1
    };

    for ev in events {
        match &ev.kind {
            EventKind::KernelLaunch { kernel, .. } => {
                let i = row(&mut kernels, kernel);
                kernels[i].launches += 1;
            }
            EventKind::KernelComplete { kernel } => {
                let i = row(&mut kernels, kernel);
                kernels[i].exec_us += ev.dur_us;
            }
            EventKind::Verification {
                kernel,
                passed,
                max_abs_err,
                ..
            } => {
                let i = row(&mut kernels, kernel);
                if *passed {
                    kernels[i].verified_ok += 1;
                } else {
                    kernels[i].verified_fail += 1;
                }
                if *max_abs_err > kernels[i].max_abs_err {
                    kernels[i].max_abs_err = *max_abs_err;
                }
            }
            EventKind::Stage { stage, cached } => {
                let i = match stages.iter().position(|(s, _, _)| s == stage) {
                    Some(i) => i,
                    None => {
                        stages.push((*stage, 0.0, 0));
                        stages.len() - 1
                    }
                };
                stages[i].1 += ev.dur_us;
                if *cached {
                    stages[i].2 += 1;
                }
            }
            EventKind::Cache { stage, op } => {
                let i = match cache.iter().position(|(s, o, _)| s == stage && o == op) {
                    Some(i) => i,
                    None => {
                        cache.push((*stage, *op, 0));
                        cache.len() - 1
                    }
                };
                cache[i].2 += 1;
            }
            _ => {}
        }
    }
    // Per-device busy rows from queue-track spans.
    let mut devices: Vec<DeviceRow> = Vec::new();
    let mut dev_queues: Vec<(u32, i64)> = Vec::new();
    for ev in events {
        let Some((dev, q)) = ev.track.dev_queue() else {
            continue;
        };
        let i = match devices.iter().position(|r| r.dev == dev) {
            Some(i) => i,
            None => {
                devices.push(DeviceRow {
                    dev,
                    busy_us: 0.0,
                    spans: 0,
                    queues: 0,
                    util: 0.0,
                    idle_us: 0.0,
                });
                devices.len() - 1
            }
        };
        if ev.dur_us > 0.0 {
            devices[i].busy_us += ev.dur_us;
            devices[i].spans += 1;
        }
        if !dev_queues.contains(&(dev, q)) {
            dev_queues.push((dev, q));
            devices[i].queues += 1;
        }
    }
    devices.sort_by_key(|r| r.dev);
    // Stage and Cache events carry *wall-clock* observations; the
    // makespan is a simulated-time quantity, so they are excluded.
    let makespan_us = events
        .iter()
        .filter(|e| !matches!(e.kind, EventKind::Stage { .. } | EventKind::Cache { .. }))
        .map(|e| e.ts_us + e.dur_us)
        .fold(0.0, f64::max);
    for r in &mut devices {
        if makespan_us > 0.0 {
            r.util = r.busy_us / makespan_us;
            r.idle_us = (makespan_us - r.busy_us).max(0.0);
        }
    }

    // Second pass: transfers and findings attach by report site, which only
    // matches kernels discovered above.
    let names: Vec<String> = kernels.iter().map(|r| r.name.clone()).collect();
    for ev in events {
        for (i, name) in names.iter().enumerate() {
            if !ev.matches_kernel(name) {
                continue;
            }
            match &ev.kind {
                EventKind::Transfer {
                    bytes, to_device, ..
                } => {
                    if *to_device {
                        kernels[i].h2d_count += 1;
                        kernels[i].h2d_bytes += bytes;
                    } else {
                        kernels[i].d2h_count += 1;
                        kernels[i].d2h_bytes += bytes;
                    }
                }
                EventKind::Finding { .. } => kernels[i].findings += 1,
                _ => {}
            }
        }
    }

    Summary {
        categories,
        total_us,
        kernels,
        stages,
        cache,
        devices,
        makespan_us,
        n_events: events.len(),
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "host time by category ({} events)", self.n_events)?;
        for (cat, us) in &self.categories {
            writeln!(f, "  {:<14} {:>14.3} us", cat.label(), us)?;
        }
        writeln!(f, "  {:<14} {:>14.3} us", "TOTAL", self.total_us)?;
        if !self.stages.is_empty() {
            writeln!(f)?;
            writeln!(f, "pipeline stages (wall clock)")?;
            for (stage, us, hits) in &self.stages {
                let hits = if *hits > 0 {
                    format!("  ({hits} cache hits)")
                } else {
                    String::new()
                };
                writeln!(f, "  {:<20} {:>14.3} us{}", stage, us, hits)?;
            }
        }
        if !self.cache.is_empty() {
            writeln!(f)?;
            writeln!(f, "disk cache")?;
            for (stage, op, count) in &self.cache {
                writeln!(f, "  {:<20} {:<8} {:>6}", stage, op, count)?;
            }
        }
        if !self.devices.is_empty() {
            writeln!(f)?;
            writeln!(
                f,
                "  {:<8} {:>14} {:>7} {:>14} {:>8} {:>8}",
                "device", "busy us", "util", "idle us", "spans", "queues"
            )?;
            for r in &self.devices {
                writeln!(
                    f,
                    "  {:<8} {:>14.3} {:>6.1}% {:>14.3} {:>8} {:>8}",
                    format!("dev{}", r.dev),
                    r.busy_us,
                    r.util * 100.0,
                    r.idle_us,
                    r.spans,
                    r.queues,
                )?;
            }
        }
        if self.kernels.is_empty() {
            return Ok(());
        }
        writeln!(f)?;
        writeln!(
            f,
            "  {:<18} {:>8} {:>14} {:>16} {:>16} {:>10} {:>9}",
            "kernel", "launches", "exec us", "H2D", "D2H", "verify", "findings"
        )?;
        for r in &self.kernels {
            let verify = if r.verified_ok + r.verified_fail == 0 {
                "-".to_string()
            } else if r.verified_fail == 0 {
                format!("{} ok", r.verified_ok)
            } else {
                format!("{} FAIL", r.verified_fail)
            };
            writeln!(
                f,
                "  {:<18} {:>8} {:>14.3} {:>16} {:>16} {:>10} {:>9}",
                r.name,
                r.launches,
                r.exec_us,
                format!("{}x {} B", r.h2d_count, r.h2d_bytes),
                format!("{}x {} B", r.d2h_count, r.d2h_bytes),
                verify,
                r.findings,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;

    fn slice(ts: f64, dt: f64, cat: Category) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            dur_us: dt,
            track: Track::Host,
            kind: EventKind::Slice { cat },
        }
    }

    #[test]
    fn category_totals_sum_in_order() {
        let events = vec![
            slice(0.0, 1.5, Category::CpuTime),
            slice(1.5, 2.5, Category::MemTransfer),
            slice(4.0, 3.0, Category::CpuTime),
        ];
        let totals = category_totals(&events);
        let get = |c: Category| totals.iter().find(|(k, _)| *k == c).unwrap().1;
        assert_eq!(get(Category::CpuTime), 1.5 + 3.0);
        assert_eq!(get(Category::MemTransfer), 2.5);
        assert_eq!(get(Category::KernelExec), 0.0);
    }

    #[test]
    fn verify_stage_spans_aggregate_into_summary() {
        // The verified-launch pipeline's wall-clock spans surface in
        // `openarc profile --summary` through `Summary::stages`: one row
        // per label, durations summed across launches, in first-seen
        // order, never counted as cache hits.
        let span = |stage: &'static str, dur: f64| TraceEvent {
            ts_us: 0.0,
            dur_us: dur,
            track: Track::Host,
            kind: EventKind::Stage {
                stage,
                cached: false,
            },
        };
        let events = vec![
            span("verify:staging", 2.0),
            span("verify:overlap", 10.0),
            span("verify:compare", 3.0),
            span("verify:staging", 1.0),
            span("verify:overlap", 5.0),
            span("verify:compare", 4.0),
        ];
        let s = summarize(&events);
        assert_eq!(
            s.stages,
            vec![
                ("verify:staging", 3.0, 0),
                ("verify:overlap", 15.0, 0),
                ("verify:compare", 7.0, 0),
            ]
        );
        // Wall-clock spans never leak into the simulated-time totals.
        assert_eq!(s.total_us, 0.0);
        let shown = s.to_string();
        assert!(shown.contains("verify:staging"), "{shown}");
    }

    #[test]
    fn device_rows_aggregate_queue_track_spans() {
        let span = |dev: u32, id: i64, ts: f64, dur: f64| TraceEvent {
            ts_us: ts,
            dur_us: dur,
            track: Track::Queue { dev, id },
            kind: EventKind::KernelComplete { kernel: "k".into() },
        };
        let events = vec![
            span(1, 1, 0.0, 4.0),
            span(0, 1, 0.0, 2.0),
            span(0, 2, 2.0, 3.0),
            span(0, 1, 5.0, 1.0),
        ];
        let s = summarize(&events);
        // Makespan = latest span end = 6 µs.
        assert_eq!(s.makespan_us, 6.0);
        assert_eq!(
            s.devices,
            vec![
                DeviceRow {
                    dev: 0,
                    busy_us: 6.0,
                    spans: 3,
                    queues: 2,
                    util: 1.0,
                    idle_us: 0.0,
                },
                DeviceRow {
                    dev: 1,
                    busy_us: 4.0,
                    spans: 1,
                    queues: 1,
                    util: 4.0 / 6.0,
                    idle_us: 2.0,
                },
            ]
        );
        let shown = s.to_string();
        assert!(shown.contains("dev0"), "{shown}");
        assert!(shown.contains("dev1"), "{shown}");
        assert!(shown.contains("util"), "{shown}");
        assert!(shown.contains("idle us"), "{shown}");
    }

    #[test]
    fn kernels_aggregate_launches_exec_and_verdicts() {
        let mk = |kind| TraceEvent {
            ts_us: 0.0,
            dur_us: 0.0,
            track: Track::Host,
            kind,
        };
        let events = vec![
            mk(EventKind::KernelLaunch {
                kernel: "k0".into(),
                n_threads: 32,
                queue: None,
                dev: 0,
            }),
            TraceEvent {
                ts_us: 0.0,
                dur_us: 7.0,
                track: Track::queue0(1),
                kind: EventKind::KernelComplete {
                    kernel: "k0".into(),
                },
            },
            mk(EventKind::Verification {
                kernel: "k0".into(),
                passed: true,
                compared_elems: 32,
                mismatched_elems: 0,
                max_abs_err: 1e-9,
            }),
            mk(EventKind::Transfer {
                var: "a".into(),
                site: "k0".into(),
                bytes: 256,
                to_device: true,
            }),
            mk(EventKind::Finding {
                severity: "warning",
                kind: "Redundant".into(),
                var: "a".into(),
                site: "k0_in".into(),
                message: "m".into(),
            }),
        ];
        let s = summarize(&events);
        assert_eq!(s.kernels.len(), 1);
        let r = &s.kernels[0];
        assert_eq!(r.launches, 1);
        assert_eq!(r.exec_us, 7.0);
        assert_eq!(r.verified_ok, 1);
        assert_eq!(r.h2d_count, 1);
        assert_eq!(r.h2d_bytes, 256);
        assert_eq!(r.findings, 1);
        let shown = s.to_string();
        assert!(shown.contains("k0"), "{shown}");
        assert!(shown.contains("TOTAL"), "{shown}");
    }
}
