//! Human-readable event timelines — the evidence behind a report finding.
//!
//! `explain_var` filters the journal down to one variable's story:
//! allocations, present-table activity, coherence transitions, transfers
//! and findings, in timestamp order. The interactive session uses this to
//! answer "why was this transfer flagged redundant": the timeline shows a
//! D2H/H2D pair with no intervening coherence change on the source side.

use crate::event::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// Render the timeline of every event mentioning `var`, one line per
/// event: `[timestamp] description`. Returns `None` when the journal has
/// nothing about the variable.
pub fn explain_var(events: &[TraceEvent], var: &str) -> Option<String> {
    let mut lines: Vec<(f64, String)> = Vec::new();
    for ev in events {
        if !ev.mentions_var(var) {
            continue;
        }
        let desc = match &ev.kind {
            EventKind::DevAlloc { bytes, .. } => {
                format!("device alloc ({bytes} B)")
            }
            EventKind::DevFree { .. } => "device free".to_string(),
            EventKind::PresentHit { .. } => "present-table hit (no new mapping)".to_string(),
            EventKind::PresentMiss { .. } => "present-table miss (mapping created)".to_string(),
            EventKind::Transfer {
                site,
                bytes,
                to_device,
                ..
            } => format!(
                "{} {bytes} B at site `{site}`",
                if *to_device {
                    "H2D transfer"
                } else {
                    "D2H transfer"
                }
            ),
            EventKind::Coherence {
                side,
                from,
                to,
                cause,
                ..
            } => {
                format!("{side} copy {from} -> {to} (cause: {cause})")
            }
            EventKind::Finding {
                severity,
                kind,
                site,
                message,
                ..
            } => {
                format!("{severity}: {kind} at `{site}` — {message}")
            }
            _ => continue,
        };
        lines.push((ev.ts_us, desc));
    }
    if lines.is_empty() {
        return None;
    }
    lines.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = format!("timeline for `{var}` ({} events):\n", lines.len());
    for (ts, desc) in lines {
        let _ = writeln!(out, "  [{ts:>12.3} us] {desc}");
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;

    fn at(ts: f64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            dur_us: 0.0,
            track: Track::Host,
            kind,
        }
    }

    #[test]
    fn timeline_filters_and_sorts() {
        let events = vec![
            at(
                5.0,
                EventKind::Transfer {
                    var: "a".into(),
                    site: "u1".into(),
                    bytes: 8,
                    to_device: true,
                },
            ),
            at(
                1.0,
                EventKind::DevAlloc {
                    var: "a".into(),
                    bytes: 64,
                },
            ),
            at(
                2.0,
                EventKind::DevAlloc {
                    var: "b".into(),
                    bytes: 128,
                },
            ),
            at(
                6.0,
                EventKind::Finding {
                    severity: "warning",
                    kind: "Redundant".into(),
                    var: "a".into(),
                    site: "u1".into(),
                    message: "already up to date".into(),
                },
            ),
        ];
        let text = explain_var(&events, "a").unwrap();
        let alloc_pos = text.find("device alloc").unwrap();
        let h2d_pos = text.find("H2D transfer").unwrap();
        let finding_pos = text.find("Redundant").unwrap();
        assert!(alloc_pos < h2d_pos && h2d_pos < finding_pos, "{text}");
        assert!(!text.contains("128"), "other vars excluded: {text}");
        assert!(explain_var(&events, "zzz").is_none());
    }
}
