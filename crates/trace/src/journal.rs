//! The journal collector: a cheaply-cloneable handle every layer of the
//! stack can emit into.
//!
//! A disabled journal (the default) is a `None` — emitting through it is a
//! single branch, so instrumented code paths cost nothing measurable when
//! tracing is off. An enabled journal shares one append-only event vector
//! behind a mutex; clones share the same buffer, which is what lets the
//! clock (inside `gpusim`), the machine (inside `runtime`) and the
//! executor (inside `core`) all write one interleaved timeline.

use crate::event::TraceEvent;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Inner {
    /// Maximum retained events; `0` = unbounded.
    cap: usize,
    /// Events discarded once `cap` was reached.
    dropped: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
}

/// A shareable event collector. `Default` is the disabled journal.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Option<Arc<Inner>>,
}

impl Journal {
    /// A disabled journal: every emit is a no-op.
    pub fn disabled() -> Journal {
        Journal { inner: None }
    }

    /// An enabled, unbounded journal.
    pub fn enabled() -> Journal {
        Journal::with_capacity(0)
    }

    /// An enabled journal retaining at most `cap` events (`0` =
    /// unbounded). Events past the cap are counted in [`Journal::dropped`]
    /// instead of stored, bounding memory on very long runs.
    pub fn with_capacity(cap: usize) -> Journal {
        Journal {
            inner: Some(Arc::new(Inner {
                cap,
                dropped: AtomicU64::new(0),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event. No-op (one branch) when disabled.
    pub fn emit(&self, ev: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        let mut events = inner.events.lock().expect("journal poisoned");
        if inner.cap != 0 && events.len() >= inner.cap {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("journal poisoned").len(),
            None => 0,
        }
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the capacity bound was hit.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Copy of every retained event, in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("journal poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Append a batch of events preserving their order, respecting the
    /// capacity bound. Used by parallel drivers folding per-worker journals
    /// into one stream. No-op when disabled.
    pub fn extend(&self, evs: Vec<TraceEvent>) {
        let Some(inner) = &self.inner else { return };
        let mut events = inner.events.lock().expect("journal poisoned");
        for ev in evs {
            if inner.cap != 0 && events.len() >= inner.cap {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            events.push(ev);
        }
    }
}

/// Merge per-task event buffers deterministically: parts are concatenated
/// in **task order** (the order of `parts`), never in completion order, so
/// the merged stream is byte-identical no matter how scheduler workers
/// interleaved. Each part is already internally ordered (each task owns a
/// private journal), which makes concatenation the correct merge.
pub fn merge_parts(parts: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, EventKind, Track};

    fn slice(ts: f64, dt: f64, cat: Category) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            dur_us: dt,
            track: Track::Host,
            kind: EventKind::Slice { cat },
        }
    }

    #[test]
    fn disabled_journal_collects_nothing() {
        let j = Journal::disabled();
        j.emit(slice(0.0, 1.0, Category::CpuTime));
        assert!(!j.is_enabled());
        assert!(j.is_empty());
        assert_eq!(j.snapshot(), vec![]);
    }

    #[test]
    fn clones_share_one_buffer() {
        let j = Journal::enabled();
        let j2 = j.clone();
        j.emit(slice(0.0, 1.0, Category::CpuTime));
        j2.emit(slice(1.0, 2.0, Category::MemTransfer));
        assert_eq!(j.len(), 2);
        assert_eq!(j2.len(), 2);
        assert_eq!(j.snapshot()[1].ts_us, 1.0);
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let j = Journal::with_capacity(2);
        for i in 0..5 {
            j.emit(slice(i as f64, 1.0, Category::CpuTime));
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Journal::default().is_enabled());
    }

    #[test]
    fn extend_respects_capacity() {
        let j = Journal::with_capacity(3);
        j.emit(slice(0.0, 1.0, Category::CpuTime));
        j.extend(vec![
            slice(1.0, 1.0, Category::MemTransfer),
            slice(2.0, 1.0, Category::MemTransfer),
            slice(3.0, 1.0, Category::MemTransfer),
        ]);
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn merge_parts_preserves_part_order() {
        let a = vec![slice(5.0, 1.0, Category::CpuTime)];
        let b = vec![
            slice(0.0, 1.0, Category::MemTransfer),
            slice(1.0, 1.0, Category::CpuTime),
        ];
        // Part order wins, even though b's timestamps precede a's.
        let merged = merge_parts(vec![a.clone(), b.clone()]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0], a[0]);
        assert_eq!(merged[1], b[0]);
        assert_eq!(merged[2], b[1]);
    }
}
