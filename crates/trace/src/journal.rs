//! The journal collector: a cheaply-cloneable handle every layer of the
//! stack can emit into.
//!
//! A disabled journal (the default) is a `None` — emitting through it is a
//! single branch, so instrumented code paths cost nothing measurable when
//! tracing is off. An enabled journal shares one append-only event vector
//! behind a mutex; clones share the same buffer, which is what lets the
//! clock (inside `gpusim`), the machine (inside `runtime`) and the
//! executor (inside `core`) all write one interleaved timeline.

use crate::event::TraceEvent;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Inner {
    /// Maximum retained events; `0` = unbounded.
    cap: usize,
    /// Events discarded once `cap` was reached.
    dropped: AtomicU64,
    /// Largest batch a [`JournalPart`] has flushed into this journal —
    /// used to pre-reserve part buffers so later runs against the same
    /// journal never reallocate on the emission path.
    hint: AtomicUsize,
    events: Mutex<Vec<TraceEvent>>,
}

/// A shareable event collector. `Default` is the disabled journal.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Option<Arc<Inner>>,
}

impl Journal {
    /// A disabled journal: every emit is a no-op.
    pub fn disabled() -> Journal {
        Journal { inner: None }
    }

    /// An enabled, unbounded journal.
    pub fn enabled() -> Journal {
        Journal::with_capacity(0)
    }

    /// An enabled journal retaining at most `cap` events (`0` =
    /// unbounded). Events past the cap are counted in [`Journal::dropped`]
    /// instead of stored, bounding memory on very long runs.
    pub fn with_capacity(cap: usize) -> Journal {
        Journal {
            inner: Some(Arc::new(Inner {
                cap,
                dropped: AtomicU64::new(0),
                hint: AtomicUsize::new(0),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event. No-op (one branch) when disabled.
    pub fn emit(&self, ev: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        let mut events = inner.events.lock().expect("journal poisoned");
        if inner.cap != 0 && events.len() >= inner.cap {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("journal poisoned").len(),
            None => 0,
        }
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the capacity bound was hit.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Copy of every retained event, in emission order. Clones the whole
    /// buffer — when the caller owns the journal and is done with it,
    /// prefer [`Journal::drain`]; for displays that only need the end of
    /// the stream, prefer [`Journal::tail`].
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("journal poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Take every retained event out of the journal, leaving it empty (the
    /// dropped count is kept). This moves the buffer instead of cloning it,
    /// which is the right call for per-cell capture journals that are read
    /// exactly once.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.events.lock().expect("journal poisoned")),
            None => Vec::new(),
        }
    }

    /// Clone of only the last `n` events, in emission order — for tail
    /// displays that should not pay for a full-stream copy.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => {
                let events = inner.events.lock().expect("journal poisoned");
                events[events.len().saturating_sub(n)..].to_vec()
            }
            None => Vec::new(),
        }
    }

    /// Pre-reservation hint for part buffers: the largest batch ever
    /// flushed into this journal (0 until a part has flushed).
    fn size_hint(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.hint.load(Ordering::Relaxed),
            None => 0,
        }
    }

    fn note_hint(&self, n: usize) {
        if let Some(inner) = &self.inner {
            inner.hint.fetch_max(n, Ordering::Relaxed);
        }
    }

    /// Append a batch of events preserving their order, respecting the
    /// capacity bound. Used by parallel drivers folding per-worker journals
    /// into one stream. No-op when disabled.
    pub fn extend(&self, evs: Vec<TraceEvent>) {
        let Some(inner) = &self.inner else { return };
        let mut events = inner.events.lock().expect("journal poisoned");
        for ev in evs {
            if inner.cap != 0 && events.len() >= inner.cap {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            events.push(ev);
        }
    }
}

/// A single-writer batch buffer in front of a shared [`Journal`].
///
/// [`Journal::emit`] takes the shared buffer's mutex once per event; a
/// journaled benchmark sweep makes tens of thousands of those round-trips.
/// A `JournalPart` removes them: `emit` is one branch plus a `Vec` push
/// into a thread-private buffer, and [`JournalPart::flush`] hands the whole
/// batch to [`Journal::extend`] — one lock acquisition per run instead of
/// one per event. The machine's layers (clock, runtime, executor) all emit
/// from the single driving thread, so a part is single-writer by
/// construction; parallel sweep workers each own their part, and the
/// deterministic global order is restored by [`merge_parts`].
///
/// The capacity bound and drop accounting of the shared journal are
/// applied at flush time by [`Journal::extend`]. Unflushed events are
/// flushed on drop, so nothing is lost if a caller forgets; an explicit
/// flush after the run keeps the shared journal's contents deterministic.
/// Part buffers pre-reserve to the largest batch previously flushed into
/// the same journal, so repeat runs never reallocate on the emission path.
#[derive(Debug, Default)]
pub struct JournalPart {
    shared: Journal,
    buf: Vec<TraceEvent>,
}

impl JournalPart {
    /// A part writing into `shared`. Disabled journals produce a disabled
    /// part: emits stay a single branch.
    pub fn new(shared: Journal) -> JournalPart {
        let buf = if shared.is_enabled() {
            Vec::with_capacity(shared.size_hint())
        } else {
            Vec::new()
        };
        JournalPart { shared, buf }
    }

    /// Whether emits are collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_enabled()
    }

    /// Record one event into the private buffer. No lock; no-op (one
    /// branch) when the shared journal is disabled.
    #[inline]
    pub fn emit(&mut self, ev: TraceEvent) {
        if self.shared.is_enabled() {
            self.buf.push(ev);
        }
    }

    /// Events buffered but not yet flushed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The shared journal this part flushes into.
    pub fn shared(&self) -> &Journal {
        &self.shared
    }

    /// Push every buffered event into the shared journal in emission
    /// order. Idempotent: a second flush with nothing new buffered is a
    /// no-op.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.shared.note_hint(self.buf.len());
            self.shared.extend(std::mem::take(&mut self.buf));
        }
    }
}

impl Clone for JournalPart {
    /// Clones share the journal; buffered-but-unflushed events are copied
    /// into the clone so a cloned machine replays its own pending tail.
    fn clone(&self) -> JournalPart {
        JournalPart {
            shared: self.shared.clone(),
            buf: self.buf.clone(),
        }
    }
}

impl Drop for JournalPart {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Merge per-task event buffers deterministically: parts are concatenated
/// in **task order** (the order of `parts`), never in completion order, so
/// the merged stream is byte-identical no matter how scheduler workers
/// interleaved. Each part is already internally ordered (each task owns a
/// private journal), which makes concatenation the correct merge.
pub fn merge_parts(parts: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, EventKind, Track};

    fn slice(ts: f64, dt: f64, cat: Category) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            dur_us: dt,
            track: Track::Host,
            kind: EventKind::Slice { cat },
        }
    }

    #[test]
    fn disabled_journal_collects_nothing() {
        let j = Journal::disabled();
        j.emit(slice(0.0, 1.0, Category::CpuTime));
        assert!(!j.is_enabled());
        assert!(j.is_empty());
        assert_eq!(j.snapshot(), vec![]);
    }

    #[test]
    fn clones_share_one_buffer() {
        let j = Journal::enabled();
        let j2 = j.clone();
        j.emit(slice(0.0, 1.0, Category::CpuTime));
        j2.emit(slice(1.0, 2.0, Category::MemTransfer));
        assert_eq!(j.len(), 2);
        assert_eq!(j2.len(), 2);
        assert_eq!(j.snapshot()[1].ts_us, 1.0);
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let j = Journal::with_capacity(2);
        for i in 0..5 {
            j.emit(slice(i as f64, 1.0, Category::CpuTime));
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Journal::default().is_enabled());
    }

    #[test]
    fn extend_respects_capacity() {
        let j = Journal::with_capacity(3);
        j.emit(slice(0.0, 1.0, Category::CpuTime));
        j.extend(vec![
            slice(1.0, 1.0, Category::MemTransfer),
            slice(2.0, 1.0, Category::MemTransfer),
            slice(3.0, 1.0, Category::MemTransfer),
        ]);
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn drain_moves_events_out() {
        let j = Journal::enabled();
        j.emit(slice(0.0, 1.0, Category::CpuTime));
        j.emit(slice(1.0, 2.0, Category::MemTransfer));
        let evs = j.drain();
        assert_eq!(evs.len(), 2);
        assert!(j.is_empty(), "drain leaves the journal empty");
        assert_eq!(Journal::disabled().drain(), vec![]);
    }

    #[test]
    fn tail_returns_only_the_end() {
        let j = Journal::enabled();
        for i in 0..5 {
            j.emit(slice(i as f64, 1.0, Category::CpuTime));
        }
        let t = j.tail(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].ts_us, 3.0);
        assert_eq!(j.tail(100).len(), 5, "oversized tail clamps");
        assert_eq!(j.len(), 5, "tail does not consume");
    }

    #[test]
    fn part_buffers_then_flushes_in_order() {
        let j = Journal::enabled();
        let mut p = JournalPart::new(j.clone());
        p.emit(slice(0.0, 1.0, Category::CpuTime));
        p.emit(slice(1.0, 2.0, Category::MemTransfer));
        assert_eq!(j.len(), 0, "events stay buffered until flush");
        assert_eq!(p.buffered(), 2);
        p.flush();
        assert_eq!(p.buffered(), 0);
        let evs = j.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].ts_us, 0.0);
        assert_eq!(evs[1].ts_us, 1.0);
    }

    #[test]
    fn part_flushes_on_drop() {
        let j = Journal::enabled();
        {
            let mut p = JournalPart::new(j.clone());
            p.emit(slice(0.0, 1.0, Category::CpuTime));
        }
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn disabled_part_is_a_noop() {
        let mut p = JournalPart::new(Journal::disabled());
        p.emit(slice(0.0, 1.0, Category::CpuTime));
        assert!(!p.is_enabled());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn part_flush_respects_shared_capacity() {
        let j = Journal::with_capacity(2);
        let mut p = JournalPart::new(j.clone());
        for i in 0..5 {
            p.emit(slice(i as f64, 1.0, Category::CpuTime));
        }
        p.flush();
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
    }

    #[test]
    fn flushed_batches_seed_the_size_hint() {
        let j = Journal::enabled();
        let mut p = JournalPart::new(j.clone());
        for i in 0..64 {
            p.emit(slice(i as f64, 1.0, Category::CpuTime));
        }
        p.flush();
        let p2 = JournalPart::new(j.clone());
        assert!(p2.buf.capacity() >= 64, "later parts pre-reserve");
    }

    #[test]
    fn merge_parts_preserves_part_order() {
        let a = vec![slice(5.0, 1.0, Category::CpuTime)];
        let b = vec![
            slice(0.0, 1.0, Category::MemTransfer),
            slice(1.0, 1.0, Category::CpuTime),
        ];
        // Part order wins, even though b's timestamps precede a's.
        let merged = merge_parts(vec![a.clone(), b.clone()]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0], a[0]);
        assert_eq!(merged[1], b[0]);
        assert_eq!(merged[2], b[1]);
    }
}
