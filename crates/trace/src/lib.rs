//! # openarc-trace — the execution event journal
//!
//! Structured observability for the simulated OpenACC stack. Every layer
//! emits typed [`TraceEvent`]s into a shared [`Journal`]:
//!
//! * **gpusim** — the simulated clock emits a [`EventKind::Slice`] for every
//!   host-time charge, plus kernel-execution and transfer spans on their
//!   async-queue tracks;
//! * **runtime** — the machine emits present-table hits/misses, device
//!   alloc/free, H2D/D2H transfers, coherence transitions
//!   (`notstale`/`maystale`/`stale`, the paper's §III-B states) and
//!   transfer-report findings;
//! * **core** — the executor emits per-launch kernel-verification verdicts
//!   (§III-A) with error margins.
//!
//! ## Event schema
//!
//! A [`TraceEvent`] is `{ts_us, dur_us, track, kind}`: a simulated-µs start
//! timestamp, a duration (`0` = instant), the timeline it belongs to
//! ([`Track::Host`] or [`Track::Queue`]) and a typed payload
//! ([`EventKind`]). See the [`event`] module for the full taxonomy.
//!
//! ## Reconciliation guarantee
//!
//! Slices are emitted by the clock at the instant time is charged, so
//! [`summary::category_totals`] performs the same `f64` additions in the
//! same order as the clock's `TimeBreakdown` — summaries reconcile with
//! Figure-3 accounting **exactly**, not approximately. A disabled journal
//! (the [`Journal::default`]) costs one branch per emission site.
//!
//! ## Exports
//!
//! [`chrome::chrome_trace`] renders the journal as Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` / Perfetto); [`summary::summarize`]
//! digests it into per-category totals and per-kernel rows;
//! [`explain::explain_var`] renders one variable's timeline — the evidence
//! behind "why was this transfer flagged redundant".

#![warn(missing_docs)]

pub mod bin;
pub mod chrome;
pub mod codec;
pub mod coverage;
pub mod event;
pub mod explain;
pub mod journal;
pub mod json;
pub mod summary;

pub use chrome::chrome_trace;
pub use coverage::{signature_of, Signature};
pub use event::{Category, EventKind, TraceEvent, Track};
pub use explain::explain_var;
pub use journal::{merge_parts, Journal, JournalPart};
pub use summary::{category_totals, summarize, KernelRow, Summary};
