//! A minimal JSON value and writer — the workspace builds offline with no
//! external crates, so the trace exporter and the experiment binaries
//! render JSON through this module instead of `serde_json`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number (`NaN`/`±∞` render as `null`).
    F64(f64),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad1);
                    v.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad1);
                    out.push_str(&format!("{}: ", quoted(k)));
                    v.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::F64(v) if v.is_finite() => write!(f, "{v}"),
            Json::F64(_) => f.write_str("null"),
            Json::I64(v) => write!(f, "{v}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::Str(s) => f.write_str(&quoted(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", quoted(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// JSON-escape and quote a string.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(quoted("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quoted("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn compact_rendering() {
        let v = Json::obj(vec![
            ("a", Json::from(1i64)),
            ("b", Json::Arr(vec![Json::from(true), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Json::obj(vec![("xs", Json::Arr(vec![Json::from(1i64)]))]);
        assert_eq!(v.pretty(), "{\n  \"xs\": [\n    1\n  ]\n}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).to_string(), "{}");
    }
}
