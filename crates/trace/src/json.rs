//! A minimal JSON value, writer and parser — the workspace builds offline
//! with no external crates, so the trace exporter, the experiment binaries
//! and the on-disk artifact cache render and read JSON through this module
//! instead of `serde_json`.

use std::fmt;

/// Maximum container nesting accepted by [`Json::parse`]. Keeps adversarial
/// or corrupted inputs (`[[[[…`) from overflowing the stack — the parser
/// returns an error instead.
const MAX_DEPTH: usize = 512;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number (`NaN`/`±∞` render as `null`).
    F64(f64),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document. Never panics: malformed input — truncation,
    /// garbage bytes, absurd nesting — comes back as `Err` with a byte
    /// offset, which is what lets the artifact cache treat corruption as a
    /// recoverable miss.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match). `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`. Accepts any number variant: the
    /// writer prints `2.0f64` as `2`, so a round-trip may come back as an
    /// integer variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::I64(v) => Some(*v as f64),
            Json::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Numeric payload as `i64` (accepts in-range `U64` too).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Numeric payload as `u64` (accepts non-negative `I64` too).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad1);
                    v.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad1);
                    out.push_str(&format!("{}: ", quoted(k)));
                    v.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::F64(v) if v.is_finite() => write!(f, "{v}"),
            Json::F64(_) => f.write_str("null"),
            Json::I64(v) => write!(f, "{v}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::Str(s) => f.write_str(&quoted(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", quoted(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// JSON-escape and quote a string.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursive-descent parser over raw bytes. Positions index into the
/// original UTF-8 text, so error offsets are byte offsets.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
            None => Err(format!("unexpected end of input at offset {}", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it came in as &str) and we only
                // stopped on ASCII delimiters, so this slice is valid too.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf-8 in string at offset {start}"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at offset {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect "\uXXXX" low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(format!(
                                        "lone high surrogate at offset {}",
                                        self.pos
                                    ));
                                }
                                self.pos += 1;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!(
                                        "invalid low surrogate at offset {}",
                                        self.pos
                                    ));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape at offset {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at offset {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.pos))
                }
                _ => return Err(format!("unterminated string at offset {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| format!("truncated \\u escape at offset {}", self.pos))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| format!("non-hex digit in \\u escape at offset {}", self.pos))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at offset {start}"))?;
        if !float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(quoted("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quoted("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn compact_rendering() {
        let v = Json::obj(vec![
            ("a", Json::from(1i64)),
            ("b", Json::Arr(vec![Json::from(true), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Json::obj(vec![("xs", Json::Arr(vec![Json::from(1i64)]))]);
        assert_eq!(v.pretty(), "{\n  \"xs\": [\n    1\n  ]\n}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).to_string(), "{}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj(vec![
            ("s", Json::from("a\"b\\c\nd\u{1}é")),
            ("i", Json::from(-42i64)),
            ("u", Json::from(u64::MAX)),
            ("f", Json::from(1.5f64)),
            ("b", Json::from(true)),
            ("n", Json::Null),
            ("a", Json::Arr(vec![Json::from(1u64), Json::Obj(vec![])])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(Json::parse("7").unwrap(), Json::U64(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("7.5").unwrap(), Json::F64(7.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
        // Display of any finite f64 round-trips exactly through parse.
        let v = 0.1f64 + 0.2f64;
        match Json::parse(&Json::F64(v).to_string()).unwrap() {
            Json::F64(back) => assert_eq!(back.to_bits(), v.to_bits()),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::from("Aé"));
        // Raw UTF-8 passes through; surrogate-pair escapes decode.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::from("\u{1F600}"));
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::from("\u{1F600}")
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parse_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "[1] trailing",
            "{\"a\" 1}",
            "nul\u{0}",
            "\u{7f}\u{3}binary",
            "--3",
            "1e",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_coerce_number_variants() {
        let v = Json::parse(r#"{"x":2,"y":-2,"z":2.5}"#).unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("x").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("y").unwrap().as_u64(), None);
        assert_eq!(v.get("y").unwrap().as_i64(), Some(-2));
        assert_eq!(v.get("z").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("missing"), None);
        assert!(v.as_obj().is_some());
        assert!(v.as_arr().is_none());
    }
}
