//! Faithful [`TraceEvent`] ↔ [`Json`] codec for the on-disk artifact cache.
//!
//! The cache stores journal-replay `Run` artifacts, whose recorded event
//! streams must survive a disk round-trip **byte-identically**: the staged
//! pipeline replays cached events into fresh journals and the benchmark
//! determinism gate compares those streams with `==` down to `f64` bits.
//! Floating-point fields are therefore encoded as their IEEE-754 bit
//! patterns (`u64`), never as decimal text — `NaN`, infinities and `-0.0`
//! all round-trip exactly.
//!
//! `&'static str` fields ([`EventKind::Coherence`] sides/states/causes,
//! finding severities, pipeline-stage labels) are interned on decode
//! against the closed sets the stack actually emits; an unknown label is a
//! decode error, which the cache treats as corruption and recomputes.

use crate::event::{Category, EventKind, TraceEvent, Track};
use crate::json::Json;

/// Coherence sides emitted by the runtime. Shared with [`crate::bin`],
/// whose u8 side codes index into this table (normative order — see
/// `docs/FORMAT.md`). `"gpu"` is the primary device; `"gpuN"` names
/// device N of a multi-device run (the simulator caps device counts at
/// 8, so the table is closed).
pub const SIDES: &[&str] = &[
    "cpu", "gpu", "gpu1", "gpu2", "gpu3", "gpu4", "gpu5", "gpu6", "gpu7",
];
/// Coherence states (the paper's three-state protocol). Binary codes
/// index into this table.
pub const STATES: &[&str] = &["notstale", "maystale", "stale"];
/// Coherence transition causes. Binary codes index into this table.
pub const CAUSES: &[&str] = &["write", "transfer", "reset", "dealloc"];
/// Finding severities (`IssueKind::severity`). Binary codes index into
/// this table.
pub const SEVERITIES: &[&str] = &["info", "warning", "error"];
/// Pipeline stage labels (`pipeline::Stage::label`). Binary codes index
/// into this table.
pub const STAGES: &[&str] = &[
    "frontend",
    "directives",
    "analysis",
    "instrument",
    "plan",
    "execute",
    "verify",
    // Verified-launch pipeline phases (core::exec stage journal).
    "verify:staging",
    "verify:overlap",
    "verify:compare",
];
/// Disk-cache operations. Binary codes index into this table.
pub const CACHE_OPS: &[&str] = &["hit", "miss", "store", "evict", "corrupt"];

/// Intern a decoded label against one of the closed sets above,
/// recovering the `&'static str` the stack originally emitted. An
/// unknown label is a decode error (the cache treats it as corruption).
pub fn intern(s: &str, known: &'static [&'static str], what: &str) -> Result<&'static str, String> {
    known
        .iter()
        .find(|k| **k == s)
        .copied()
        .ok_or_else(|| format!("unknown {what} label {s:?}"))
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field {key:?}"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing bool field {key:?}"))
}

/// Encode an `f64` as its exact bit pattern.
pub fn f64_to_json(v: f64) -> Json {
    Json::U64(v.to_bits())
}

/// Decode an `f64` stored via [`f64_to_json`].
pub fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    Ok(f64::from_bits(u64_field(v, key)?))
}

/// Encode one event. See the module docs for the representation contract.
pub fn event_to_json(ev: &TraceEvent) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![
        ("ts", f64_to_json(ev.ts_us)),
        ("dur", f64_to_json(ev.dur_us)),
    ];
    if let Track::Queue { dev, id } = ev.track {
        pairs.push(("q", Json::I64(id)));
        // Device 0 is implicit so primary-device journals encode exactly
        // as they did before queues grew a device dimension.
        if dev != 0 {
            pairs.push(("qdev", Json::from(u64::from(dev))));
        }
    }
    let (tag, mut fields): (&str, Vec<(&str, Json)>) = match &ev.kind {
        EventKind::Slice { cat } => ("slice", vec![("cat", Json::from(cat.label()))]),
        EventKind::KernelLaunch {
            kernel,
            n_threads,
            queue,
            dev,
        } => {
            let mut fields = vec![
                ("kernel", Json::from(kernel.as_str())),
                ("n_threads", Json::from(*n_threads)),
                ("queue", queue.map(Json::I64).unwrap_or(Json::Null)),
            ];
            if *dev != 0 {
                fields.push(("dev", Json::from(u64::from(*dev))));
            }
            ("launch", fields)
        }
        EventKind::KernelComplete { kernel } => {
            ("complete", vec![("kernel", Json::from(kernel.as_str()))])
        }
        EventKind::DevAlloc { var, bytes } => (
            "alloc",
            vec![
                ("var", Json::from(var.as_str())),
                ("bytes", Json::from(*bytes)),
            ],
        ),
        EventKind::DevFree { var } => ("free", vec![("var", Json::from(var.as_str()))]),
        EventKind::Transfer {
            var,
            site,
            bytes,
            to_device,
        } => (
            "transfer",
            vec![
                ("var", Json::from(var.as_str())),
                ("site", Json::from(site.as_str())),
                ("bytes", Json::from(*bytes)),
                ("to_device", Json::from(*to_device)),
            ],
        ),
        EventKind::PresentHit { var } => ("present_hit", vec![("var", Json::from(var.as_str()))]),
        EventKind::PresentMiss { var } => ("present_miss", vec![("var", Json::from(var.as_str()))]),
        EventKind::Coherence {
            var,
            side,
            from,
            to,
            cause,
        } => (
            "coherence",
            vec![
                ("var", Json::from(var.as_str())),
                ("side", Json::from(*side)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("cause", Json::from(*cause)),
            ],
        ),
        EventKind::Finding {
            severity,
            kind,
            var,
            site,
            message,
        } => (
            "finding",
            vec![
                ("severity", Json::from(*severity)),
                ("kind", Json::from(kind.as_str())),
                ("var", Json::from(var.as_str())),
                ("site", Json::from(site.as_str())),
                ("message", Json::from(message.as_str())),
            ],
        ),
        EventKind::Verification {
            kernel,
            passed,
            compared_elems,
            mismatched_elems,
            max_abs_err,
        } => (
            "verification",
            vec![
                ("kernel", Json::from(kernel.as_str())),
                ("passed", Json::from(*passed)),
                ("compared_elems", Json::from(*compared_elems)),
                ("mismatched_elems", Json::from(*mismatched_elems)),
                ("max_abs_err", f64_to_json(*max_abs_err)),
            ],
        ),
        EventKind::Stage { stage, cached } => (
            "stage",
            vec![
                ("stage", Json::from(*stage)),
                ("cached", Json::from(*cached)),
            ],
        ),
        EventKind::Cache { stage, op } => (
            "cache",
            vec![("stage", Json::from(*stage)), ("op", Json::from(*op))],
        ),
        EventKind::Serve { gauge, value } => (
            "serve",
            vec![
                ("gauge", Json::from(gauge.as_str())),
                ("value", f64_to_json(*value)),
            ],
        ),
    };
    pairs.push(("k", Json::from(tag)));
    pairs.append(&mut fields);
    Json::obj(pairs)
}

/// Decode one event encoded by [`event_to_json`].
pub fn event_from_json(v: &Json) -> Result<TraceEvent, String> {
    let ts_us = f64_field(v, "ts")?;
    let dur_us = f64_field(v, "dur")?;
    let track = match v.get("q") {
        Some(q) => Track::Queue {
            dev: match v.get("qdev") {
                Some(Json::Null) | None => 0,
                Some(d) => u32::try_from(
                    d.as_u64()
                        .ok_or_else(|| "queue device is not an integer".to_string())?,
                )
                .map_err(|_| "queue device out of range".to_string())?,
            },
            id: q
                .as_i64()
                .ok_or_else(|| "queue id is not an integer".to_string())?,
        },
        None => Track::Host,
    };
    let tag = str_field(v, "k")?;
    let kind = match tag {
        "slice" => {
            let label = str_field(v, "cat")?;
            let cat = Category::ALL
                .iter()
                .find(|c| c.label() == label)
                .copied()
                .ok_or_else(|| format!("unknown category {label:?}"))?;
            EventKind::Slice { cat }
        }
        "launch" => EventKind::KernelLaunch {
            kernel: str_field(v, "kernel")?.to_string(),
            n_threads: u64_field(v, "n_threads")?,
            queue: match v.get("queue") {
                Some(Json::Null) | None => None,
                Some(q) => Some(
                    q.as_i64()
                        .ok_or_else(|| "launch queue is not an integer".to_string())?,
                ),
            },
            dev: match v.get("dev") {
                Some(Json::Null) | None => 0,
                Some(d) => u32::try_from(
                    d.as_u64()
                        .ok_or_else(|| "launch device is not an integer".to_string())?,
                )
                .map_err(|_| "launch device out of range".to_string())?,
            },
        },
        "complete" => EventKind::KernelComplete {
            kernel: str_field(v, "kernel")?.to_string(),
        },
        "alloc" => EventKind::DevAlloc {
            var: str_field(v, "var")?.to_string(),
            bytes: u64_field(v, "bytes")?,
        },
        "free" => EventKind::DevFree {
            var: str_field(v, "var")?.to_string(),
        },
        "transfer" => EventKind::Transfer {
            var: str_field(v, "var")?.to_string(),
            site: str_field(v, "site")?.to_string(),
            bytes: u64_field(v, "bytes")?,
            to_device: bool_field(v, "to_device")?,
        },
        "present_hit" => EventKind::PresentHit {
            var: str_field(v, "var")?.to_string(),
        },
        "present_miss" => EventKind::PresentMiss {
            var: str_field(v, "var")?.to_string(),
        },
        "coherence" => EventKind::Coherence {
            var: str_field(v, "var")?.to_string(),
            side: intern(str_field(v, "side")?, SIDES, "side")?,
            from: intern(str_field(v, "from")?, STATES, "state")?,
            to: intern(str_field(v, "to")?, STATES, "state")?,
            cause: intern(str_field(v, "cause")?, CAUSES, "cause")?,
        },
        "finding" => EventKind::Finding {
            severity: intern(str_field(v, "severity")?, SEVERITIES, "severity")?,
            kind: str_field(v, "kind")?.to_string(),
            var: str_field(v, "var")?.to_string(),
            site: str_field(v, "site")?.to_string(),
            message: str_field(v, "message")?.to_string(),
        },
        "verification" => EventKind::Verification {
            kernel: str_field(v, "kernel")?.to_string(),
            passed: bool_field(v, "passed")?,
            compared_elems: u64_field(v, "compared_elems")?,
            mismatched_elems: u64_field(v, "mismatched_elems")?,
            max_abs_err: f64_field(v, "max_abs_err")?,
        },
        "stage" => EventKind::Stage {
            stage: intern(str_field(v, "stage")?, STAGES, "stage")?,
            cached: bool_field(v, "cached")?,
        },
        "cache" => EventKind::Cache {
            stage: intern(str_field(v, "stage")?, STAGES, "stage")?,
            op: intern(str_field(v, "op")?, CACHE_OPS, "cache op")?,
        },
        "serve" => EventKind::Serve {
            gauge: str_field(v, "gauge")?.to_string(),
            value: f64_field(v, "value")?,
        },
        other => return Err(format!("unknown event tag {other:?}")),
    };
    Ok(TraceEvent {
        ts_us,
        dur_us,
        track,
        kind,
    })
}

/// Encode a whole event stream.
pub fn events_to_json(events: &[TraceEvent]) -> Json {
    Json::Arr(events.iter().map(event_to_json).collect())
}

/// Decode a whole event stream.
pub fn events_from_json(v: &Json) -> Result<Vec<TraceEvent>, String> {
    v.as_arr()
        .ok_or_else(|| "event stream is not an array".to_string())?
        .iter()
        .map(event_from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let mk = |track, kind| TraceEvent {
            ts_us: 1.25,
            dur_us: 0.5,
            track,
            kind,
        };
        vec![
            mk(
                Track::Host,
                EventKind::Slice {
                    cat: Category::MemTransfer,
                },
            ),
            mk(
                Track::queue0(2),
                EventKind::KernelLaunch {
                    kernel: "k0".into(),
                    n_threads: 64,
                    queue: Some(2),
                    dev: 0,
                },
            ),
            mk(
                Track::queue0(2),
                EventKind::KernelComplete {
                    kernel: "k0".into(),
                },
            ),
            mk(
                Track::Queue { dev: 1, id: 2 },
                EventKind::KernelComplete {
                    kernel: "k0".into(),
                },
            ),
            mk(
                Track::Host,
                EventKind::DevAlloc {
                    var: "a".into(),
                    bytes: 512,
                },
            ),
            mk(Track::Host, EventKind::DevFree { var: "a".into() }),
            mk(
                Track::Host,
                EventKind::Transfer {
                    var: "a".into(),
                    site: "k0_in".into(),
                    bytes: 256,
                    to_device: true,
                },
            ),
            mk(Track::Host, EventKind::PresentHit { var: "a".into() }),
            mk(Track::Host, EventKind::PresentMiss { var: "b".into() }),
            mk(
                Track::Host,
                EventKind::Coherence {
                    var: "a".into(),
                    side: "gpu",
                    from: "maystale",
                    to: "notstale",
                    cause: "transfer",
                },
            ),
            mk(
                Track::Host,
                EventKind::Finding {
                    severity: "warning",
                    kind: "Redundant".into(),
                    var: "a".into(),
                    site: "k0_in".into(),
                    message: "line \"42\"\nredundant".into(),
                },
            ),
            mk(
                Track::Host,
                EventKind::Verification {
                    kernel: "k0".into(),
                    passed: false,
                    compared_elems: 64,
                    mismatched_elems: 3,
                    max_abs_err: 1e-3,
                },
            ),
            mk(
                Track::Host,
                EventKind::Stage {
                    stage: "frontend",
                    cached: true,
                },
            ),
            mk(
                Track::Host,
                EventKind::Cache {
                    stage: "execute",
                    op: "hit",
                },
            ),
            mk(
                Track::Host,
                EventKind::KernelLaunch {
                    kernel: "k1".into(),
                    n_threads: 1,
                    queue: None,
                    dev: 1,
                },
            ),
            mk(
                Track::Host,
                EventKind::Serve {
                    gauge: "queue_depth".into(),
                    value: 3.0,
                },
            ),
        ]
    }

    #[test]
    fn every_kind_round_trips_through_text() {
        let events = sample_events();
        let text = events_to_json(&events).pretty();
        let back = events_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn f64_bits_survive_exactly() {
        for v in [0.0, -0.0, f64::NAN, f64::INFINITY, 0.1 + 0.2, 1e-300] {
            let ev = TraceEvent {
                ts_us: v,
                dur_us: -v,
                track: Track::Host,
                kind: EventKind::Slice {
                    cat: Category::CpuTime,
                },
            };
            let text = event_to_json(&ev).to_string();
            let back = event_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.ts_us.to_bits(), v.to_bits());
            assert_eq!(back.dur_us.to_bits(), (-v).to_bits());
        }
    }

    #[test]
    fn unknown_labels_are_decode_errors() {
        let mut v = event_to_json(&sample_events()[9]); // coherence
        if let Json::Obj(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "cause" {
                    *val = Json::from("frobnicate");
                }
            }
        }
        assert!(event_from_json(&v).is_err());
        assert!(event_from_json(&Json::obj(vec![("k", Json::from("nope"))])).is_err());
        assert!(event_from_json(&Json::Null).is_err());
    }
}
