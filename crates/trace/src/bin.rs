//! Little-endian binary primitives and the binary [`TraceEvent`] codec.
//!
//! This module is the bottom layer of the cache's binary artifact format
//! (`docs/FORMAT.md`): a [`Writer`] that appends fixed-width
//! little-endian primitives to a growable byte buffer, and a borrowing
//! [`Reader`] that decodes them back out of a single contiguous buffer —
//! typically the result of one `fs::read` — without any intermediate
//! tree. String reads return `&str` slices **borrowed from the input
//! buffer**; callers copy into owned `String`s only for the fields that
//! end up in long-lived artifacts, which is what makes warm cache loads
//! near-zero-allocation per node compared to the JSON path.
//!
//! ## Representation contract
//!
//! * All multi-byte integers are **little-endian**, fixed width.
//! * `f64`/`f32` are stored as their IEEE-754 bit patterns
//!   ([`f64::to_bits`]) — `NaN`, infinities and `-0.0` round-trip
//!   exactly, the same guarantee the JSON codec ([`crate::codec`])
//!   provides via `u64` bit fields.
//! * `bool` is one byte, `0` or `1`; any other value is a decode error.
//! * Strings are a `u32` byte length followed by that many bytes of
//!   UTF-8; invalid UTF-8 is a decode error.
//! * `Option<T>` is a one-byte tag (`0` = `None`, `1` = `Some`) followed
//!   by the payload when present.
//! * Sequences are a `u32` element count followed by the elements. A
//!   count larger than the bytes remaining in the buffer is rejected
//!   before any allocation (every element encodes to at least one byte),
//!   so an oversized length prefix cannot drive an OOM.
//! * Closed label sets (coherence sides/states/causes, severities, stage
//!   labels, cache ops) are one-byte codes indexing the normative tables
//!   in [`crate::codec`]; an out-of-range code is a decode error.
//!
//! Every decode error is a `Result::Err(String)` carrying the byte
//! offset where decoding failed — the disk cache maps any such error to
//! "corrupt entry: delete and recompute", never a panic.

use crate::codec::{CACHE_OPS, CAUSES, SEVERITIES, SIDES, STAGES, STATES};
use crate::event::{Category, EventKind, TraceEvent, Track};

/// Appends fixed-width little-endian primitives to a byte buffer.
///
/// The writer never fails: lengths that exceed `u32::MAX` (unreachable
/// for any artifact this stack produces) panic rather than truncate,
/// because silent truncation would corrupt the store.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (8 bytes, LE).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an `f32` as its IEEE-754 bit pattern (4 bytes, LE).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a `bool` as one byte (`0` or `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a length-prefixed UTF-8 string (`u32` byte length + bytes).
    pub fn put_str(&mut self, s: &str) {
        let len = u32::try_from(s.len()).expect("string exceeds u32::MAX bytes");
        self.put_u32(len);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes with no length prefix (caller frames them).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a sequence count (`u32`). Panics if `n` exceeds `u32::MAX`.
    pub fn put_seq_len(&mut self, n: usize) {
        self.put_u32(u32::try_from(n).expect("sequence exceeds u32::MAX elements"));
    }

    /// Append an `Option<i64>` (`u8` tag + payload when `Some`).
    pub fn put_opt_i64(&mut self, v: Option<i64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_i64(x);
            }
        }
    }

    /// Overwrite the 8 bytes at `at` with `v` (LE). Used to patch
    /// section lengths after the payload is written. Panics when `at+8`
    /// exceeds the bytes written so far.
    pub fn patch_u64(&mut self, at: usize, v: u64) {
        self.buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }
}

/// A borrowing cursor over one contiguous encoded buffer.
///
/// All reads are bounds-checked; running off the end of the buffer —
/// truncation, in cache terms — yields `Err` with the failing offset,
/// never a panic. String reads borrow `&'a str` straight out of the
/// buffer: the zero-copy property the warm-load path is built on.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the cursor has consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Build a decode error tagged with the current offset.
    pub fn err(&self, msg: &str) -> String {
        format!("offset {}: {msg}", self.pos)
    }

    /// Fail unless the whole buffer was consumed — trailing bytes mean
    /// the entry does not match the format spec.
    pub fn expect_end(&self) -> Result<(), String> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(self.err(&format!("{} trailing bytes", self.remaining())))
        }
    }

    /// Take `n` raw bytes, borrowed from the buffer.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if n > self.remaining() {
            return Err(self.err(&format!("need {n} bytes, {} remain", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read an `f64` stored as its bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an `f32` stored as its bit pattern.
    pub fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read a `bool`; bytes other than `0`/`1` are decode errors.
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(&format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string, borrowed from the buffer.
    pub fn str(&mut self) -> Result<&'a str, String> {
        let len = self.u32()? as usize;
        let at = self.pos;
        let bytes = self.bytes(len)?;
        std::str::from_utf8(bytes).map_err(|e| format!("offset {at}: invalid UTF-8: {e}"))
    }

    /// Read a length-prefixed string into an owned `String`.
    pub fn string(&mut self) -> Result<String, String> {
        Ok(self.str()?.to_string())
    }

    /// Read a sequence count, rejecting counts that could not possibly
    /// fit in the remaining bytes (every element is ≥ 1 byte) so a
    /// corrupt length prefix cannot force a huge allocation.
    pub fn seq_len(&mut self) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(self.err(&format!(
                "sequence claims {n} elements but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read an `Option<i64>` written by [`Writer::put_opt_i64`].
    pub fn opt_i64(&mut self) -> Result<Option<i64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            b => Err(self.err(&format!("invalid Option tag {b:#04x}"))),
        }
    }
}

/// Encode a label from a closed set as its one-byte table index.
///
/// The tables (and their normative orders) live in [`crate::codec`];
/// encode-side labels are produced by the stack itself, so a miss here
/// is a programming error, not an input error.
pub fn label_code(label: &str, table: &'static [&'static str]) -> u8 {
    table
        .iter()
        .position(|k| *k == label)
        .unwrap_or_else(|| panic!("label {label:?} not in closed set {table:?}")) as u8
}

/// Decode a one-byte label code back to its interned `&'static str`.
pub fn code_label(
    code: u8,
    table: &'static [&'static str],
    what: &str,
) -> Result<&'static str, String> {
    table
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("invalid {what} code {code}"))
}

/// One-byte event-kind tags, in the normative order of `docs/FORMAT.md`.
mod tag {
    pub const SLICE: u8 = 0;
    pub const LAUNCH: u8 = 1;
    pub const COMPLETE: u8 = 2;
    pub const ALLOC: u8 = 3;
    pub const FREE: u8 = 4;
    pub const TRANSFER: u8 = 5;
    pub const PRESENT_HIT: u8 = 6;
    pub const PRESENT_MISS: u8 = 7;
    pub const COHERENCE: u8 = 8;
    pub const FINDING: u8 = 9;
    pub const VERIFICATION: u8 = 10;
    pub const STAGE: u8 = 11;
    pub const CACHE: u8 = 12;
    pub const SERVE: u8 = 13;
}

/// Encode one event: kind tag, timestamps as bit patterns, track, then
/// the kind's payload fields in declaration order.
pub fn write_event(w: &mut Writer, ev: &TraceEvent) {
    let t = match &ev.kind {
        EventKind::Slice { .. } => tag::SLICE,
        EventKind::KernelLaunch { .. } => tag::LAUNCH,
        EventKind::KernelComplete { .. } => tag::COMPLETE,
        EventKind::DevAlloc { .. } => tag::ALLOC,
        EventKind::DevFree { .. } => tag::FREE,
        EventKind::Transfer { .. } => tag::TRANSFER,
        EventKind::PresentHit { .. } => tag::PRESENT_HIT,
        EventKind::PresentMiss { .. } => tag::PRESENT_MISS,
        EventKind::Coherence { .. } => tag::COHERENCE,
        EventKind::Finding { .. } => tag::FINDING,
        EventKind::Verification { .. } => tag::VERIFICATION,
        EventKind::Stage { .. } => tag::STAGE,
        EventKind::Cache { .. } => tag::CACHE,
        EventKind::Serve { .. } => tag::SERVE,
    };
    w.put_u8(t);
    w.put_f64(ev.ts_us);
    w.put_f64(ev.dur_us);
    // Track: option tag over the queue id, then (present only for queue
    // tracks) the owning device id.
    w.put_opt_i64(ev.track.queue());
    if let Some(dev) = ev.track.device() {
        w.put_u32(dev);
    }
    match &ev.kind {
        EventKind::Slice { cat } => {
            w.put_u8(Category::ALL.iter().position(|c| c == cat).unwrap() as u8);
        }
        EventKind::KernelLaunch {
            kernel,
            n_threads,
            queue,
            dev,
        } => {
            w.put_str(kernel);
            w.put_u64(*n_threads);
            w.put_opt_i64(*queue);
            w.put_u32(*dev);
        }
        EventKind::KernelComplete { kernel } => w.put_str(kernel),
        EventKind::DevAlloc { var, bytes } => {
            w.put_str(var);
            w.put_u64(*bytes);
        }
        EventKind::DevFree { var } => w.put_str(var),
        EventKind::Transfer {
            var,
            site,
            bytes,
            to_device,
        } => {
            w.put_str(var);
            w.put_str(site);
            w.put_u64(*bytes);
            w.put_bool(*to_device);
        }
        EventKind::PresentHit { var } | EventKind::PresentMiss { var } => w.put_str(var),
        EventKind::Coherence {
            var,
            side,
            from,
            to,
            cause,
        } => {
            w.put_str(var);
            w.put_u8(label_code(side, SIDES));
            w.put_u8(label_code(from, STATES));
            w.put_u8(label_code(to, STATES));
            w.put_u8(label_code(cause, CAUSES));
        }
        EventKind::Finding {
            severity,
            kind,
            var,
            site,
            message,
        } => {
            w.put_u8(label_code(severity, SEVERITIES));
            w.put_str(kind);
            w.put_str(var);
            w.put_str(site);
            w.put_str(message);
        }
        EventKind::Verification {
            kernel,
            passed,
            compared_elems,
            mismatched_elems,
            max_abs_err,
        } => {
            w.put_str(kernel);
            w.put_bool(*passed);
            w.put_u64(*compared_elems);
            w.put_u64(*mismatched_elems);
            w.put_f64(*max_abs_err);
        }
        EventKind::Stage { stage, cached } => {
            w.put_u8(label_code(stage, STAGES));
            w.put_bool(*cached);
        }
        EventKind::Cache { stage, op } => {
            w.put_u8(label_code(stage, STAGES));
            w.put_u8(label_code(op, CACHE_OPS));
        }
        EventKind::Serve { gauge, value } => {
            w.put_str(gauge);
            w.put_f64(*value);
        }
    }
}

/// Decode one event written by [`write_event`].
pub fn read_event(r: &mut Reader<'_>) -> Result<TraceEvent, String> {
    let t = r.u8()?;
    let ts_us = r.f64()?;
    let dur_us = r.f64()?;
    let track = match r.opt_i64()? {
        None => Track::Host,
        Some(q) => Track::Queue {
            dev: r.u32()?,
            id: q,
        },
    };
    let kind = match t {
        tag::SLICE => {
            let c = r.u8()?;
            let cat = Category::ALL
                .get(c as usize)
                .copied()
                .ok_or_else(|| format!("invalid category code {c}"))?;
            EventKind::Slice { cat }
        }
        tag::LAUNCH => EventKind::KernelLaunch {
            kernel: r.string()?,
            n_threads: r.u64()?,
            queue: r.opt_i64()?,
            dev: r.u32()?,
        },
        tag::COMPLETE => EventKind::KernelComplete {
            kernel: r.string()?,
        },
        tag::ALLOC => EventKind::DevAlloc {
            var: r.string()?,
            bytes: r.u64()?,
        },
        tag::FREE => EventKind::DevFree { var: r.string()? },
        tag::TRANSFER => EventKind::Transfer {
            var: r.string()?,
            site: r.string()?,
            bytes: r.u64()?,
            to_device: r.bool()?,
        },
        tag::PRESENT_HIT => EventKind::PresentHit { var: r.string()? },
        tag::PRESENT_MISS => EventKind::PresentMiss { var: r.string()? },
        tag::COHERENCE => EventKind::Coherence {
            var: r.string()?,
            side: code_label(r.u8()?, SIDES, "side")?,
            from: code_label(r.u8()?, STATES, "state")?,
            to: code_label(r.u8()?, STATES, "state")?,
            cause: code_label(r.u8()?, CAUSES, "cause")?,
        },
        tag::FINDING => EventKind::Finding {
            severity: code_label(r.u8()?, SEVERITIES, "severity")?,
            kind: r.string()?,
            var: r.string()?,
            site: r.string()?,
            message: r.string()?,
        },
        tag::VERIFICATION => EventKind::Verification {
            kernel: r.string()?,
            passed: r.bool()?,
            compared_elems: r.u64()?,
            mismatched_elems: r.u64()?,
            max_abs_err: r.f64()?,
        },
        tag::STAGE => EventKind::Stage {
            stage: code_label(r.u8()?, STAGES, "stage")?,
            cached: r.bool()?,
        },
        tag::CACHE => EventKind::Cache {
            stage: code_label(r.u8()?, STAGES, "stage")?,
            op: code_label(r.u8()?, CACHE_OPS, "cache op")?,
        },
        tag::SERVE => EventKind::Serve {
            gauge: r.string()?,
            value: r.f64()?,
        },
        other => return Err(format!("unknown event tag {other}")),
    };
    Ok(TraceEvent {
        ts_us,
        dur_us,
        track,
        kind,
    })
}

/// Encode a whole event stream (`u32` count + events).
pub fn write_events(w: &mut Writer, events: &[TraceEvent]) {
    w.put_seq_len(events.len());
    for ev in events {
        write_event(w, ev);
    }
}

/// Decode an event stream written by [`write_events`].
pub fn read_events(r: &mut Reader<'_>) -> Result<Vec<TraceEvent>, String> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_event(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let mk = |track, kind| TraceEvent {
            ts_us: 1.25,
            dur_us: 0.5,
            track,
            kind,
        };
        vec![
            mk(
                Track::Host,
                EventKind::Slice {
                    cat: Category::MemTransfer,
                },
            ),
            mk(
                Track::queue0(2),
                EventKind::KernelLaunch {
                    kernel: "k0".into(),
                    n_threads: 64,
                    queue: Some(2),
                    dev: 0,
                },
            ),
            mk(
                Track::Queue { dev: 0, id: -3 },
                EventKind::KernelComplete {
                    kernel: "k0".into(),
                },
            ),
            mk(
                Track::Queue { dev: 3, id: 1 },
                EventKind::KernelComplete {
                    kernel: "k1".into(),
                },
            ),
            mk(
                Track::Host,
                EventKind::DevAlloc {
                    var: "a".into(),
                    bytes: 512,
                },
            ),
            mk(Track::Host, EventKind::DevFree { var: "a".into() }),
            mk(
                Track::Host,
                EventKind::Transfer {
                    var: "a".into(),
                    site: "k0_in".into(),
                    bytes: 256,
                    to_device: true,
                },
            ),
            mk(Track::Host, EventKind::PresentHit { var: "a".into() }),
            mk(Track::Host, EventKind::PresentMiss { var: "b".into() }),
            mk(
                Track::Host,
                EventKind::Coherence {
                    var: "a".into(),
                    side: "gpu",
                    from: "maystale",
                    to: "notstale",
                    cause: "transfer",
                },
            ),
            mk(
                Track::Host,
                EventKind::Finding {
                    severity: "warning",
                    kind: "Redundant".into(),
                    var: "a".into(),
                    site: "k0_in".into(),
                    message: "line \"42\"\nredundant — π".into(),
                },
            ),
            mk(
                Track::Host,
                EventKind::Verification {
                    kernel: "k0".into(),
                    passed: false,
                    compared_elems: 64,
                    mismatched_elems: 3,
                    max_abs_err: 1e-3,
                },
            ),
            mk(
                Track::Host,
                EventKind::Stage {
                    stage: "verify:compare",
                    cached: true,
                },
            ),
            mk(
                Track::Host,
                EventKind::Cache {
                    stage: "execute",
                    op: "hit",
                },
            ),
        ]
    }

    fn encode(events: &[TraceEvent]) -> Vec<u8> {
        let mut w = Writer::new();
        write_events(&mut w, events);
        w.into_bytes()
    }

    #[test]
    fn every_kind_round_trips_bit_identically() {
        let events = sample_events();
        let bytes = encode(&events);
        let mut r = Reader::new(&bytes);
        let back = read_events(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, events);
        // Deterministic: re-encoding yields the same bytes.
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn f64_bit_patterns_survive() {
        for v in [0.0, -0.0, f64::NAN, f64::INFINITY, 0.1 + 0.2, 1e-300] {
            let ev = TraceEvent {
                ts_us: v,
                dur_us: -v,
                track: Track::Host,
                kind: EventKind::Slice {
                    cat: Category::CpuTime,
                },
            };
            let bytes = encode(std::slice::from_ref(&ev));
            let back = read_events(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back[0].ts_us.to_bits(), v.to_bits());
            assert_eq!(back[0].dur_us.to_bits(), (-v).to_bits());
        }
    }

    #[test]
    fn truncation_at_every_byte_errors_cleanly() {
        let bytes = encode(&sample_events());
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = read_events(&mut r).and_then(|evs| r.expect_end().map(|()| evs));
            assert!(res.is_err(), "truncation at {cut} did not error");
        }
    }

    #[test]
    fn bad_tags_and_codes_are_errors() {
        // Unknown event tag.
        let mut w = Writer::new();
        w.put_seq_len(1);
        w.put_u8(200);
        w.put_f64(0.0);
        w.put_f64(0.0);
        w.put_opt_i64(None);
        let bytes = w.into_bytes();
        assert!(read_events(&mut Reader::new(&bytes)).is_err());

        // Bad bool byte inside a Transfer.
        let ev = TraceEvent {
            ts_us: 0.0,
            dur_us: 0.0,
            track: Track::Host,
            kind: EventKind::Transfer {
                var: "a".into(),
                site: "s".into(),
                bytes: 1,
                to_device: true,
            },
        };
        let mut bytes = encode(std::slice::from_ref(&ev));
        let at = bytes.len() - 1;
        bytes[at] = 7;
        assert!(read_events(&mut Reader::new(&bytes)).is_err());

        // Out-of-range label code inside a Coherence event.
        let ev = TraceEvent {
            ts_us: 0.0,
            dur_us: 0.0,
            track: Track::Host,
            kind: EventKind::Coherence {
                var: "a".into(),
                side: "cpu",
                from: "stale",
                to: "stale",
                cause: "write",
            },
        };
        let mut bytes = encode(std::slice::from_ref(&ev));
        let at = bytes.len() - 1;
        bytes[at] = 250;
        assert!(read_events(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn oversized_sequence_counts_are_rejected_before_allocating() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(read_events(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn invalid_utf8_is_a_decode_error() {
        let mut w = Writer::new();
        w.put_seq_len(1);
        w.put_u8(4); // DevFree tag
        w.put_f64(0.0);
        w.put_f64(0.0);
        w.put_opt_i64(None);
        w.put_u32(2);
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert!(read_events(&mut Reader::new(&bytes)).is_err());
    }
}
