//! Chrome `trace_event` export.
//!
//! Produces the JSON Object Format understood by `chrome://tracing`,
//! Perfetto and Speedscope: a `traceEvents` array of complete (`"X"`) and
//! instant (`"i"`) events. The mapping:
//!
//! * timestamps/durations are the simulator's microseconds, unchanged
//!   (`ts`/`dur` are specified in µs);
//! * the host timeline is `tid 0`; each `(device, queue)` pair gets its
//!   own `tid` (`1 + rank` in sorted `(device, queue)` order), named via
//!   `thread_name` metadata — `async queue N` on the primary device,
//!   `devD async queue N` on others;
//! * slices and spans become `"X"` events; everything else becomes a
//!   thread-scoped `"i"` instant;
//! * the payload (bytes, direction, coherence states, verdicts…) lands in
//!   `args`, so clicking an event in the viewer shows the evidence.

use crate::event::{EventKind, TraceEvent, Track};
use crate::json::Json;

/// The `pid` every event is tagged with.
const PID: u64 = 1;

fn tid_of(track: Track, queue_tids: &[((u32, i64), u64)]) -> u64 {
    match track.dev_queue() {
        None => 0,
        Some(key) => queue_tids
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, t)| *t)
            .unwrap_or(999),
    }
}

fn args_of(ev: &TraceEvent) -> Json {
    match &ev.kind {
        EventKind::Slice { cat } => Json::obj(vec![("category", Json::from(cat.label()))]),
        EventKind::KernelLaunch {
            kernel,
            n_threads,
            queue,
            dev,
        } => {
            let mut pairs = vec![
                ("kernel", Json::from(kernel.as_str())),
                ("n_threads", Json::from(*n_threads)),
                ("queue", queue.map(Json::I64).unwrap_or(Json::Null)),
            ];
            if *dev != 0 {
                pairs.push(("device", Json::from(u64::from(*dev))));
            }
            Json::obj(pairs)
        }
        EventKind::KernelComplete { kernel } => {
            Json::obj(vec![("kernel", Json::from(kernel.as_str()))])
        }
        EventKind::DevAlloc { var, bytes } => Json::obj(vec![
            ("var", Json::from(var.as_str())),
            ("bytes", Json::from(*bytes)),
        ]),
        EventKind::DevFree { var } => Json::obj(vec![("var", Json::from(var.as_str()))]),
        EventKind::Transfer {
            var,
            site,
            bytes,
            to_device,
        } => Json::obj(vec![
            ("var", Json::from(var.as_str())),
            ("site", Json::from(site.as_str())),
            ("bytes", Json::from(*bytes)),
            (
                "direction",
                Json::from(if *to_device { "H2D" } else { "D2H" }),
            ),
        ]),
        EventKind::PresentHit { var } | EventKind::PresentMiss { var } => {
            Json::obj(vec![("var", Json::from(var.as_str()))])
        }
        EventKind::Coherence {
            var,
            side,
            from,
            to,
            cause,
        } => Json::obj(vec![
            ("var", Json::from(var.as_str())),
            ("side", Json::from(*side)),
            ("from", Json::from(*from)),
            ("to", Json::from(*to)),
            ("cause", Json::from(*cause)),
        ]),
        EventKind::Finding {
            severity,
            kind,
            var,
            site,
            message,
        } => Json::obj(vec![
            ("severity", Json::from(*severity)),
            ("kind", Json::from(kind.as_str())),
            ("var", Json::from(var.as_str())),
            ("site", Json::from(site.as_str())),
            ("message", Json::from(message.as_str())),
        ]),
        EventKind::Verification {
            kernel,
            passed,
            compared_elems,
            mismatched_elems,
            max_abs_err,
        } => Json::obj(vec![
            ("kernel", Json::from(kernel.as_str())),
            ("passed", Json::from(*passed)),
            ("compared_elems", Json::from(*compared_elems)),
            ("mismatched_elems", Json::from(*mismatched_elems)),
            ("max_abs_err", Json::from(*max_abs_err)),
        ]),
        EventKind::Stage { stage, cached } => Json::obj(vec![
            ("stage", Json::from(*stage)),
            ("cached", Json::from(*cached)),
        ]),
        EventKind::Cache { stage, op } => {
            Json::obj(vec![("stage", Json::from(*stage)), ("op", Json::from(*op))])
        }
        EventKind::Serve { gauge, value } => Json::obj(vec![
            ("gauge", Json::from(gauge.as_str())),
            ("value", Json::from(*value)),
        ]),
    }
}

fn meta(name: &str, tid: u64, value: &str) -> Json {
    Json::obj(vec![
        ("name", Json::from(name)),
        ("ph", Json::from("M")),
        ("pid", Json::from(PID)),
        ("tid", Json::from(tid)),
        ("args", Json::obj(vec![("name", Json::from(value))])),
    ])
}

/// Render events as a Chrome `trace_event` JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    // Stable (device, queue) → tid assignment: sorted keys, starting at
    // tid 1 — so a single-device trace lays out exactly as before queues
    // grew a device dimension.
    let mut queues: Vec<(u32, i64)> = events.iter().filter_map(|e| e.track.dev_queue()).collect();
    queues.sort_unstable();
    queues.dedup();
    let queue_tids: Vec<((u32, i64), u64)> = queues
        .iter()
        .enumerate()
        .map(|(i, key)| (*key, i as u64 + 1))
        .collect();

    let mut out: Vec<Json> = Vec::with_capacity(events.len() + queue_tids.len() + 2);
    out.push(meta("process_name", 0, "openarc simulated machine"));
    out.push(meta("thread_name", 0, "host"));
    for ((dev, q), tid) in &queue_tids {
        let name = if *dev == 0 {
            format!("async queue {q}")
        } else {
            format!("dev{dev} async queue {q}")
        };
        out.push(meta("thread_name", *tid, &name));
    }
    for ev in events {
        let tid = tid_of(ev.track, &queue_tids);
        let mut pairs: Vec<(&str, Json)> = vec![
            ("name", Json::from(ev.name())),
            ("cat", Json::from(ev.chrome_category())),
        ];
        if ev.dur_us > 0.0 {
            pairs.push(("ph", Json::from("X")));
            pairs.push(("ts", Json::F64(ev.ts_us)));
            pairs.push(("dur", Json::F64(ev.dur_us)));
        } else {
            pairs.push(("ph", Json::from("i")));
            pairs.push(("ts", Json::F64(ev.ts_us)));
            pairs.push(("s", Json::from("t")));
        }
        pairs.push(("pid", Json::from(PID)));
        pairs.push(("tid", Json::from(tid)));
        pairs.push(("args", args_of(ev)));
        out.push(Json::obj(pairs));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj(vec![("generator", Json::from("openarc profile"))]),
        ),
    ])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;

    fn ev(ts: f64, dur: f64, track: Track, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            dur_us: dur,
            track,
            kind,
        }
    }

    #[test]
    fn spans_and_instants_map_to_x_and_i() {
        let events = vec![
            ev(
                0.0,
                5.0,
                Track::Host,
                EventKind::Slice {
                    cat: Category::CpuTime,
                },
            ),
            ev(
                5.0,
                0.0,
                Track::Host,
                EventKind::DevFree { var: "a".into() },
            ),
        ];
        let s = chrome_trace(&events);
        assert!(s.contains(r#""ph": "X""#), "{s}");
        assert!(s.contains(r#""ph": "i""#), "{s}");
        assert!(s.contains(r#""traceEvents""#));
        assert!(s.contains(r#""displayTimeUnit": "ms""#));
    }

    #[test]
    fn queues_get_stable_tids_and_names() {
        let events = vec![
            ev(
                0.0,
                3.0,
                Track::queue0(4),
                EventKind::KernelComplete { kernel: "k".into() },
            ),
            ev(
                0.0,
                3.0,
                Track::queue0(1),
                EventKind::KernelComplete { kernel: "k".into() },
            ),
        ];
        let s = chrome_trace(&events);
        assert!(s.contains(r#""name": "async queue 1""#), "{s}");
        assert!(s.contains(r#""name": "async queue 4""#), "{s}");
        // Queue 1 sorts first → tid 1; queue 4 → tid 2.
        let i1 = s.find("async queue 1").unwrap();
        let i4 = s.find("async queue 4").unwrap();
        assert!(i1 < i4);
    }

    #[test]
    fn each_device_queue_pair_gets_its_own_lane() {
        let events = vec![
            ev(
                0.0,
                3.0,
                Track::Queue { dev: 1, id: 1 },
                EventKind::KernelComplete { kernel: "a".into() },
            ),
            ev(
                0.0,
                3.0,
                Track::queue0(1),
                EventKind::KernelComplete { kernel: "b".into() },
            ),
        ];
        let s = chrome_trace(&events);
        // Primary-device lane keeps its legacy name; device 1 is named.
        assert!(s.contains(r#""name": "async queue 1""#), "{s}");
        assert!(s.contains(r#""name": "dev1 async queue 1""#), "{s}");
        // (0, 1) sorts before (1, 1) → tids 1 and 2.
        let i0 = s.find(r#""name": "async queue 1""#).unwrap();
        let i1 = s.find(r#""name": "dev1 async queue 1""#).unwrap();
        assert!(i0 < i1);
    }

    #[test]
    fn args_carry_payload() {
        let events = vec![ev(
            1.0,
            2.0,
            Track::Host,
            EventKind::Transfer {
                var: "b".into(),
                site: "update0".into(),
                bytes: 512,
                to_device: false,
            },
        )];
        let s = chrome_trace(&events);
        assert!(s.contains(r#""direction": "D2H""#), "{s}");
        assert!(s.contains(r#""bytes": 512"#), "{s}");
        assert!(s.contains(r#""site": "update0""#), "{s}");
    }
}
