//! Semantic analysis: name resolution and type checking.
//!
//! Produces a [`Sema`] table mapping every expression to its type and every
//! variable to its declaration type. The rest of the pipeline (OpenACC
//! validation, dataflow, bytecode compilation, the translator) relies on
//! these tables instead of re-deriving types.
//!
//! Scoping is simplified relative to C: all locals of a function share one
//! flat namespace (shadowing is rejected), which keeps variable identity
//! stable across the CFG — a property the coherence tracker depends on.

use crate::ast::*;
use crate::span::Diagnostic;
use std::collections::HashMap;

/// Signature information for one function.
#[derive(Debug, Clone)]
pub struct FuncInfo {
    /// Return type.
    pub ret: Ty,
    /// Declared parameters, in order.
    pub params: Vec<Param>,
    /// All locals (including parameters), name → type.
    pub locals: HashMap<String, Ty>,
}

/// Result of semantic analysis.
#[derive(Debug, Clone, Default)]
pub struct Sema {
    /// Global variables, name → type.
    pub globals: HashMap<String, Ty>,
    /// Functions, name → signature.
    pub funcs: HashMap<String, FuncInfo>,
    /// Type of every expression node.
    pub expr_ty: HashMap<NodeId, Ty>,
}

impl Sema {
    /// Resolve a variable as seen from inside `func`: local first, then
    /// global.
    pub fn var_ty(&self, func: &str, name: &str) -> Option<&Ty> {
        self.funcs
            .get(func)
            .and_then(|f| f.locals.get(name))
            .or_else(|| self.globals.get(name))
    }

    /// True if `name` inside `func` refers to a global (not shadowed by a
    /// local).
    pub fn is_global(&self, func: &str, name: &str) -> bool {
        !self
            .funcs
            .get(func)
            .map(|f| f.locals.contains_key(name))
            .unwrap_or(false)
            && self.globals.contains_key(name)
    }
}

/// Math/memory intrinsics known to the checker, the VM, and the translator.
pub const INTRINSICS: &[&str] = &[
    "sqrt", "fabs", "exp", "log", "pow", "sin", "cos", "floor", "ceil", "fmin", "fmax", "abs",
    "min", "max", "malloc", "free", "sqrtf", "expf", "fabsf", "logf", "powf",
];

/// True if `name` is a built-in rather than a user function.
pub fn is_intrinsic(name: &str) -> bool {
    INTRINSICS.contains(&name)
}

/// Run semantic analysis over a parsed program.
pub fn check(p: &Program) -> Result<Sema, Vec<Diagnostic>> {
    let mut cx = Checker::default();
    for item in &p.items {
        if let Item::Global(g) = item {
            if cx
                .sema
                .globals
                .insert(g.name.clone(), g.ty.clone())
                .is_some()
            {
                cx.errs.push(Diagnostic::error(
                    format!("duplicate global `{}`", g.name),
                    g.span,
                ));
            }
        }
    }
    // Collect signatures first so forward calls resolve.
    for item in &p.items {
        if let Item::Func(f) = item {
            let mut locals = HashMap::new();
            for prm in &f.params {
                locals.insert(prm.name.clone(), prm.ty.clone());
            }
            let info = FuncInfo {
                ret: f.ret.clone(),
                params: f.params.clone(),
                locals,
            };
            if cx.sema.funcs.insert(f.name.clone(), info).is_some() {
                cx.errs.push(Diagnostic::error(
                    format!("duplicate function `{}`", f.name),
                    f.span,
                ));
            }
        }
    }
    for item in &p.items {
        match item {
            Item::Global(g) => {
                if let Some(init) = &g.init {
                    // Global initializers must be constant-evaluable; we
                    // accept any expression without variable references.
                    if !init.reads().is_empty() {
                        cx.errs.push(Diagnostic::error(
                            format!("global `{}` initializer must be constant", g.name),
                            g.span,
                        ));
                    }
                }
            }
            Item::Func(f) => cx.check_func(f),
        }
    }
    if cx.errs.is_empty() {
        Ok(cx.sema)
    } else {
        Err(cx.errs)
    }
}

#[derive(Default)]
struct Checker {
    sema: Sema,
    errs: Vec<Diagnostic>,
}

impl Checker {
    fn check_func(&mut self, f: &Func) {
        self.check_block(f, &f.body);
    }

    fn declare_local(&mut self, f: &Func, d: &VarDecl) {
        let info = self
            .sema
            .funcs
            .get_mut(&f.name)
            .expect("signature collected");
        if self.sema.globals.contains_key(&d.name) {
            self.errs.push(Diagnostic::error(
                format!(
                    "local `{}` shadows a global (shadowing is unsupported)",
                    d.name
                ),
                d.span,
            ));
            return;
        }
        if info.locals.insert(d.name.clone(), d.ty.clone()).is_some() {
            self.errs.push(Diagnostic::error(
                format!("duplicate local `{}` in function `{}`", d.name, f.name),
                d.span,
            ));
        }
    }

    fn check_block(&mut self, f: &Func, b: &Block) {
        for s in &b.stmts {
            self.check_stmt(f, s);
        }
    }

    fn check_stmt(&mut self, f: &Func, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => {
                self.declare_local(f, d);
                if let Some(init) = &d.init {
                    let ty = self.type_expr(f, init);
                    self.expect_numeric_or_matching_ptr(&d.ty, &ty, s);
                }
            }
            StmtKind::Expr(e) => {
                self.type_expr(f, e);
            }
            StmtKind::Assign { target, op, value } => {
                let tty = self.type_lvalue(f, target, s);
                let vty = self.type_expr(f, value);
                if op.binop().is_some() {
                    if let Some(t) = &tty {
                        if t.is_aggregate() {
                            self.errs.push(Diagnostic::error(
                                "compound assignment to a pointer/array variable",
                                s.span,
                            ));
                        }
                    }
                }
                if let Some(t) = &tty {
                    self.expect_numeric_or_matching_ptr(t, &vty, s);
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expect_scalar(f, cond);
                self.check_block(f, then_blk);
                if let Some(e) = else_blk {
                    self.check_block(f, e);
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.check_stmt(f, i);
                }
                if let Some(c) = cond {
                    self.expect_scalar(f, c);
                }
                if let Some(st) = step {
                    self.check_stmt(f, st);
                }
                self.check_block(f, body);
            }
            StmtKind::While { cond, body } => {
                self.expect_scalar(f, cond);
                self.check_block(f, body);
            }
            StmtKind::Block(b) => self.check_block(f, b),
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    let ty = self.type_expr(f, e);
                    if f.ret == Ty::Void {
                        self.errs.push(Diagnostic::error(
                            "returning a value from a void function",
                            s.span,
                        ));
                    } else {
                        self.expect_numeric_or_matching_ptr(&f.ret, &ty, s);
                    }
                } else if f.ret != Ty::Void {
                    self.errs.push(Diagnostic::error(
                        format!("function `{}` must return a value", f.name),
                        s.span,
                    ));
                }
            }
            StmtKind::Break | StmtKind::Continue => {}
        }
    }

    fn expect_scalar(&mut self, f: &Func, e: &Expr) {
        if let Some(ty) = self.type_expr(f, e) {
            if !matches!(ty, Ty::Scalar(_)) {
                self.errs.push(Diagnostic::error(
                    format!("expected a scalar expression, found `{ty}`"),
                    e.span,
                ));
            }
        }
    }

    fn expect_numeric_or_matching_ptr(&mut self, dst: &Ty, src: &Option<Ty>, s: &Stmt) {
        let Some(src) = src else { return };
        let ok = match (dst, src) {
            (Ty::Scalar(_), Ty::Scalar(_)) => true,
            (Ty::Ptr(a), Ty::Ptr(b)) => a == b,
            // Writing an element of an array/pointer: dst is the elem type,
            // handled by type_lvalue returning Scalar; nothing else allowed.
            _ => false,
        };
        if !ok {
            self.errs.push(Diagnostic::error(
                format!("type mismatch: cannot assign `{src}` to `{dst}`"),
                s.span,
            ));
        }
    }

    fn type_lvalue(&mut self, f: &Func, lv: &LValue, s: &Stmt) -> Option<Ty> {
        match lv {
            LValue::Var(n) => match self.sema.var_ty(&f.name, n).cloned() {
                Some(t) => Some(t),
                None => {
                    self.errs.push(Diagnostic::error(
                        format!("undeclared variable `{n}`"),
                        s.span,
                    ));
                    None
                }
            },
            LValue::Index { base, indices } => {
                for ix in indices {
                    self.expect_scalar(f, ix);
                }
                self.index_elem_ty(f, base, indices.len(), s)
            }
        }
    }

    fn index_elem_ty(&mut self, f: &Func, base: &str, n_indices: usize, s: &Stmt) -> Option<Ty> {
        match self.sema.var_ty(&f.name, base).cloned() {
            None => {
                self.errs.push(Diagnostic::error(
                    format!("undeclared variable `{base}`"),
                    s.span,
                ));
                None
            }
            Some(Ty::Ptr(el)) => {
                if n_indices != 1 {
                    self.errs.push(Diagnostic::error(
                        format!("pointer `{base}` must be indexed with exactly one subscript"),
                        s.span,
                    ));
                }
                Some(Ty::Scalar(el))
            }
            Some(Ty::Array(el, dims)) => {
                if n_indices != dims.len() {
                    self.errs.push(Diagnostic::error(
                        format!(
                            "array `{base}` has {} dimension(s) but {} subscript(s) given",
                            dims.len(),
                            n_indices
                        ),
                        s.span,
                    ));
                }
                Some(Ty::Scalar(el))
            }
            Some(other) => {
                self.errs.push(Diagnostic::error(
                    format!("cannot index non-array `{base}` of type `{other}`"),
                    s.span,
                ));
                None
            }
        }
    }

    fn type_expr(&mut self, f: &Func, e: &Expr) -> Option<Ty> {
        let ty = self.type_expr_inner(f, e)?;
        self.sema.expr_ty.insert(e.id, ty.clone());
        Some(ty)
    }

    fn type_expr_inner(&mut self, f: &Func, e: &Expr) -> Option<Ty> {
        match &e.kind {
            ExprKind::IntLit(_) => Some(Ty::Scalar(ScalarTy::Int)),
            ExprKind::FloatLit(_, true) => Some(Ty::Scalar(ScalarTy::Float)),
            ExprKind::FloatLit(_, false) => Some(Ty::Scalar(ScalarTy::Double)),
            ExprKind::SizeOf(_) => Some(Ty::Scalar(ScalarTy::Long)),
            ExprKind::Var(n) => match self.sema.var_ty(&f.name, n).cloned() {
                Some(t) => Some(t),
                None => {
                    self.errs.push(Diagnostic::error(
                        format!("undeclared variable `{n}`"),
                        e.span,
                    ));
                    None
                }
            },
            ExprKind::Index { base, indices } => {
                for ix in indices {
                    self.expect_scalar(f, ix);
                }
                // Reuse the lvalue logic via a shim statement span.
                let shim = Stmt {
                    id: 0,
                    span: e.span,
                    pragmas: Vec::new(),
                    kind: StmtKind::Break,
                };
                self.index_elem_ty(f, base, indices.len(), &shim)
            }
            ExprKind::Unary { op, expr } => {
                let t = self.type_expr(f, expr)?;
                match t {
                    Ty::Scalar(s) => match op {
                        UnOp::Neg => Some(Ty::Scalar(s)),
                        UnOp::Not => Some(Ty::Scalar(ScalarTy::Int)),
                        UnOp::BitNot => {
                            if s.is_float() {
                                self.errs.push(Diagnostic::error(
                                    "bitwise not on a floating value",
                                    e.span,
                                ));
                            }
                            Some(Ty::Scalar(ScalarTy::Int))
                        }
                    },
                    other => {
                        self.errs.push(Diagnostic::error(
                            format!("unary `{op}` on non-scalar `{other}`"),
                            e.span,
                        ));
                        None
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.type_expr(f, lhs);
                let rt = self.type_expr(f, rhs);
                let (Some(Ty::Scalar(a)), Some(Ty::Scalar(b))) = (&lt, &rt) else {
                    // Pointer equality comparison is allowed.
                    if op.is_comparison() {
                        if let (Some(Ty::Ptr(a)), Some(Ty::Ptr(b))) = (&lt, &rt) {
                            if a == b {
                                return Some(Ty::Scalar(ScalarTy::Int));
                            }
                        }
                    }
                    self.errs.push(Diagnostic::error(
                        format!("binary `{op}` requires scalar operands"),
                        e.span,
                    ));
                    return None;
                };
                if op.is_comparison() || op.is_logical() {
                    return Some(Ty::Scalar(ScalarTy::Int));
                }
                if matches!(
                    op,
                    BinOp::Rem
                        | BinOp::BitAnd
                        | BinOp::BitOr
                        | BinOp::BitXor
                        | BinOp::Shl
                        | BinOp::Shr
                ) && (a.is_float() || b.is_float())
                {
                    self.errs.push(Diagnostic::error(
                        format!("binary `{op}` requires integer operands"),
                        e.span,
                    ));
                    return None;
                }
                Some(Ty::Scalar(promote(*a, *b)))
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                self.expect_scalar(f, cond);
                let t1 = self.type_expr(f, then_e)?;
                let t2 = self.type_expr(f, else_e)?;
                match (t1, t2) {
                    (Ty::Scalar(a), Ty::Scalar(b)) => Some(Ty::Scalar(promote(a, b))),
                    (a, b) if a == b => Some(a),
                    (a, b) => {
                        self.errs.push(Diagnostic::error(
                            format!("ternary branches have incompatible types `{a}` / `{b}`"),
                            e.span,
                        ));
                        None
                    }
                }
            }
            ExprKind::Cast { ty, expr } => {
                // `(double *) malloc(...)` is the only pointer cast allowed.
                if let Ty::Ptr(_) = ty {
                    match &expr.kind {
                        ExprKind::Call { name, args } if name == "malloc" => {
                            if args.len() != 1 {
                                self.errs.push(Diagnostic::error(
                                    "malloc takes exactly one argument",
                                    e.span,
                                ));
                            }
                            for a in args {
                                self.expect_scalar(f, a);
                            }
                            return Some(ty.clone());
                        }
                        _ => {
                            self.errs.push(Diagnostic::error(
                                "pointer casts are only supported on malloc calls",
                                e.span,
                            ));
                            return None;
                        }
                    }
                }
                let inner = self.type_expr(f, expr)?;
                if !matches!(inner, Ty::Scalar(_)) {
                    self.errs.push(Diagnostic::error(
                        format!("cannot cast `{inner}` to `{ty}`"),
                        e.span,
                    ));
                    return None;
                }
                Some(ty.clone())
            }
            ExprKind::Call { name, args } => self.type_call(f, e, name, args),
        }
    }

    fn type_call(&mut self, f: &Func, e: &Expr, name: &str, args: &[Expr]) -> Option<Ty> {
        if is_intrinsic(name) {
            return self.type_intrinsic(f, e, name, args);
        }
        let Some(info) = self.sema.funcs.get(name).cloned() else {
            self.errs.push(Diagnostic::error(
                format!("call to unknown function `{name}`"),
                e.span,
            ));
            for a in args {
                self.type_expr(f, a);
            }
            return None;
        };
        if info.params.len() != args.len() {
            self.errs.push(Diagnostic::error(
                format!(
                    "function `{name}` expects {} argument(s), got {}",
                    info.params.len(),
                    args.len()
                ),
                e.span,
            ));
        }
        for (i, a) in args.iter().enumerate() {
            let aty = self.type_expr(f, a);
            if let (Some(prm), Some(aty)) = (info.params.get(i), aty) {
                let ok = match (&prm.ty, &aty) {
                    (Ty::Scalar(_), Ty::Scalar(_)) => true,
                    (Ty::Ptr(x), Ty::Ptr(y)) => x == y,
                    (Ty::Ptr(x), Ty::Array(y, _)) => x == y,
                    _ => false,
                };
                if !ok {
                    self.errs.push(Diagnostic::error(
                        format!(
                            "argument {} of `{name}`: expected `{}`, got `{aty}`",
                            i + 1,
                            prm.ty
                        ),
                        a.span,
                    ));
                }
            }
        }
        Some(info.ret.clone())
    }

    fn type_intrinsic(&mut self, f: &Func, e: &Expr, name: &str, args: &[Expr]) -> Option<Ty> {
        let arg_tys: Vec<Option<Ty>> = args.iter().map(|a| self.type_expr(f, a)).collect();
        match name {
            "malloc" => {
                self.errs.push(Diagnostic::error(
                    "malloc must be wrapped in a pointer cast, e.g. `(double *) malloc(...)`",
                    e.span,
                ));
                None
            }
            "free" => {
                if args.len() != 1 || !matches!(arg_tys.first(), Some(Some(Ty::Ptr(_)))) {
                    self.errs.push(Diagnostic::error(
                        "free takes exactly one pointer argument",
                        e.span,
                    ));
                }
                Some(Ty::Void)
            }
            "pow" | "fmin" | "fmax" | "powf" => {
                self.expect_n_scalars(e, name, args, &arg_tys, 2);
                Some(Ty::Scalar(if name.ends_with('f') {
                    ScalarTy::Float
                } else {
                    ScalarTy::Double
                }))
            }
            "min" | "max" => {
                self.expect_n_scalars(e, name, args, &arg_tys, 2);
                // Integer min/max when both args are integers, else double.
                let both_int = arg_tys
                    .iter()
                    .all(|t| matches!(t, Some(Ty::Scalar(s)) if !s.is_float()));
                Some(Ty::Scalar(if both_int {
                    ScalarTy::Int
                } else {
                    ScalarTy::Double
                }))
            }
            "abs" => {
                self.expect_n_scalars(e, name, args, &arg_tys, 1);
                Some(Ty::Scalar(ScalarTy::Int))
            }
            "sqrtf" | "expf" | "fabsf" | "logf" => {
                self.expect_n_scalars(e, name, args, &arg_tys, 1);
                Some(Ty::Scalar(ScalarTy::Float))
            }
            _ => {
                // Unary double math.
                self.expect_n_scalars(e, name, args, &arg_tys, 1);
                Some(Ty::Scalar(ScalarTy::Double))
            }
        }
    }

    fn expect_n_scalars(
        &mut self,
        e: &Expr,
        name: &str,
        args: &[Expr],
        arg_tys: &[Option<Ty>],
        n: usize,
    ) {
        if args.len() != n {
            self.errs.push(Diagnostic::error(
                format!(
                    "intrinsic `{name}` expects {n} argument(s), got {}",
                    args.len()
                ),
                e.span,
            ));
        }
        for (a, t) in args.iter().zip(arg_tys) {
            if let Some(t) = t {
                if !matches!(t, Ty::Scalar(_)) {
                    self.errs.push(Diagnostic::error(
                        format!("intrinsic `{name}` requires scalar arguments, got `{t}`"),
                        a.span,
                    ));
                }
            }
        }
    }
}

/// C-style usual arithmetic conversion for our four scalar types.
pub fn promote(a: ScalarTy, b: ScalarTy) -> ScalarTy {
    use ScalarTy::*;
    match (a, b) {
        (Double, _) | (_, Double) => Double,
        (Float, _) | (_, Float) => Float,
        (Long, _) | (_, Long) => Long,
        _ => Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sema_ok(src: &str) -> Sema {
        let p = parse(src).expect("parse");
        check(&p).unwrap_or_else(|e| panic!("sema failed: {e:?}"))
    }

    fn sema_err(src: &str) -> Vec<Diagnostic> {
        let p = parse(src).expect("parse");
        check(&p).expect_err("expected sema error")
    }

    #[test]
    fn resolves_globals_and_locals() {
        let s = sema_ok("int n;\nvoid main() { int i; i = n; }");
        assert_eq!(s.var_ty("main", "i"), Some(&Ty::Scalar(ScalarTy::Int)));
        assert_eq!(s.var_ty("main", "n"), Some(&Ty::Scalar(ScalarTy::Int)));
        assert!(s.is_global("main", "n"));
        assert!(!s.is_global("main", "i"));
    }

    #[test]
    fn promote_follows_c_rules() {
        use ScalarTy::*;
        assert_eq!(promote(Int, Double), Double);
        assert_eq!(promote(Float, Long), Float);
        assert_eq!(promote(Int, Long), Long);
        assert_eq!(promote(Int, Int), Int);
    }

    #[test]
    fn undeclared_variable_rejected() {
        let errs = sema_err("void main() { x = 1; }");
        assert!(errs[0].message.contains("undeclared"));
    }

    #[test]
    fn duplicate_local_rejected() {
        let errs = sema_err("void main() { int i; double i; }");
        assert!(errs[0].message.contains("duplicate local"));
    }

    #[test]
    fn shadowing_rejected() {
        let errs = sema_err("int n;\nvoid main() { int n; }");
        assert!(errs[0].message.contains("shadows"));
    }

    #[test]
    fn index_dimension_mismatch_rejected() {
        let errs = sema_err("double a[4][4];\nvoid main() { a[1] = 0.0; }");
        assert!(errs[0].message.contains("subscript"));
    }

    #[test]
    fn pointer_index_must_be_single() {
        let errs = sema_err("double *p;\nvoid main() { p[1][2] = 0.0; }");
        assert!(errs[0].message.contains("exactly one"));
    }

    #[test]
    fn malloc_needs_cast() {
        let errs = sema_err("double *p;\nint n;\nvoid main() { p = malloc(n); }");
        assert!(errs.iter().any(|e| e.message.contains("cast")));
    }

    #[test]
    fn malloc_with_cast_types_as_pointer() {
        let s = sema_ok("double *p;\nint n;\nvoid main() { p = (double *) malloc(n * sizeof(double)); free(p); }");
        assert_eq!(s.var_ty("main", "p"), Some(&Ty::Ptr(ScalarTy::Double)));
    }

    #[test]
    fn pointer_assignment_same_elem_ok() {
        sema_ok("double *p;\ndouble *q;\nvoid main() { p = q; }");
    }

    #[test]
    fn pointer_assignment_wrong_elem_rejected() {
        let errs = sema_err("double *p;\nfloat *q;\nvoid main() { p = q; }");
        assert!(errs[0].message.contains("type mismatch"));
    }

    #[test]
    fn user_function_call_checked() {
        let s = sema_ok(
            "double dot(double *x, int n) { return x[0] + (double) n; }\ndouble a[8];\nvoid main() { double r; r = dot(a, 8); }",
        );
        assert_eq!(s.funcs["dot"].ret, Ty::Scalar(ScalarTy::Double));
    }

    #[test]
    fn call_arity_mismatch_rejected() {
        let errs = sema_err("double f(int x) { return 0.0; }\nvoid main() { f(1, 2); }");
        assert!(errs[0].message.contains("argument"));
    }

    #[test]
    fn float_rem_rejected() {
        let errs = sema_err("void main() { double d; d = 1.5 % 2.0; }");
        assert!(errs[0].message.contains("integer operands"));
    }

    #[test]
    fn void_return_mismatch() {
        let errs = sema_err("void main() { return 3; }");
        assert!(errs[0].message.contains("void"));
    }

    #[test]
    fn expr_types_recorded() {
        let p = parse("void main() { double d; d = 1 + 2.5; }").unwrap();
        let s = check(&p).unwrap();
        // At least one Double-typed expression exists (the addition).
        assert!(s
            .expr_ty
            .values()
            .any(|t| *t == Ty::Scalar(ScalarTy::Double)));
    }
}
