//! Binary codec for [`Program`] and [`Sema`] — the frontend half of the
//! cache's binary artifact format (`docs/FORMAT.md` §Program/§Sema).
//!
//! Mirrors [`crate::jsonio`] exactly in what it preserves — every
//! [`NodeId`], span and pragma survives bit-for-bit, float literals are
//! stored as IEEE-754 bit patterns — but encodes to fixed-width
//! little-endian primitives with one-byte opcodes for the closed enum
//! sets (types, operators, expression/statement tags) instead of JSON
//! text. Map-shaped tables ([`Sema`]) are emitted in sorted order so
//! identical tables serialize to identical bytes; re-encoding a decoded
//! artifact is byte-identical, which is what the cache's round-trip
//! gate checks.
//!
//! Decoding never panics — any malformed byte sequence is an
//! `Err(String)`, which the cache layer treats as a corrupt entry and
//! recomputes.

use crate::ast::*;
use crate::sema::{FuncInfo, Sema};
use crate::span::Span;
use openarc_trace::bin::{Reader, Writer};

type R<T> = Result<T, String>;

// ---------------------------------------------------------------------------
// Closed-set opcodes (normative orders — see docs/FORMAT.md)

/// Encode a scalar type as its one-byte code
/// (`int`=0, `long`=1, `float`=2, `double`=3).
pub fn write_scalar(w: &mut Writer, s: ScalarTy) {
    w.put_u8(match s {
        ScalarTy::Int => 0,
        ScalarTy::Long => 1,
        ScalarTy::Float => 2,
        ScalarTy::Double => 3,
    });
}

/// Decode a scalar type written by [`write_scalar`].
pub fn read_scalar(r: &mut Reader<'_>) -> R<ScalarTy> {
    match r.u8()? {
        0 => Ok(ScalarTy::Int),
        1 => Ok(ScalarTy::Long),
        2 => Ok(ScalarTy::Float),
        3 => Ok(ScalarTy::Double),
        c => Err(r.err(&format!("unknown scalar type code {c}"))),
    }
}

/// Encode a MiniC type: a one-byte tag (`void`=0, `scalar`=1, `ptr`=2,
/// `array`=3) followed by the scalar code and, for arrays, a dimension
/// sequence (`u32` count + `u64` extents).
pub fn write_ty(w: &mut Writer, ty: &Ty) {
    match ty {
        Ty::Void => w.put_u8(0),
        Ty::Scalar(s) => {
            w.put_u8(1);
            write_scalar(w, *s);
        }
        Ty::Ptr(s) => {
            w.put_u8(2);
            write_scalar(w, *s);
        }
        Ty::Array(s, dims) => {
            w.put_u8(3);
            write_scalar(w, *s);
            w.put_seq_len(dims.len());
            for d in dims {
                w.put_u64(*d);
            }
        }
    }
}

/// Decode a type written by [`write_ty`].
pub fn read_ty(r: &mut Reader<'_>) -> R<Ty> {
    match r.u8()? {
        0 => Ok(Ty::Void),
        1 => Ok(Ty::Scalar(read_scalar(r)?)),
        2 => Ok(Ty::Ptr(read_scalar(r)?)),
        3 => {
            let s = read_scalar(r)?;
            let n = r.seq_len()?;
            let mut dims = Vec::with_capacity(n);
            for _ in 0..n {
                dims.push(r.u64()?);
            }
            Ok(Ty::Array(s, dims))
        }
        c => Err(r.err(&format!("unknown type tag {c}"))),
    }
}

/// Encode a unary operator (`-`=0, `!`=1, `~`=2).
pub fn write_unop(w: &mut Writer, op: UnOp) {
    w.put_u8(match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
        UnOp::BitNot => 2,
    });
}

/// Decode a unary operator written by [`write_unop`].
pub fn read_unop(r: &mut Reader<'_>) -> R<UnOp> {
    match r.u8()? {
        0 => Ok(UnOp::Neg),
        1 => Ok(UnOp::Not),
        2 => Ok(UnOp::BitNot),
        c => Err(r.err(&format!("unknown unary op code {c}"))),
    }
}

/// The 18 binary operators in normative code order (codes 0–17).
const BINOPS: [BinOp; 18] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Lt,
    BinOp::Gt,
    BinOp::Le,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::And,
    BinOp::Or,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::Shl,
    BinOp::Shr,
];

/// Encode a binary operator as its code (index into the normative
/// 18-entry operator table).
pub fn write_binop(w: &mut Writer, op: BinOp) {
    let code = BINOPS.iter().position(|b| *b == op).unwrap() as u8;
    w.put_u8(code);
}

/// Decode a binary operator written by [`write_binop`].
pub fn read_binop(r: &mut Reader<'_>) -> R<BinOp> {
    let c = r.u8()?;
    BINOPS
        .get(c as usize)
        .copied()
        .ok_or_else(|| r.err(&format!("unknown binary op code {c}")))
}

fn write_assignop(w: &mut Writer, op: AssignOp) {
    w.put_u8(match op {
        AssignOp::Set => 0,
        AssignOp::Add => 1,
        AssignOp::Sub => 2,
        AssignOp::Mul => 3,
        AssignOp::Div => 4,
    });
}

fn read_assignop(r: &mut Reader<'_>) -> R<AssignOp> {
    match r.u8()? {
        0 => Ok(AssignOp::Set),
        1 => Ok(AssignOp::Add),
        2 => Ok(AssignOp::Sub),
        3 => Ok(AssignOp::Mul),
        4 => Ok(AssignOp::Div),
        c => Err(r.err(&format!("unknown assign op code {c}"))),
    }
}

// ---------------------------------------------------------------------------
// AST nodes

fn write_span(w: &mut Writer, sp: &Span) {
    w.put_u32(sp.start);
    w.put_u32(sp.end);
    w.put_u32(sp.line);
}

fn read_span(r: &mut Reader<'_>) -> R<Span> {
    Ok(Span {
        start: r.u32()?,
        end: r.u32()?,
        line: r.u32()?,
    })
}

fn write_exprs(w: &mut Writer, exprs: &[Expr]) {
    w.put_seq_len(exprs.len());
    for e in exprs {
        write_expr(w, e);
    }
}

fn read_exprs(r: &mut Reader<'_>) -> R<Vec<Expr>> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_expr(r)?);
    }
    Ok(out)
}

fn write_expr(w: &mut Writer, e: &Expr) {
    w.put_u32(e.id);
    write_span(w, &e.span);
    match &e.kind {
        ExprKind::IntLit(v) => {
            w.put_u8(0);
            w.put_i64(*v);
        }
        ExprKind::FloatLit(v, f_suffix) => {
            w.put_u8(1);
            w.put_f64(*v);
            w.put_bool(*f_suffix);
        }
        ExprKind::Var(n) => {
            w.put_u8(2);
            w.put_str(n);
        }
        ExprKind::Index { base, indices } => {
            w.put_u8(3);
            w.put_str(base);
            write_exprs(w, indices);
        }
        ExprKind::Unary { op, expr } => {
            w.put_u8(4);
            write_unop(w, *op);
            write_expr(w, expr);
        }
        ExprKind::Binary { op, lhs, rhs } => {
            w.put_u8(5);
            write_binop(w, *op);
            write_expr(w, lhs);
            write_expr(w, rhs);
        }
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            w.put_u8(6);
            write_expr(w, cond);
            write_expr(w, then_e);
            write_expr(w, else_e);
        }
        ExprKind::Call { name, args } => {
            w.put_u8(7);
            w.put_str(name);
            write_exprs(w, args);
        }
        ExprKind::Cast { ty, expr } => {
            w.put_u8(8);
            write_ty(w, ty);
            write_expr(w, expr);
        }
        ExprKind::SizeOf(s) => {
            w.put_u8(9);
            write_scalar(w, *s);
        }
    }
}

fn read_expr(r: &mut Reader<'_>) -> R<Expr> {
    let id = r.u32()?;
    let span = read_span(r)?;
    let kind = match r.u8()? {
        0 => ExprKind::IntLit(r.i64()?),
        1 => ExprKind::FloatLit(r.f64()?, r.bool()?),
        2 => ExprKind::Var(r.string()?),
        3 => ExprKind::Index {
            base: r.string()?,
            indices: read_exprs(r)?,
        },
        4 => ExprKind::Unary {
            op: read_unop(r)?,
            expr: Box::new(read_expr(r)?),
        },
        5 => ExprKind::Binary {
            op: read_binop(r)?,
            lhs: Box::new(read_expr(r)?),
            rhs: Box::new(read_expr(r)?),
        },
        6 => ExprKind::Ternary {
            cond: Box::new(read_expr(r)?),
            then_e: Box::new(read_expr(r)?),
            else_e: Box::new(read_expr(r)?),
        },
        7 => ExprKind::Call {
            name: r.string()?,
            args: read_exprs(r)?,
        },
        8 => ExprKind::Cast {
            ty: read_ty(r)?,
            expr: Box::new(read_expr(r)?),
        },
        9 => ExprKind::SizeOf(read_scalar(r)?),
        c => return Err(r.err(&format!("unknown expr tag {c}"))),
    };
    Ok(Expr { id, span, kind })
}

fn write_opt_expr(w: &mut Writer, e: &Option<Expr>) {
    match e {
        None => w.put_u8(0),
        Some(e) => {
            w.put_u8(1);
            write_expr(w, e);
        }
    }
}

fn read_opt_expr(r: &mut Reader<'_>) -> R<Option<Expr>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_expr(r)?)),
        c => Err(r.err(&format!("invalid Option tag {c:#04x}"))),
    }
}

fn write_lvalue(w: &mut Writer, lv: &LValue) {
    match lv {
        LValue::Var(n) => {
            w.put_u8(0);
            w.put_str(n);
        }
        LValue::Index { base, indices } => {
            w.put_u8(1);
            w.put_str(base);
            write_exprs(w, indices);
        }
    }
}

fn read_lvalue(r: &mut Reader<'_>) -> R<LValue> {
    match r.u8()? {
        0 => Ok(LValue::Var(r.string()?)),
        1 => Ok(LValue::Index {
            base: r.string()?,
            indices: read_exprs(r)?,
        }),
        c => Err(r.err(&format!("unknown lvalue tag {c}"))),
    }
}

fn write_vardecl(w: &mut Writer, vd: &VarDecl) {
    w.put_u32(vd.id);
    w.put_str(&vd.name);
    write_ty(w, &vd.ty);
    write_opt_expr(w, &vd.init);
    write_span(w, &vd.span);
}

fn read_vardecl(r: &mut Reader<'_>) -> R<VarDecl> {
    Ok(VarDecl {
        id: r.u32()?,
        name: r.string()?,
        ty: read_ty(r)?,
        init: read_opt_expr(r)?,
        span: read_span(r)?,
    })
}

fn write_block(w: &mut Writer, b: &Block) {
    w.put_seq_len(b.stmts.len());
    for s in &b.stmts {
        write_stmt(w, s);
    }
}

fn read_block(r: &mut Reader<'_>) -> R<Block> {
    let n = r.seq_len()?;
    let mut stmts = Vec::with_capacity(n);
    for _ in 0..n {
        stmts.push(read_stmt(r)?);
    }
    Ok(Block { stmts })
}

fn write_stmt(w: &mut Writer, s: &Stmt) {
    w.put_u32(s.id);
    write_span(w, &s.span);
    w.put_seq_len(s.pragmas.len());
    for p in &s.pragmas {
        w.put_str(&p.text);
        write_span(w, &p.span);
    }
    match &s.kind {
        StmtKind::Decl(vd) => {
            w.put_u8(0);
            write_vardecl(w, vd);
        }
        StmtKind::Expr(e) => {
            w.put_u8(1);
            write_expr(w, e);
        }
        StmtKind::Assign { target, op, value } => {
            w.put_u8(2);
            write_lvalue(w, target);
            write_assignop(w, *op);
            write_expr(w, value);
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            w.put_u8(3);
            write_expr(w, cond);
            write_block(w, then_blk);
            match else_blk {
                None => w.put_u8(0),
                Some(b) => {
                    w.put_u8(1);
                    write_block(w, b);
                }
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            w.put_u8(4);
            match init {
                None => w.put_u8(0),
                Some(s) => {
                    w.put_u8(1);
                    write_stmt(w, s);
                }
            }
            write_opt_expr(w, cond);
            match step {
                None => w.put_u8(0),
                Some(s) => {
                    w.put_u8(1);
                    write_stmt(w, s);
                }
            }
            write_block(w, body);
        }
        StmtKind::While { cond, body } => {
            w.put_u8(5);
            write_expr(w, cond);
            write_block(w, body);
        }
        StmtKind::Block(b) => {
            w.put_u8(6);
            write_block(w, b);
        }
        StmtKind::Return(e) => {
            w.put_u8(7);
            write_opt_expr(w, e);
        }
        StmtKind::Break => w.put_u8(8),
        StmtKind::Continue => w.put_u8(9),
    }
}

fn read_opt_stmt(r: &mut Reader<'_>) -> R<Option<Box<Stmt>>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Box::new(read_stmt(r)?))),
        c => Err(r.err(&format!("invalid Option tag {c:#04x}"))),
    }
}

fn read_stmt(r: &mut Reader<'_>) -> R<Stmt> {
    let id = r.u32()?;
    let span = read_span(r)?;
    let n = r.seq_len()?;
    let mut pragmas = Vec::with_capacity(n);
    for _ in 0..n {
        pragmas.push(Pragma {
            text: r.string()?,
            span: read_span(r)?,
        });
    }
    let kind = match r.u8()? {
        0 => StmtKind::Decl(read_vardecl(r)?),
        1 => StmtKind::Expr(read_expr(r)?),
        2 => StmtKind::Assign {
            target: read_lvalue(r)?,
            op: read_assignop(r)?,
            value: read_expr(r)?,
        },
        3 => StmtKind::If {
            cond: read_expr(r)?,
            then_blk: read_block(r)?,
            else_blk: match r.u8()? {
                0 => None,
                1 => Some(read_block(r)?),
                c => return Err(r.err(&format!("invalid Option tag {c:#04x}"))),
            },
        },
        4 => StmtKind::For {
            init: read_opt_stmt(r)?,
            cond: read_opt_expr(r)?,
            step: read_opt_stmt(r)?,
            body: read_block(r)?,
        },
        5 => StmtKind::While {
            cond: read_expr(r)?,
            body: read_block(r)?,
        },
        6 => StmtKind::Block(read_block(r)?),
        7 => StmtKind::Return(read_opt_expr(r)?),
        8 => StmtKind::Break,
        9 => StmtKind::Continue,
        c => return Err(r.err(&format!("unknown stmt tag {c}"))),
    };
    Ok(Stmt {
        id,
        span,
        pragmas,
        kind,
    })
}

fn write_params(w: &mut Writer, params: &[Param]) {
    w.put_seq_len(params.len());
    for p in params {
        w.put_str(&p.name);
        write_ty(w, &p.ty);
    }
}

fn read_params(r: &mut Reader<'_>) -> R<Vec<Param>> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Param {
            name: r.string()?,
            ty: read_ty(r)?,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Program / Sema

/// Encode a whole program, ids and spans included — the binary
/// counterpart of [`crate::jsonio::program_to_json`].
pub fn write_program(w: &mut Writer, p: &Program) {
    w.put_u32(p.next_id);
    w.put_seq_len(p.items.len());
    for it in &p.items {
        match it {
            Item::Global(vd) => {
                w.put_u8(0);
                write_vardecl(w, vd);
            }
            Item::Func(f) => {
                w.put_u8(1);
                w.put_u32(f.id);
                w.put_str(&f.name);
                write_ty(w, &f.ret);
                write_params(w, &f.params);
                write_block(w, &f.body);
                write_span(w, &f.span);
            }
        }
    }
}

/// Decode a program written by [`write_program`].
pub fn read_program(r: &mut Reader<'_>) -> R<Program> {
    let next_id = r.u32()?;
    let n = r.seq_len()?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(match r.u8()? {
            0 => Item::Global(read_vardecl(r)?),
            1 => Item::Func(Func {
                id: r.u32()?,
                name: r.string()?,
                ret: read_ty(r)?,
                params: read_params(r)?,
                body: read_block(r)?,
                span: read_span(r)?,
            }),
            c => return Err(r.err(&format!("unknown item tag {c}"))),
        });
    }
    Ok(Program { items, next_id })
}

/// Encode a semantic-analysis table. Map entries are emitted in sorted
/// order so identical tables serialize to identical bytes.
pub fn write_sema(w: &mut Writer, s: &Sema) {
    let mut globals: Vec<(&String, &Ty)> = s.globals.iter().collect();
    globals.sort_by_key(|(k, _)| k.as_str());
    w.put_seq_len(globals.len());
    for (k, ty) in globals {
        w.put_str(k);
        write_ty(w, ty);
    }
    let mut funcs: Vec<(&String, &FuncInfo)> = s.funcs.iter().collect();
    funcs.sort_by_key(|(k, _)| k.as_str());
    w.put_seq_len(funcs.len());
    for (k, fi) in funcs {
        w.put_str(k);
        write_ty(w, &fi.ret);
        write_params(w, &fi.params);
        let mut locals: Vec<(&String, &Ty)> = fi.locals.iter().collect();
        locals.sort_by_key(|(k, _)| k.as_str());
        w.put_seq_len(locals.len());
        for (k, ty) in locals {
            w.put_str(k);
            write_ty(w, ty);
        }
    }
    let mut expr_ty: Vec<(&NodeId, &Ty)> = s.expr_ty.iter().collect();
    expr_ty.sort_by_key(|(id, _)| **id);
    w.put_seq_len(expr_ty.len());
    for (id, ty) in expr_ty {
        w.put_u32(*id);
        write_ty(w, ty);
    }
}

/// Decode a semantic table written by [`write_sema`].
pub fn read_sema(r: &mut Reader<'_>) -> R<Sema> {
    let mut sema = Sema::default();
    let n = r.seq_len()?;
    for _ in 0..n {
        let name = r.string()?;
        let ty = read_ty(r)?;
        sema.globals.insert(name, ty);
    }
    let n = r.seq_len()?;
    for _ in 0..n {
        let name = r.string()?;
        let ret = read_ty(r)?;
        let params = read_params(r)?;
        let nl = r.seq_len()?;
        let mut locals = std::collections::HashMap::new();
        for _ in 0..nl {
            let lname = r.string()?;
            let lty = read_ty(r)?;
            locals.insert(lname, lty);
        }
        sema.funcs.insert(
            name,
            FuncInfo {
                ret,
                params,
                locals,
            },
        );
    }
    let n = r.seq_len()?;
    for _ in 0..n {
        let id = r.u32()?;
        let ty = read_ty(r)?;
        sema.expr_ty.insert(id, ty);
    }
    Ok(sema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{frontend, print_program};

    const SRC: &str = r#"
double a[16][4];
double *p;
int n;
void scale(double s) {
    int i;
    int j;
    #pragma acc data copy(a)
    {
        #pragma acc kernels loop gang worker
        for (i = 0; i < 16; i++) {
            for (j = 0; j < 4; j = j + 1) {
                a[i][j] = a[i][j] * s + (double) i - 0.5f;
            }
        }
    }
    while (n > 0) {
        if (n % 2 == 0) { n = n / 2; } else { break; }
    }
    p = (double *) malloc(8 * sizeof(double));
    p[0] = sqrt(fabs(-2.0));
    free(p);
    return;
}
void main() {
    scale(3.0);
}
"#;

    fn encode_program(p: &Program) -> Vec<u8> {
        let mut w = Writer::new();
        write_program(&mut w, p);
        w.into_bytes()
    }

    fn encode_sema(s: &Sema) -> Vec<u8> {
        let mut w = Writer::new();
        write_sema(&mut w, s);
        w.into_bytes()
    }

    #[test]
    fn program_round_trips_bit_identically() {
        let (p, _sema) = frontend(SRC).unwrap();
        let bytes = encode_program(&p);
        let mut r = Reader::new(&bytes);
        let back = read_program(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, p);
        assert_eq!(print_program(&back), print_program(&p));
        // Deterministic: re-encoding is byte-identical.
        assert_eq!(encode_program(&back), bytes);
    }

    #[test]
    fn sema_round_trips_bit_identically() {
        let (_p, sema) = frontend(SRC).unwrap();
        let bytes = encode_sema(&sema);
        let mut r = Reader::new(&bytes);
        let back = read_sema(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.globals, sema.globals);
        assert_eq!(back.expr_ty, sema.expr_ty);
        assert_eq!(back.funcs.len(), sema.funcs.len());
        for (name, fi) in &sema.funcs {
            let bfi = back.funcs.get(name).expect("missing func");
            assert_eq!(bfi.ret, fi.ret);
            assert_eq!(bfi.params, fi.params);
            assert_eq!(bfi.locals, fi.locals);
        }
        // Sorted-map encode: re-encoding the decode is byte-identical.
        assert_eq!(encode_sema(&back), bytes);
    }

    #[test]
    fn float_literal_bits_survive() {
        let (p, _) = frontend("double x;\nvoid main() { x = 0.30000000000000004; }").unwrap();
        let bytes = encode_program(&p);
        let back = read_program(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn truncation_never_panics() {
        let (p, sema) = frontend(SRC).unwrap();
        for bytes in [encode_program(&p), encode_sema(&sema)] {
            for cut in (0..bytes.len()).step_by(7) {
                let mut r = Reader::new(&bytes[..cut]);
                let prog = read_program(&mut r).and_then(|p| r.expect_end().map(|()| p));
                assert!(prog.is_err(), "program truncation at {cut} did not error");
                let mut r = Reader::new(&bytes[..cut]);
                // Sema decode over a truncated/foreign prefix must error or
                // at minimum not consume past the end — it must never panic.
                let _ = read_sema(&mut r);
            }
        }
    }

    #[test]
    fn bad_tags_are_errors() {
        let mut w = Writer::new();
        w.put_u32(0); // next_id
        w.put_u32(1); // one item
        w.put_u8(9); // unknown item tag
        let bytes = w.into_bytes();
        assert!(read_program(&mut Reader::new(&bytes)).is_err());
    }
}
