//! # openarc-minic
//!
//! MiniC frontend for the OpenARC-rs reproduction of *"Interactive Program
//! Debugging and Optimization for Directive-Based, Efficient GPU Computing"*
//! (Lee, Li, Vetter — IPDPS 2014).
//!
//! MiniC is the C subset the paper's twelve OpenACC benchmarks are written
//! in: the four numeric scalar types, static multi-dimensional arrays,
//! single-level heap pointers via `malloc`/`free`, functions, structured
//! control flow, and `#pragma` lines (captured verbatim for the OpenACC
//! layer).
//!
//! Pipeline: [`parse`] → [`sema::check`] → downstream crates
//! (`openarc-openacc` parses the pragmas, `openarc-dataflow` analyses the
//! AST, `openarc-vm` compiles it to bytecode, `openarc-core` transforms it).

#![warn(missing_docs)]

pub mod ast;
pub mod binio;
pub mod fingerprint;
pub mod jsonio;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;

pub use ast::{
    Block, Expr, ExprKind, Func, Item, LValue, NodeId, Pragma, Program, ScalarTy, Stmt, StmtKind,
    Ty, VarDecl,
};
pub use fingerprint::fingerprint_program;
pub use parser::{parse, parse_expression};
pub use pretty::print_program;
pub use sema::{check, Sema};
pub use span::{Diagnostic, Severity, Span};

/// Parse and semantically check a source file in one step.
pub fn frontend(src: &str) -> Result<(Program, Sema), Vec<Diagnostic>> {
    let program = parse(src).map_err(|d| vec![d])?;
    let sema = sema::check(&program)?;
    Ok((program, sema))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_combines_parse_and_check() {
        let (p, s) = frontend("int n;\nvoid main() { n = 2; }").unwrap();
        assert!(p.func("main").is_some());
        assert!(s.globals.contains_key("n"));
    }

    #[test]
    fn frontend_propagates_parse_errors() {
        assert!(frontend("void main() { !!! }").is_err());
    }

    #[test]
    fn frontend_propagates_sema_errors() {
        assert!(frontend("void main() { y = 1; }").is_err());
    }
}
