//! Recursive-descent parser for MiniC.
//!
//! Produces a [`Program`] with unique node ids. `#pragma` lines attach to the
//! statement that follows them, except *standalone* OpenACC executable
//! directives (`update`, `wait`, `declare`, `cache`), which become their own
//! empty statements so the runtime can execute them in place.

use crate::ast::*;
use crate::lexer::lex;
use crate::span::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Parse a full MiniC translation unit.
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    p.program()
}

/// Parse a standalone expression (used for directive `if(...)` conditions).
/// Node ids restart from 0; callers embedding the result into an existing
/// program must not rely on id uniqueness.
pub fn parse_expression(src: &str) -> Result<Expr, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    let e = p.expr()?;
    if !matches!(p.peek(), TokenKind::Eof) {
        return Err(Diagnostic::error(
            format!("trailing tokens after expression: `{}`", p.peek()),
            p.span(),
        ));
    }
    Ok(e)
}

/// True for pragma texts that are standalone executable directives rather
/// than constructs annotating the next statement.
pub fn is_standalone_pragma(text: &str) -> bool {
    let mut words = text.split_whitespace();
    if words.next() != Some("acc") {
        return false;
    }
    match words.next() {
        Some(w) => {
            let head: String = w
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            matches!(head.as_str(), "update" | "wait" | "declare" | "cache")
                || w.starts_with("wait(")
                || w.starts_with("update(")
        }
        None => false,
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: NodeId,
}

impl Parser {
    fn fresh(&mut self) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(
                format!("expected `{kind}`, found `{}`", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        let sp = self.span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, sp))
            }
            other => Err(Diagnostic::error(
                format!("expected identifier, found `{other}`"),
                sp,
            )),
        }
    }

    // ---------------- Types ----------------

    fn peek_is_type(&self) -> bool {
        self.peek().type_keyword().is_some()
    }

    fn base_type(&mut self) -> Result<(Option<ScalarTy>, Span), Diagnostic> {
        let sp = self.span();
        let ty = match self.peek() {
            TokenKind::KwInt => Some(ScalarTy::Int),
            TokenKind::KwLong => Some(ScalarTy::Long),
            TokenKind::KwFloat => Some(ScalarTy::Float),
            TokenKind::KwDouble => Some(ScalarTy::Double),
            TokenKind::KwVoid => None,
            other => {
                return Err(Diagnostic::error(
                    format!("expected type, found `{other}`"),
                    sp,
                ))
            }
        };
        self.bump();
        // Allow `long long` / `long int` spellings.
        if ty == Some(ScalarTy::Long) && matches!(self.peek(), TokenKind::KwLong | TokenKind::KwInt)
        {
            self.bump();
        }
        Ok((ty, sp))
    }

    /// Parse array dims after a declarator name: `[N]` or `[N][M]`.
    fn array_dims(&mut self) -> Result<Vec<u64>, Diagnostic> {
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let sp = self.span();
            match self.peek().clone() {
                TokenKind::IntLit(v) if v > 0 => {
                    self.bump();
                    dims.push(v as u64);
                }
                other => {
                    return Err(Diagnostic::error(
                        format!(
                            "array dimension must be a positive integer literal, found `{other}`"
                        ),
                        sp,
                    ))
                }
            }
            self.expect(TokenKind::RBracket)?;
        }
        Ok(dims)
    }

    // ---------------- Items ----------------

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut items = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            if let TokenKind::Pragma(_) = self.peek() {
                return Err(Diagnostic::error(
                    "pragmas are only supported inside function bodies",
                    self.span(),
                ));
            }
            items.push(self.item()?);
        }
        Ok(Program {
            items,
            next_id: self.next_id,
        })
    }

    fn item(&mut self) -> Result<Item, Diagnostic> {
        let (base, sp) = self.base_type()?;
        let is_ptr = self.eat(&TokenKind::Star);
        let (name, _) = self.expect_ident()?;
        if self.peek() == &TokenKind::LParen {
            self.func_item(base, is_ptr, name, sp).map(Item::Func)
        } else {
            let decl = self.finish_var_decl(base, is_ptr, name, sp)?;
            self.expect(TokenKind::Semi)?;
            Ok(Item::Global(decl))
        }
    }

    fn finish_var_decl(
        &mut self,
        base: Option<ScalarTy>,
        is_ptr: bool,
        name: String,
        sp: Span,
    ) -> Result<VarDecl, Diagnostic> {
        let base = base.ok_or_else(|| Diagnostic::error("variable cannot have type void", sp))?;
        let dims = self.array_dims()?;
        let ty = if is_ptr {
            if !dims.is_empty() {
                return Err(Diagnostic::error(
                    "pointer-to-array declarators are unsupported",
                    sp,
                ));
            }
            Ty::Ptr(base)
        } else if dims.is_empty() {
            Ty::Scalar(base)
        } else {
            Ty::Array(base, dims)
        };
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        if init.is_some() && ty.is_aggregate() && !matches!(ty, Ty::Ptr(_)) {
            return Err(Diagnostic::error("array initializers are unsupported", sp));
        }
        Ok(VarDecl {
            id: self.fresh(),
            name,
            ty,
            init,
            span: sp.to(self.prev_span()),
        })
    }

    fn func_item(
        &mut self,
        ret_base: Option<ScalarTy>,
        ret_ptr: bool,
        name: String,
        sp: Span,
    ) -> Result<Func, Diagnostic> {
        let ret = match (ret_base, ret_ptr) {
            (None, false) => Ty::Void,
            (None, true) => return Err(Diagnostic::error("void * return is unsupported", sp)),
            (Some(s), false) => Ty::Scalar(s),
            (Some(s), true) => Ty::Ptr(s),
        };
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            if self.peek() == &TokenKind::KwVoid && self.peek_at(1) == &TokenKind::RParen {
                self.bump();
                self.bump();
            } else {
                loop {
                    let (base, psp) = self.base_type()?;
                    let is_ptr = self.eat(&TokenKind::Star);
                    let (pname, _) = self.expect_ident()?;
                    let dims = self.array_dims()?;
                    let base =
                        base.ok_or_else(|| Diagnostic::error("parameter cannot be void", psp))?;
                    let ty = if is_ptr || !dims.is_empty() {
                        // Array parameters decay to pointers.
                        Ty::Ptr(base)
                    } else {
                        Ty::Scalar(base)
                    };
                    params.push(Param { name: pname, ty });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
            }
        }
        let body = self.block()?;
        Ok(Func {
            id: self.fresh(),
            name,
            ret,
            params,
            body,
            span: sp.to(self.prev_span()),
        })
    }

    // ---------------- Statements ----------------

    fn block(&mut self) -> Result<Block, Diagnostic> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(Diagnostic::error(
                    "unexpected end of input in block",
                    self.span(),
                ));
            }
            self.stmt_into(&mut stmts)?;
        }
        Ok(Block { stmts })
    }

    /// Parse one statement (possibly expanding multi-declarators into
    /// several [`Stmt`]s) into `out`.
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), Diagnostic> {
        // Gather leading pragmas.
        let mut pragmas = Vec::new();
        while let TokenKind::Pragma(text) = self.peek().clone() {
            let sp = self.span();
            self.bump();
            if is_standalone_pragma(&text) {
                // Standalone executable directive: its own empty statement.
                out.push(Stmt {
                    id: self.fresh(),
                    span: sp,
                    pragmas: vec![Pragma { text, span: sp }],
                    kind: StmtKind::Block(Block::default()),
                });
            } else {
                pragmas.push(Pragma { text, span: sp });
            }
        }
        if !pragmas.is_empty() || !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            let mut stmts = self.stmt_multi()?;
            if let Some(first) = stmts.first_mut() {
                first.pragmas = pragmas;
            } else if !pragmas.is_empty() {
                return Err(Diagnostic::error(
                    "pragma not followed by a statement",
                    self.span(),
                ));
            }
            out.append(&mut stmts);
        }
        Ok(())
    }

    /// Parse one syntactic statement; declarations with several declarators
    /// expand into several statements.
    fn stmt_multi(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        let sp = self.span();
        if self.peek_is_type() {
            let (base, tsp) = self.base_type()?;
            let mut stmts = Vec::new();
            loop {
                let is_ptr = self.eat(&TokenKind::Star);
                let (name, _) = self.expect_ident()?;
                let decl = self.finish_var_decl(base, is_ptr, name, tsp)?;
                stmts.push(Stmt {
                    id: self.fresh(),
                    span: tsp.to(self.prev_span()),
                    pragmas: Vec::new(),
                    kind: StmtKind::Decl(decl),
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::Semi)?;
            return Ok(stmts);
        }
        let stmt = match self.peek().clone() {
            TokenKind::LBrace => {
                let b = self.block()?;
                self.mk_stmt(sp, StmtKind::Block(b))
            }
            TokenKind::KwIf => self.if_stmt()?,
            TokenKind::KwFor => self.for_stmt()?,
            TokenKind::KwWhile => self.while_stmt()?,
            TokenKind::KwReturn => {
                self.bump();
                let e = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                self.mk_stmt(sp, StmtKind::Return(e))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                self.mk_stmt(sp, StmtKind::Break)
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                self.mk_stmt(sp, StmtKind::Continue)
            }
            TokenKind::Semi => {
                self.bump();
                self.mk_stmt(sp, StmtKind::Block(Block::default()))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(TokenKind::Semi)?;
                s
            }
        };
        Ok(vec![stmt])
    }

    fn mk_stmt(&mut self, sp: Span, kind: StmtKind) -> Stmt {
        Stmt {
            id: self.fresh(),
            span: sp.to(self.prev_span()),
            pragmas: Vec::new(),
            kind,
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let sp = self.span();
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_blk = self.stmt_as_block()?;
        let else_blk = if self.eat(&TokenKind::KwElse) {
            Some(self.stmt_as_block()?)
        } else {
            None
        };
        Ok(self.mk_stmt(
            sp,
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
        ))
    }

    fn while_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let sp = self.span();
        self.expect(TokenKind::KwWhile)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(self.mk_stmt(sp, StmtKind::While { cond, body }))
    }

    fn for_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let sp = self.span();
        self.expect(TokenKind::KwFor)?;
        self.expect(TokenKind::LParen)?;
        let init = if self.peek() == &TokenKind::Semi {
            None
        } else if self.peek_is_type() {
            // `for (int i = 0; ...)` — single declarator only.
            let (base, tsp) = self.base_type()?;
            let is_ptr = self.eat(&TokenKind::Star);
            let (name, _) = self.expect_ident()?;
            let decl = self.finish_var_decl(base, is_ptr, name, tsp)?;
            Some(Box::new(Stmt {
                id: self.fresh(),
                span: tsp.to(self.prev_span()),
                pragmas: Vec::new(),
                kind: StmtKind::Decl(decl),
            }))
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(TokenKind::Semi)?;
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(TokenKind::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(self.mk_stmt(
            sp,
            StmtKind::For {
                init,
                cond,
                step,
                body,
            },
        ))
    }

    /// Parse a statement and wrap single statements into a one-entry block.
    fn stmt_as_block(&mut self) -> Result<Block, Diagnostic> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            let mut stmts = Vec::new();
            self.stmt_into(&mut stmts)?;
            Ok(Block { stmts })
        }
    }

    /// Assignment / increment / call statement, *without* the trailing `;`
    /// (used directly in `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let sp = self.span();
        // Prefix increment/decrement.
        if matches!(self.peek(), TokenKind::PlusPlus | TokenKind::MinusMinus) {
            let op = if self.bump().kind == TokenKind::PlusPlus {
                AssignOp::Add
            } else {
                AssignOp::Sub
            };
            let lv = self.lvalue()?;
            let one = self.int_one(sp);
            return Ok(self.mk_stmt(
                sp,
                StmtKind::Assign {
                    target: lv,
                    op,
                    value: one,
                },
            ));
        }
        let e = self.expr()?;
        match self.peek().clone() {
            TokenKind::Assign
            | TokenKind::PlusAssign
            | TokenKind::MinusAssign
            | TokenKind::StarAssign
            | TokenKind::SlashAssign => {
                let op = match self.bump().kind {
                    TokenKind::Assign => AssignOp::Set,
                    TokenKind::PlusAssign => AssignOp::Add,
                    TokenKind::MinusAssign => AssignOp::Sub,
                    TokenKind::StarAssign => AssignOp::Mul,
                    TokenKind::SlashAssign => AssignOp::Div,
                    _ => unreachable!(),
                };
                let target = expr_to_lvalue(&e).ok_or_else(|| {
                    Diagnostic::error("left side of assignment is not assignable", e.span)
                })?;
                let value = self.expr()?;
                Ok(self.mk_stmt(sp, StmtKind::Assign { target, op, value }))
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let op = if self.bump().kind == TokenKind::PlusPlus {
                    AssignOp::Add
                } else {
                    AssignOp::Sub
                };
                let target = expr_to_lvalue(&e).ok_or_else(|| {
                    Diagnostic::error("operand of ++/-- is not assignable", e.span)
                })?;
                let one = self.int_one(sp);
                Ok(self.mk_stmt(
                    sp,
                    StmtKind::Assign {
                        target,
                        op,
                        value: one,
                    },
                ))
            }
            _ => Ok(self.mk_stmt(sp, StmtKind::Expr(e))),
        }
    }

    fn int_one(&mut self, sp: Span) -> Expr {
        Expr {
            id: self.fresh(),
            span: sp,
            kind: ExprKind::IntLit(1),
        }
    }

    fn lvalue(&mut self) -> Result<LValue, Diagnostic> {
        let e = self.postfix_expr()?;
        expr_to_lvalue(&e)
            .ok_or_else(|| Diagnostic::error("expected an assignable expression", e.span))
    }

    // ---------------- Expressions ----------------

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, Diagnostic> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then_e = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let else_e = self.ternary()?;
            let span = cond.span.to(else_e.span);
            Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_e: Box::new(then_e),
                    else_e: Box::new(else_e),
                },
            })
        } else {
            Ok(cond)
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::PipePipe => (BinOp::Or, 1),
                TokenKind::AmpAmp => (BinOp::And, 2),
                TokenKind::Pipe => (BinOp::BitOr, 3),
                TokenKind::Caret => (BinOp::BitXor, 4),
                TokenKind::Amp => (BinOp::BitAnd, 5),
                TokenKind::Eq => (BinOp::Eq, 6),
                TokenKind::Ne => (BinOp::Ne, 6),
                TokenKind::Lt => (BinOp::Lt, 7),
                TokenKind::Gt => (BinOp::Gt, 7),
                TokenKind::Le => (BinOp::Le, 7),
                TokenKind::Ge => (BinOp::Ge, 7),
                TokenKind::Shl => (BinOp::Shl, 8),
                TokenKind::Shr => (BinOp::Shr, 8),
                TokenKind::Plus => (BinOp::Add, 9),
                TokenKind::Minus => (BinOp::Sub, 9),
                TokenKind::Star => (BinOp::Mul, 10),
                TokenKind::Slash => (BinOp::Div, 10),
                TokenKind::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        let sp = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Plus => {
                self.bump();
                return self.unary();
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            let span = sp.to(e.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Unary {
                    op,
                    expr: Box::new(e),
                },
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, Diagnostic> {
        let sp = self.span();
        // Cast or parenthesized expression.
        if self.peek() == &TokenKind::LParen {
            if self.peek_at(1).type_keyword().is_some() {
                self.bump();
                let (base, tsp) = self.base_type()?;
                let is_ptr = self.eat(&TokenKind::Star);
                self.expect(TokenKind::RParen)?;
                let base = base.ok_or_else(|| Diagnostic::error("cannot cast to void", tsp))?;
                let ty = if is_ptr {
                    Ty::Ptr(base)
                } else {
                    Ty::Scalar(base)
                };
                let inner = self.unary()?;
                let span = sp.to(inner.span);
                return Ok(Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::Cast {
                        ty,
                        expr: Box::new(inner),
                    },
                });
            }
            self.bump();
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            return self.maybe_index(e);
        }
        if self.peek() == &TokenKind::KwSizeof {
            self.bump();
            self.expect(TokenKind::LParen)?;
            let (base, tsp) = self.base_type()?;
            let base = base.ok_or_else(|| Diagnostic::error("sizeof(void) is invalid", tsp))?;
            self.expect(TokenKind::RParen)?;
            return Ok(Expr {
                id: self.fresh(),
                span: sp.to(self.prev_span()),
                kind: ExprKind::SizeOf(base),
            });
        }
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: sp,
                    kind: ExprKind::IntLit(v),
                })
            }
            TokenKind::FloatLit(v, suf) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: sp,
                    kind: ExprKind::FloatLit(v, suf),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(TokenKind::RParen)?;
                    }
                    let e = Expr {
                        id: self.fresh(),
                        span: sp.to(self.prev_span()),
                        kind: ExprKind::Call { name, args },
                    };
                    return self.maybe_index(e);
                }
                let e = Expr {
                    id: self.fresh(),
                    span: sp,
                    kind: ExprKind::Var(name),
                };
                self.maybe_index(e)
            }
            other => Err(Diagnostic::error(
                format!("expected expression, found `{other}`"),
                sp,
            )),
        }
    }

    /// Parse trailing `[i][j]...` indices onto `e` when `e` is a variable.
    fn maybe_index(&mut self, e: Expr) -> Result<Expr, Diagnostic> {
        if self.peek() != &TokenKind::LBracket {
            return Ok(e);
        }
        let base = match &e.kind {
            ExprKind::Var(name) => name.clone(),
            _ => {
                return Err(Diagnostic::error(
                    "indexing is only supported directly on variables",
                    e.span,
                ))
            }
        };
        let mut indices = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            indices.push(self.expr()?);
            self.expect(TokenKind::RBracket)?;
        }
        let span = e.span.to(self.prev_span());
        Ok(Expr {
            id: self.fresh(),
            span,
            kind: ExprKind::Index { base, indices },
        })
    }
}

/// Convert an expression to an assignable lvalue, if it is one.
fn expr_to_lvalue(e: &Expr) -> Option<LValue> {
    match &e.kind {
        ExprKind::Var(n) => Some(LValue::Var(n.clone())),
        ExprKind::Index { base, indices } => Some(LValue::Index {
            base: base.clone(),
            indices: indices.clone(),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn parse_global_and_main() {
        let p = parse_ok("int n;\ndouble a[100];\nvoid main() { n = 3; }");
        assert_eq!(p.items.len(), 3);
        assert!(p.func("main").is_some());
        let g: Vec<_> = p.globals().collect();
        assert_eq!(g[1].ty, Ty::Array(ScalarTy::Double, vec![100]));
    }

    #[test]
    fn parse_multi_declarator() {
        let p = parse_ok("void main() { int i, j, k; i = j + k; }");
        let body = &p.func("main").unwrap().body;
        assert_eq!(body.stmts.len(), 4);
    }

    #[test]
    fn parse_for_loop_with_pragma() {
        let p = parse_ok(
            "void main() {\n int i;\n #pragma acc kernels loop gang worker\n for (i = 0; i < 10; i++) { i = i; }\n}",
        );
        let body = &p.func("main").unwrap().body;
        let for_stmt = &body.stmts[1];
        assert_eq!(for_stmt.pragmas.len(), 1);
        assert_eq!(for_stmt.pragmas[0].text, "acc kernels loop gang worker");
        assert!(matches!(for_stmt.kind, StmtKind::For { .. }));
    }

    #[test]
    fn standalone_update_pragma_is_own_statement() {
        let p = parse_ok("void main() {\n int x;\n #pragma acc update host(x)\n x = 1;\n}");
        let body = &p.func("main").unwrap().body;
        assert_eq!(body.stmts.len(), 3);
        assert_eq!(body.stmts[1].pragmas[0].text, "acc update host(x)");
        assert!(matches!(body.stmts[1].kind, StmtKind::Block(ref b) if b.stmts.is_empty()));
        // The assignment must NOT carry the pragma.
        assert!(body.stmts[2].pragmas.is_empty());
    }

    #[test]
    fn data_pragma_attaches_to_block() {
        let p = parse_ok("void main() {\n #pragma acc data copyin(a)\n {\n  int i;\n }\n}");
        let body = &p.func("main").unwrap().body;
        assert_eq!(body.stmts[0].pragmas[0].text, "acc data copyin(a)");
        assert!(matches!(body.stmts[0].kind, StmtKind::Block(_)));
    }

    #[test]
    fn parse_malloc_cast_sizeof() {
        let p = parse_ok(
            "double *p;\nint n;\nvoid main() { p = (double *) malloc(n * sizeof(double)); }",
        );
        let body = &p.func("main").unwrap().body;
        match &body.stmts[0].kind {
            StmtKind::Assign { target, value, .. } => {
                assert_eq!(target.base(), "p");
                assert!(matches!(value.kind, ExprKind::Cast { .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_precedence() {
        let p = parse_ok("void main() { int x; x = 1 + 2 * 3; }");
        let body = &p.func("main").unwrap().body;
        match &body.stmts[1].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_2d_index() {
        let p = parse_ok("float g[4][4];\nvoid main() { int i; g[i][i+1] = 0.5f; }");
        let body = &p.func("main").unwrap().body;
        match &body.stmts[1].kind {
            StmtKind::Assign {
                target: LValue::Index { base, indices },
                ..
            } => {
                assert_eq!(base, "g");
                assert_eq!(indices.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_ternary_and_calls() {
        let p = parse_ok("void main() { double d; d = d > 0.0 ? sqrt(d) : fabs(d); }");
        let body = &p.func("main").unwrap().body;
        assert!(matches!(
            &body.stmts[1].kind,
            StmtKind::Assign {
                value: Expr {
                    kind: ExprKind::Ternary { .. },
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn parse_increment_forms() {
        let p = parse_ok("void main() { int i; i++; ++i; i--; i += 2; }");
        let body = &p.func("main").unwrap().body;
        assert_eq!(body.stmts.len(), 5);
        for s in &body.stmts[1..] {
            assert!(matches!(s.kind, StmtKind::Assign { .. }));
        }
    }

    #[test]
    fn parse_function_with_params() {
        let p = parse_ok(
            "double dot(double *x, double *y, int n) { int i; double s; s = 0.0; for (i=0;i<n;i++) s += x[i]*y[i]; return s; }\nvoid main() { }",
        );
        let f = p.func("dot").unwrap();
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].ty, Ty::Ptr(ScalarTy::Double));
        assert_eq!(f.ret, Ty::Scalar(ScalarTy::Double));
    }

    #[test]
    fn array_param_decays_to_pointer() {
        let p = parse_ok("void f(double a[10]) { }\nvoid main() { }");
        assert_eq!(p.func("f").unwrap().params[0].ty, Ty::Ptr(ScalarTy::Double));
    }

    #[test]
    fn error_on_bad_assignment_target() {
        assert!(parse("void main() { 1 + 2 = 3; }").is_err());
    }

    #[test]
    fn error_on_top_level_pragma() {
        assert!(parse("#pragma acc data\nint x;").is_err());
    }

    #[test]
    fn error_on_void_variable() {
        assert!(parse("void x;").is_err());
    }

    #[test]
    fn while_and_if_else_chain() {
        let p = parse_ok(
            "void main() { int i; i = 0; while (i < 4) { if (i == 1) i = 2; else if (i == 2) i = 3; else i++; } }",
        );
        assert!(p.func("main").is_some());
    }

    #[test]
    fn standalone_pragma_classifier() {
        assert!(is_standalone_pragma("acc update host(q)"));
        assert!(is_standalone_pragma("acc wait(1)"));
        assert!(!is_standalone_pragma("acc kernels loop gang"));
        assert!(!is_standalone_pragma("acc data copy(a)"));
        assert!(!is_standalone_pragma("omp parallel for"));
    }

    #[test]
    fn for_with_decl_init() {
        let p = parse_ok("void main() { for (int i = 0; i < 3; i++) { } }");
        let body = &p.func("main").unwrap().body;
        match &body.stmts[0].kind {
            StmtKind::For {
                init: Some(init), ..
            } => {
                assert!(matches!(init.kind, StmtKind::Decl(_)))
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn node_ids_unique() {
        let p = parse_ok("void main() { int i; for (i=0;i<9;i++) { i = i + 1; } }");
        let mut ids = Vec::new();
        if let Some(f) = p.func("main") {
            crate::ast::walk_stmts(&f.body, &mut |s| ids.push(s.id));
        }
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
