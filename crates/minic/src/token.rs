//! Token definitions for the MiniC lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexed token. Punctuation variants are self-describing.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword candidate, e.g. `main`, `i`.
    Ident(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal (`1.5`, `1e-3`, `2.0f`). The bool is true when
    /// the literal carried an `f` suffix (single precision).
    FloatLit(f64, bool),
    /// A `#pragma ...` line, with continuations folded in. Contains the text
    /// after `#pragma`, e.g. `acc kernels loop gang worker`.
    Pragma(String),

    // Keywords.
    KwInt,
    KwLong,
    KwFloat,
    KwDouble,
    KwVoid,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Bang,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// If this token is a type keyword, return its display name.
    pub fn type_keyword(&self) -> Option<&'static str> {
        match self {
            TokenKind::KwInt => Some("int"),
            TokenKind::KwLong => Some("long"),
            TokenKind::KwFloat => Some("float"),
            TokenKind::KwDouble => Some("double"),
            TokenKind::KwVoid => Some("void"),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) => write!(f, "{s}"),
            IntLit(v) => write!(f, "{v}"),
            FloatLit(v, suf) => {
                if *suf {
                    write!(f, "{v}f")
                } else {
                    write!(f, "{v}")
                }
            }
            Pragma(s) => write!(f, "#pragma {s}"),
            KwInt => write!(f, "int"),
            KwLong => write!(f, "long"),
            KwFloat => write!(f, "float"),
            KwDouble => write!(f, "double"),
            KwVoid => write!(f, "void"),
            KwIf => write!(f, "if"),
            KwElse => write!(f, "else"),
            KwFor => write!(f, "for"),
            KwWhile => write!(f, "while"),
            KwReturn => write!(f, "return"),
            KwBreak => write!(f, "break"),
            KwContinue => write!(f, "continue"),
            KwSizeof => write!(f, "sizeof"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            Semi => write!(f, ";"),
            Comma => write!(f, ","),
            Colon => write!(f, ":"),
            Question => write!(f, "?"),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            Amp => write!(f, "&"),
            Pipe => write!(f, "|"),
            Caret => write!(f, "^"),
            Tilde => write!(f, "~"),
            Shl => write!(f, "<<"),
            Shr => write!(f, ">>"),
            AmpAmp => write!(f, "&&"),
            PipePipe => write!(f, "||"),
            Bang => write!(f, "!"),
            Assign => write!(f, "="),
            PlusAssign => write!(f, "+="),
            MinusAssign => write!(f, "-="),
            StarAssign => write!(f, "*="),
            SlashAssign => write!(f, "/="),
            PlusPlus => write!(f, "++"),
            MinusMinus => write!(f, "--"),
            Eq => write!(f, "=="),
            Ne => write!(f, "!="),
            Lt => write!(f, "<"),
            Gt => write!(f, ">"),
            Le => write!(f, "<="),
            Ge => write!(f, ">="),
            Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_keyword_mapping() {
        assert_eq!(TokenKind::KwDouble.type_keyword(), Some("double"));
        assert_eq!(TokenKind::Plus.type_keyword(), None);
    }

    #[test]
    fn display_round_trip_symbols() {
        assert_eq!(TokenKind::Shl.to_string(), "<<");
        assert_eq!(TokenKind::PlusAssign.to_string(), "+=");
        assert_eq!(TokenKind::FloatLit(1.5, true).to_string(), "1.5f");
    }
}
