//! Abstract syntax tree for MiniC.
//!
//! The AST is deliberately close to the source: `#pragma` lines are kept as
//! raw [`Pragma`] attachments on the following statement so the OpenACC
//! layer (crate `openarc-openacc`) can parse, validate, and — crucially for
//! the paper's passes — *rewrite* them (memory-transfer demotion edits data
//! clauses in place and the pretty-printer reproduces Listing-2-style
//! output).
//!
//! Every statement and expression carries a unique [`NodeId`]; dataflow
//! analyses and the coherence-check instrumentation key their results on
//! these ids.

use crate::span::Span;
use std::fmt;

/// Unique id of an AST node within one [`Program`].
pub type NodeId = u32;

/// Primitive scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarTy {
    /// 64-bit signed integer (C `int` widened for simplicity).
    Int,
    /// 64-bit signed integer (C `long`).
    Long,
    /// 32-bit IEEE float.
    Float,
    /// 64-bit IEEE float.
    Double,
}

impl ScalarTy {
    /// Size in bytes of one element, used by the transfer cost model.
    pub fn size_bytes(self) -> u64 {
        match self {
            ScalarTy::Int => 4,
            ScalarTy::Long => 8,
            ScalarTy::Float => 4,
            ScalarTy::Double => 8,
        }
    }

    /// True for `float`/`double`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarTy::Float | ScalarTy::Double)
    }
}

impl fmt::Display for ScalarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarTy::Int => write!(f, "int"),
            ScalarTy::Long => write!(f, "long"),
            ScalarTy::Float => write!(f, "float"),
            ScalarTy::Double => write!(f, "double"),
        }
    }
}

/// A MiniC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `void` (function returns only).
    Void,
    /// A scalar value.
    Scalar(ScalarTy),
    /// Pointer to scalar, e.g. `double *`. Only one indirection level is
    /// supported; the benchmarks never need more.
    Ptr(ScalarTy),
    /// Statically sized array, e.g. `double a[512][512]`.
    Array(ScalarTy, Vec<u64>),
}

impl Ty {
    /// The element scalar type of arrays/pointers, or the scalar itself.
    pub fn elem(&self) -> Option<ScalarTy> {
        match self {
            Ty::Void => None,
            Ty::Scalar(s) | Ty::Ptr(s) | Ty::Array(s, _) => Some(*s),
        }
    }

    /// True if this type names CPU/GPU-shareable aggregate data (array or
    /// heap pointer) — the "variables of interest" of the coherence tracker.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Ty::Ptr(_) | Ty::Array(_, _))
    }

    /// Total element count of a static array (product of dims).
    pub fn static_len(&self) -> Option<u64> {
        match self {
            Ty::Array(_, dims) => Some(dims.iter().product()),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => write!(f, "void"),
            Ty::Scalar(s) => write!(f, "{s}"),
            Ty::Ptr(s) => write!(f, "{s} *"),
            Ty::Array(s, dims) => {
                write!(f, "{s}")?;
                for d in dims {
                    write!(f, "[{d}]")?;
                }
                Ok(())
            }
        }
    }
}

/// A raw `#pragma` attachment.
#[derive(Debug, Clone, PartialEq)]
pub struct Pragma {
    /// Text after `#pragma`, whitespace-normalized.
    pub text: String,
    /// Source location of the pragma line.
    pub span: Span,
}

/// Binary operators (C spellings).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// True for `&&`/`||` (short-circuit evaluation).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// True for comparison operators (result type int).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!`.
    Not,
    /// Bitwise not `~`.
    BitNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
            UnOp::BitNot => write!(f, "~"),
        }
    }
}

/// Compound-assignment operators (`=` is [`AssignOp::Set`]).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
}

impl AssignOp {
    /// The binary operator a compound assignment expands to, if any.
    pub fn binop(self) -> Option<BinOp> {
        match self {
            AssignOp::Set => None,
            AssignOp::Add => Some(BinOp::Add),
            AssignOp::Sub => Some(BinOp::Sub),
            AssignOp::Mul => Some(BinOp::Mul),
            AssignOp::Div => Some(BinOp::Div),
        }
    }
}

impl fmt::Display for AssignOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignOp::Set => write!(f, "="),
            AssignOp::Add => write!(f, "+="),
            AssignOp::Sub => write!(f, "-="),
            AssignOp::Mul => write!(f, "*="),
            AssignOp::Div => write!(f, "/="),
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique node id.
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// What kind of expression.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal; bool marks an `f` suffix.
    FloatLit(f64, bool),
    /// Variable reference.
    Var(String),
    /// Array/pointer element access `base[i0][i1]...`.
    Index {
        /// Array or pointer variable name.
        base: String,
        /// One index per dimension.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conditional `c ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_e: Box<Expr>,
        /// Value when false.
        else_e: Box<Expr>,
    },
    /// Function or intrinsic call.
    Call {
        /// Callee name (`sqrt`, `malloc`, or a user function).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// C-style cast `(double)x` or `(double *)malloc(...)`.
    Cast {
        /// Target type.
        ty: Ty,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `sizeof(double)` etc.
    SizeOf(ScalarTy),
}

impl Expr {
    /// Visit this expression and all sub-expressions (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match &self.kind {
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(..)
            | ExprKind::Var(_)
            | ExprKind::SizeOf(_) => {}
            ExprKind::Index { indices, .. } => {
                for e in indices {
                    e.walk(f);
                }
            }
            ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => expr.walk(f),
            ExprKind::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                cond.walk(f);
                then_e.walk(f);
                else_e.walk(f);
            }
            ExprKind::Call { args, .. } => {
                for e in args {
                    e.walk(f);
                }
            }
        }
    }

    /// Names of all variables *read* by this expression, including array
    /// bases (index expressions are walked too).
    pub fn reads(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| match &e.kind {
            ExprKind::Var(n) => out.push(n.clone()),
            ExprKind::Index { base, .. } => out.push(base.clone()),
            _ => {}
        });
        out
    }
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar or pointer variable.
    Var(String),
    /// Array/pointer element.
    Index {
        /// Array or pointer variable name.
        base: String,
        /// One index per dimension.
        indices: Vec<Expr>,
    },
}

impl LValue {
    /// The variable name being written.
    pub fn base(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::Index { base, .. } => base,
        }
    }

    /// True if the write covers the whole variable (a scalar/pointer
    /// assignment), false for element writes (partial writes — the paper's
    /// CG `q` example).
    pub fn is_total(&self) -> bool {
        matches!(self, LValue::Var(_))
    }
}

/// A variable declaration (global, local, or parameter-like).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Node id.
    pub id: NodeId,
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Optional initializer (scalars only).
    pub init: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// A statement node with attached pragmas.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Unique node id.
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// Pragmas immediately preceding this statement.
    pub pragmas: Vec<Pragma>,
    /// Statement body.
    pub kind: StmtKind,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local declaration.
    Decl(VarDecl),
    /// Expression statement (usually a call).
    Expr(Expr),
    /// Assignment `target op= value`.
    Assign {
        /// Destination.
        target: LValue,
        /// `=`, `+=`, ...
        op: AssignOp,
        /// Source expression.
        value: Expr,
    },
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Init statement (declaration or assignment), if any.
        init: Option<Box<Stmt>>,
        /// Loop condition, if any.
        cond: Option<Expr>,
        /// Step statement, if any.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// A braced block (data regions attach their pragma here).
    Block(Block),
    /// `return [expr];`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// Function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (scalar or pointer).
    pub ty: Ty,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Node id.
    pub id: NodeId,
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source span.
    pub span: Span,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Global variable.
    Global(VarDecl),
    /// Function definition.
    Func(Func),
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Next unused [`NodeId`]; passes that synthesize nodes allocate from
    /// here via [`Program::fresh_id`].
    pub next_id: NodeId,
}

impl Program {
    /// Allocate a fresh node id.
    pub fn fresh_id(&mut self) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.items.iter().find_map(|it| match it {
            Item::Func(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// Mutable lookup of a function by name.
    pub fn func_mut(&mut self, name: &str) -> Option<&mut Func> {
        self.items.iter_mut().find_map(|it| match it {
            Item::Func(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// Iterate over all global variable declarations.
    pub fn globals(&self) -> impl Iterator<Item = &VarDecl> {
        self.items.iter().filter_map(|it| match it {
            Item::Global(g) => Some(g),
            _ => None,
        })
    }
}

/// Walk every statement in a block, depth-first, pre-order.
pub fn walk_stmts<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &block.stmts {
        walk_stmt(s, f);
    }
}

/// Walk one statement and its nested statements, pre-order.
pub fn walk_stmt<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Stmt)) {
    f(stmt);
    match &stmt.kind {
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            walk_stmts(then_blk, f);
            if let Some(e) = else_blk {
                walk_stmts(e, f);
            }
        }
        StmtKind::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                walk_stmt(i, f);
            }
            if let Some(s) = step {
                walk_stmt(s, f);
            }
            walk_stmts(body, f);
        }
        StmtKind::While { body, .. } => walk_stmts(body, f),
        StmtKind::Block(b) => walk_stmts(b, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(kind: ExprKind) -> Expr {
        Expr {
            id: 0,
            span: Span::dummy(),
            kind,
        }
    }

    #[test]
    fn scalar_sizes() {
        assert_eq!(ScalarTy::Int.size_bytes(), 4);
        assert_eq!(ScalarTy::Double.size_bytes(), 8);
        assert!(ScalarTy::Float.is_float());
        assert!(!ScalarTy::Long.is_float());
    }

    #[test]
    fn ty_aggregate_and_len() {
        assert!(Ty::Ptr(ScalarTy::Double).is_aggregate());
        assert!(!Ty::Scalar(ScalarTy::Int).is_aggregate());
        assert_eq!(
            Ty::Array(ScalarTy::Float, vec![4, 8]).static_len(),
            Some(32)
        );
        assert_eq!(Ty::Ptr(ScalarTy::Float).static_len(), None);
    }

    #[test]
    fn ty_display() {
        assert_eq!(Ty::Ptr(ScalarTy::Double).to_string(), "double *");
        assert_eq!(
            Ty::Array(ScalarTy::Int, vec![3, 5]).to_string(),
            "int[3][5]"
        );
    }

    #[test]
    fn expr_reads_collects_bases() {
        let expr = e(ExprKind::Binary {
            op: BinOp::Add,
            lhs: Box::new(e(ExprKind::Index {
                base: "a".into(),
                indices: vec![e(ExprKind::Var("i".into()))],
            })),
            rhs: Box::new(e(ExprKind::Var("x".into()))),
        });
        let mut reads = expr.reads();
        reads.sort();
        assert_eq!(reads, vec!["a", "i", "x"]);
    }

    #[test]
    fn lvalue_totality() {
        assert!(LValue::Var("p".into()).is_total());
        assert!(!LValue::Index {
            base: "a".into(),
            indices: vec![]
        }
        .is_total());
    }

    #[test]
    fn assign_op_expansion() {
        assert_eq!(AssignOp::Add.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::Set.binop(), None);
    }

    #[test]
    fn fresh_ids_monotonic() {
        let mut p = Program::default();
        let a = p.fresh_id();
        let b = p.fresh_id();
        assert!(b > a);
    }
}
