//! Structural semantics fingerprint of a [`Program`].
//!
//! An FNV-1a hash over everything that determines a program's meaning —
//! item order, names, types, literals, operators, and attached pragma
//! text — while ignoring [`NodeId`]s and [`crate::Span`]s, which change
//! on every re-parse. The invariant the fuzzer's mutator and the
//! pretty-printer property tests rely on:
//!
//! ```text
//! fingerprint(parse(print(ast))) == fingerprint(ast)
//! ```
//!
//! i.e. a print → parse round trip is semantics-preserving even though it
//! renumbers every node.

use crate::ast::*;

/// FNV-1a, kept local so the crate stays dependency-free.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for x in b {
            self.0 ^= u64::from(*x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

fn hash_scalar(h: &mut Fnv, s: ScalarTy) {
    h.u8(match s {
        ScalarTy::Int => 0,
        ScalarTy::Long => 1,
        ScalarTy::Float => 2,
        ScalarTy::Double => 3,
    });
}

fn hash_ty(h: &mut Fnv, ty: &Ty) {
    match ty {
        Ty::Void => h.u8(10),
        Ty::Scalar(s) => {
            h.u8(11);
            hash_scalar(h, *s);
        }
        Ty::Ptr(s) => {
            h.u8(12);
            hash_scalar(h, *s);
        }
        Ty::Array(s, dims) => {
            h.u8(13);
            hash_scalar(h, *s);
            h.u64(dims.len() as u64);
            for d in dims {
                h.u64(*d);
            }
        }
    }
}

fn hash_expr(h: &mut Fnv, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit(v) => {
            h.u8(20);
            h.u64(*v as u64);
        }
        ExprKind::FloatLit(v, suf) => {
            h.u8(21);
            h.u64(v.to_bits());
            h.u8(u8::from(*suf));
        }
        ExprKind::Var(n) => {
            h.u8(22);
            h.str(n);
        }
        ExprKind::Index { base, indices } => {
            h.u8(23);
            h.str(base);
            h.u64(indices.len() as u64);
            for i in indices {
                hash_expr(h, i);
            }
        }
        ExprKind::Unary { op, expr } => {
            h.u8(24);
            h.str(&op.to_string());
            hash_expr(h, expr);
        }
        ExprKind::Binary { op, lhs, rhs } => {
            h.u8(25);
            h.str(&op.to_string());
            hash_expr(h, lhs);
            hash_expr(h, rhs);
        }
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            h.u8(26);
            hash_expr(h, cond);
            hash_expr(h, then_e);
            hash_expr(h, else_e);
        }
        ExprKind::Call { name, args } => {
            h.u8(27);
            h.str(name);
            h.u64(args.len() as u64);
            for a in args {
                hash_expr(h, a);
            }
        }
        ExprKind::Cast { ty, expr } => {
            h.u8(28);
            hash_ty(h, ty);
            hash_expr(h, expr);
        }
        ExprKind::SizeOf(s) => {
            h.u8(29);
            hash_scalar(h, *s);
        }
    }
}

fn hash_lvalue(h: &mut Fnv, lv: &LValue) {
    match lv {
        LValue::Var(n) => {
            h.u8(30);
            h.str(n);
        }
        LValue::Index { base, indices } => {
            h.u8(31);
            h.str(base);
            h.u64(indices.len() as u64);
            for i in indices {
                hash_expr(h, i);
            }
        }
    }
}

fn hash_decl(h: &mut Fnv, d: &VarDecl) {
    h.str(&d.name);
    hash_ty(h, &d.ty);
    match &d.init {
        None => h.u8(0),
        Some(e) => {
            h.u8(1);
            hash_expr(h, e);
        }
    }
}

fn hash_block(h: &mut Fnv, b: &Block) {
    h.u64(b.stmts.len() as u64);
    for s in &b.stmts {
        hash_stmt(h, s);
    }
}

fn hash_stmt(h: &mut Fnv, s: &Stmt) {
    // Pragma text is whitespace-normalized by the lexer, so it is stable
    // across print → parse round trips and carries the directive meaning.
    h.u64(s.pragmas.len() as u64);
    for p in &s.pragmas {
        h.str(&p.text);
    }
    match &s.kind {
        StmtKind::Decl(d) => {
            h.u8(40);
            hash_decl(h, d);
        }
        StmtKind::Expr(e) => {
            h.u8(41);
            hash_expr(h, e);
        }
        StmtKind::Assign { target, op, value } => {
            h.u8(42);
            hash_lvalue(h, target);
            h.str(&op.to_string());
            hash_expr(h, value);
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            h.u8(43);
            hash_expr(h, cond);
            hash_block(h, then_blk);
            match else_blk {
                None => h.u8(0),
                Some(b) => {
                    h.u8(1);
                    hash_block(h, b);
                }
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            h.u8(44);
            match init {
                None => h.u8(0),
                Some(s) => {
                    h.u8(1);
                    hash_stmt(h, s);
                }
            }
            match cond {
                None => h.u8(0),
                Some(e) => {
                    h.u8(1);
                    hash_expr(h, e);
                }
            }
            match step {
                None => h.u8(0),
                Some(s) => {
                    h.u8(1);
                    hash_stmt(h, s);
                }
            }
            hash_block(h, body);
        }
        StmtKind::While { cond, body } => {
            h.u8(45);
            hash_expr(h, cond);
            hash_block(h, body);
        }
        StmtKind::Block(b) => {
            h.u8(46);
            hash_block(h, b);
        }
        StmtKind::Return(e) => {
            h.u8(47);
            match e {
                None => h.u8(0),
                Some(e) => {
                    h.u8(1);
                    hash_expr(h, e);
                }
            }
        }
        StmtKind::Break => h.u8(48),
        StmtKind::Continue => h.u8(49),
    }
}

/// Semantics fingerprint of a whole program. Ignores node ids and spans;
/// covers everything else, in source order.
pub fn fingerprint_program(p: &Program) -> u64 {
    let mut h = Fnv::new();
    h.u64(p.items.len() as u64);
    for it in &p.items {
        match it {
            Item::Global(g) => {
                h.u8(1);
                hash_decl(&mut h, g);
            }
            Item::Func(f) => {
                h.u8(2);
                h.str(&f.name);
                hash_ty(&mut h, &f.ret);
                h.u64(f.params.len() as u64);
                for pr in &f.params {
                    h.str(&pr.name);
                    hash_ty(&mut h, &pr.ty);
                }
                hash_block(&mut h, &f.body);
            }
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::print_program;

    const SRC: &str = "double a[16];\nint total;\nvoid main() {\n int i;\n #pragma acc data copyin(a)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 16; i++) { a[i] = a[i] * 2.0 + 1.0; }\n }\n for (i = 0; i < 16; i++) { total = total + (int)a[i]; }\n}";

    #[test]
    fn stable_across_reparse() {
        let p1 = parse(SRC).unwrap();
        let p2 = parse(&print_program(&p1)).unwrap();
        assert_eq!(fingerprint_program(&p1), fingerprint_program(&p2));
    }

    #[test]
    fn sensitive_to_semantic_change() {
        let p1 = parse(SRC).unwrap();
        let p2 = parse(&SRC.replace("2.0", "3.0")).unwrap();
        let p3 = parse(&SRC.replace("copyin", "copyout")).unwrap();
        assert_ne!(fingerprint_program(&p1), fingerprint_program(&p2));
        assert_ne!(fingerprint_program(&p1), fingerprint_program(&p3));
    }

    #[test]
    fn ignores_ids() {
        let mut p1 = parse(SRC).unwrap();
        let before = fingerprint_program(&p1);
        // Renumber: allocating ids changes next_id but not the hash.
        let _ = p1.fresh_id();
        assert_eq!(before, fingerprint_program(&p1));
    }
}
