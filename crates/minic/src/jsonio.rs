//! Structural JSON codec for [`Program`] and [`Sema`] — the frontend half
//! of the on-disk artifact cache.
//!
//! The encoding is *faithful*, not pretty: every [`NodeId`], span and
//! pragma survives the round-trip bit-for-bit, because downstream tables
//! (dataflow results, kernel descriptors, instrumentation sites) key on
//! node ids and would silently detach if a reparse renumbered them. Float
//! literals are stored as IEEE-754 bit patterns for the same reason.
//!
//! Decoding never panics — any malformed shape is an `Err(String)`, which
//! the cache layer treats as a corrupt entry and recomputes.

use crate::ast::*;
use crate::sema::{FuncInfo, Sema};
use crate::span::Span;
use openarc_trace::json::Json;

// ---------------------------------------------------------------------------
// Encoding

fn span_to_json(sp: &Span) -> Json {
    Json::Arr(vec![
        Json::U64(sp.start as u64),
        Json::U64(sp.end as u64),
        Json::U64(sp.line as u64),
    ])
}

/// Encode a scalar type (its C spelling).
pub fn scalar_to_json(s: ScalarTy) -> Json {
    Json::from(s.to_string())
}

/// Encode a MiniC type.
pub fn ty_to_json(ty: &Ty) -> Json {
    match ty {
        Ty::Void => Json::Arr(vec![Json::from("void")]),
        Ty::Scalar(s) => Json::Arr(vec![Json::from("scalar"), scalar_to_json(*s)]),
        Ty::Ptr(s) => Json::Arr(vec![Json::from("ptr"), scalar_to_json(*s)]),
        Ty::Array(s, dims) => Json::Arr(vec![
            Json::from("array"),
            scalar_to_json(*s),
            Json::Arr(dims.iter().map(|d| Json::U64(*d)).collect()),
        ]),
    }
}

fn expr_to_json(e: &Expr) -> Json {
    let mut a = vec![Json::U64(e.id as u64), span_to_json(&e.span)];
    match &e.kind {
        ExprKind::IntLit(v) => {
            a.push(Json::from("int"));
            a.push(Json::I64(*v));
        }
        ExprKind::FloatLit(v, f_suffix) => {
            a.push(Json::from("float"));
            a.push(Json::U64(v.to_bits()));
            a.push(Json::from(*f_suffix));
        }
        ExprKind::Var(n) => {
            a.push(Json::from("var"));
            a.push(Json::from(n.as_str()));
        }
        ExprKind::Index { base, indices } => {
            a.push(Json::from("idx"));
            a.push(Json::from(base.as_str()));
            a.push(Json::Arr(indices.iter().map(expr_to_json).collect()));
        }
        ExprKind::Unary { op, expr } => {
            a.push(Json::from("un"));
            a.push(Json::from(op.to_string()));
            a.push(expr_to_json(expr));
        }
        ExprKind::Binary { op, lhs, rhs } => {
            a.push(Json::from("bin"));
            a.push(Json::from(op.to_string()));
            a.push(expr_to_json(lhs));
            a.push(expr_to_json(rhs));
        }
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            a.push(Json::from("tern"));
            a.push(expr_to_json(cond));
            a.push(expr_to_json(then_e));
            a.push(expr_to_json(else_e));
        }
        ExprKind::Call { name, args } => {
            a.push(Json::from("call"));
            a.push(Json::from(name.as_str()));
            a.push(Json::Arr(args.iter().map(expr_to_json).collect()));
        }
        ExprKind::Cast { ty, expr } => {
            a.push(Json::from("cast"));
            a.push(ty_to_json(ty));
            a.push(expr_to_json(expr));
        }
        ExprKind::SizeOf(s) => {
            a.push(Json::from("sizeof"));
            a.push(scalar_to_json(*s));
        }
    }
    Json::Arr(a)
}

fn opt_expr_to_json(e: &Option<Expr>) -> Json {
    match e {
        Some(e) => expr_to_json(e),
        None => Json::Null,
    }
}

fn lvalue_to_json(lv: &LValue) -> Json {
    match lv {
        LValue::Var(n) => Json::Arr(vec![Json::from("var"), Json::from(n.as_str())]),
        LValue::Index { base, indices } => Json::Arr(vec![
            Json::from("idx"),
            Json::from(base.as_str()),
            Json::Arr(indices.iter().map(expr_to_json).collect()),
        ]),
    }
}

fn vardecl_to_json(vd: &VarDecl) -> Json {
    Json::obj(vec![
        ("id", Json::U64(vd.id as u64)),
        ("name", Json::from(vd.name.as_str())),
        ("ty", ty_to_json(&vd.ty)),
        ("init", opt_expr_to_json(&vd.init)),
        ("span", span_to_json(&vd.span)),
    ])
}

fn block_to_json(b: &Block) -> Json {
    Json::Arr(b.stmts.iter().map(stmt_to_json).collect())
}

fn stmt_to_json(s: &Stmt) -> Json {
    let kind = match &s.kind {
        StmtKind::Decl(vd) => Json::Arr(vec![Json::from("decl"), vardecl_to_json(vd)]),
        StmtKind::Expr(e) => Json::Arr(vec![Json::from("expr"), expr_to_json(e)]),
        StmtKind::Assign { target, op, value } => Json::Arr(vec![
            Json::from("assign"),
            lvalue_to_json(target),
            Json::from(op.to_string()),
            expr_to_json(value),
        ]),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => Json::Arr(vec![
            Json::from("if"),
            expr_to_json(cond),
            block_to_json(then_blk),
            match else_blk {
                Some(b) => block_to_json(b),
                None => Json::Null,
            },
        ]),
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => Json::Arr(vec![
            Json::from("for"),
            match init {
                Some(s) => stmt_to_json(s),
                None => Json::Null,
            },
            opt_expr_to_json(cond),
            match step {
                Some(s) => stmt_to_json(s),
                None => Json::Null,
            },
            block_to_json(body),
        ]),
        StmtKind::While { cond, body } => Json::Arr(vec![
            Json::from("while"),
            expr_to_json(cond),
            block_to_json(body),
        ]),
        StmtKind::Block(b) => Json::Arr(vec![Json::from("block"), block_to_json(b)]),
        StmtKind::Return(e) => Json::Arr(vec![Json::from("return"), opt_expr_to_json(e)]),
        StmtKind::Break => Json::Arr(vec![Json::from("break")]),
        StmtKind::Continue => Json::Arr(vec![Json::from("continue")]),
    };
    Json::obj(vec![
        ("id", Json::U64(s.id as u64)),
        ("span", span_to_json(&s.span)),
        (
            "pragmas",
            Json::Arr(
                s.pragmas
                    .iter()
                    .map(|p| Json::Arr(vec![Json::from(p.text.as_str()), span_to_json(&p.span)]))
                    .collect(),
            ),
        ),
        ("k", kind),
    ])
}

/// Encode a whole program, ids and spans included.
pub fn program_to_json(p: &Program) -> Json {
    let items = p
        .items
        .iter()
        .map(|it| match it {
            Item::Global(vd) => Json::Arr(vec![Json::from("global"), vardecl_to_json(vd)]),
            Item::Func(f) => Json::Arr(vec![
                Json::from("func"),
                Json::obj(vec![
                    ("id", Json::U64(f.id as u64)),
                    ("name", Json::from(f.name.as_str())),
                    ("ret", ty_to_json(&f.ret)),
                    (
                        "params",
                        Json::Arr(
                            f.params
                                .iter()
                                .map(|p| {
                                    Json::Arr(vec![Json::from(p.name.as_str()), ty_to_json(&p.ty)])
                                })
                                .collect(),
                        ),
                    ),
                    ("body", block_to_json(&f.body)),
                    ("span", span_to_json(&f.span)),
                ]),
            ]),
        })
        .collect();
    Json::obj(vec![
        ("next_id", Json::U64(p.next_id as u64)),
        ("items", Json::Arr(items)),
    ])
}

/// Encode a semantic-analysis table. Map entries are emitted in sorted
/// order so identical tables serialize to identical bytes.
pub fn sema_to_json(s: &Sema) -> Json {
    let mut globals: Vec<(&String, &Ty)> = s.globals.iter().collect();
    globals.sort_by_key(|(k, _)| k.as_str());
    let mut funcs: Vec<(&String, &FuncInfo)> = s.funcs.iter().collect();
    funcs.sort_by_key(|(k, _)| k.as_str());
    let mut expr_ty: Vec<(&NodeId, &Ty)> = s.expr_ty.iter().collect();
    expr_ty.sort_by_key(|(id, _)| **id);
    Json::obj(vec![
        (
            "globals",
            Json::Arr(
                globals
                    .iter()
                    .map(|(k, ty)| Json::Arr(vec![Json::from(k.as_str()), ty_to_json(ty)]))
                    .collect(),
            ),
        ),
        (
            "funcs",
            Json::Arr(
                funcs
                    .iter()
                    .map(|(k, fi)| {
                        let mut locals: Vec<(&String, &Ty)> = fi.locals.iter().collect();
                        locals.sort_by_key(|(k, _)| k.as_str());
                        Json::Arr(vec![
                            Json::from(k.as_str()),
                            Json::obj(vec![
                                ("ret", ty_to_json(&fi.ret)),
                                (
                                    "params",
                                    Json::Arr(
                                        fi.params
                                            .iter()
                                            .map(|p| {
                                                Json::Arr(vec![
                                                    Json::from(p.name.as_str()),
                                                    ty_to_json(&p.ty),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "locals",
                                    Json::Arr(
                                        locals
                                            .iter()
                                            .map(|(k, ty)| {
                                                Json::Arr(vec![
                                                    Json::from(k.as_str()),
                                                    ty_to_json(ty),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "expr_ty",
            Json::Arr(
                expr_ty
                    .iter()
                    .map(|(id, ty)| Json::Arr(vec![Json::U64(**id as u64), ty_to_json(ty)]))
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Decoding

type R<T> = Result<T, String>;

fn arr<'a>(v: &'a Json, what: &str) -> R<&'a [Json]> {
    v.as_arr().ok_or_else(|| format!("{what}: expected array"))
}

fn str_of<'a>(v: &'a Json, what: &str) -> R<&'a str> {
    v.as_str().ok_or_else(|| format!("{what}: expected string"))
}

fn u32_of(v: &Json, what: &str) -> R<u32> {
    v.as_u64()
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| format!("{what}: expected u32"))
}

fn field<'a>(v: &'a Json, key: &str) -> R<&'a Json> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn span_from_json(v: &Json) -> R<Span> {
    let a = arr(v, "span")?;
    if a.len() != 3 {
        return Err("span: expected 3 elements".into());
    }
    Ok(Span {
        start: u32_of(&a[0], "span.start")?,
        end: u32_of(&a[1], "span.end")?,
        line: u32_of(&a[2], "span.line")?,
    })
}

/// Decode a scalar type encoded by [`scalar_to_json`].
pub fn scalar_from_json(v: &Json) -> R<ScalarTy> {
    match str_of(v, "scalar type")? {
        "int" => Ok(ScalarTy::Int),
        "long" => Ok(ScalarTy::Long),
        "float" => Ok(ScalarTy::Float),
        "double" => Ok(ScalarTy::Double),
        other => Err(format!("unknown scalar type {other:?}")),
    }
}

/// Decode a type encoded by [`ty_to_json`].
pub fn ty_from_json(v: &Json) -> R<Ty> {
    let a = arr(v, "type")?;
    let tag = str_of(a.first().ok_or("type: empty")?, "type tag")?;
    match tag {
        "void" => Ok(Ty::Void),
        "scalar" => Ok(Ty::Scalar(scalar_from_json(
            a.get(1).ok_or("scalar: missing payload")?,
        )?)),
        "ptr" => Ok(Ty::Ptr(scalar_from_json(
            a.get(1).ok_or("ptr: missing payload")?,
        )?)),
        "array" => {
            let s = scalar_from_json(a.get(1).ok_or("array: missing scalar")?)?;
            let dims = arr(a.get(2).ok_or("array: missing dims")?, "array dims")?
                .iter()
                .map(|d| {
                    d.as_u64()
                        .ok_or_else(|| "array dim: expected u64".to_string())
                })
                .collect::<R<Vec<u64>>>()?;
            Ok(Ty::Array(s, dims))
        }
        other => Err(format!("unknown type tag {other:?}")),
    }
}

/// Decode a unary operator from its C spelling (the `Display` form).
pub fn unop_from_json(v: &Json) -> R<UnOp> {
    match str_of(v, "unary op")? {
        "-" => Ok(UnOp::Neg),
        "!" => Ok(UnOp::Not),
        "~" => Ok(UnOp::BitNot),
        other => Err(format!("unknown unary op {other:?}")),
    }
}

/// Decode a binary operator from its C spelling (the `Display` form).
pub fn binop_from_json(v: &Json) -> R<BinOp> {
    let ops = [
        ("+", BinOp::Add),
        ("-", BinOp::Sub),
        ("*", BinOp::Mul),
        ("/", BinOp::Div),
        ("%", BinOp::Rem),
        ("<", BinOp::Lt),
        (">", BinOp::Gt),
        ("<=", BinOp::Le),
        (">=", BinOp::Ge),
        ("==", BinOp::Eq),
        ("!=", BinOp::Ne),
        ("&&", BinOp::And),
        ("||", BinOp::Or),
        ("&", BinOp::BitAnd),
        ("|", BinOp::BitOr),
        ("^", BinOp::BitXor),
        ("<<", BinOp::Shl),
        (">>", BinOp::Shr),
    ];
    let s = str_of(v, "binary op")?;
    ops.iter()
        .find(|(sym, _)| *sym == s)
        .map(|(_, op)| *op)
        .ok_or_else(|| format!("unknown binary op {s:?}"))
}

fn assignop_from_json(v: &Json) -> R<AssignOp> {
    match str_of(v, "assign op")? {
        "=" => Ok(AssignOp::Set),
        "+=" => Ok(AssignOp::Add),
        "-=" => Ok(AssignOp::Sub),
        "*=" => Ok(AssignOp::Mul),
        "/=" => Ok(AssignOp::Div),
        other => Err(format!("unknown assign op {other:?}")),
    }
}

fn exprs_from_json(v: &Json, what: &str) -> R<Vec<Expr>> {
    arr(v, what)?.iter().map(expr_from_json).collect()
}

fn expr_from_json(v: &Json) -> R<Expr> {
    let a = arr(v, "expr")?;
    if a.len() < 3 {
        return Err("expr: too short".into());
    }
    let id = u32_of(&a[0], "expr id")?;
    let span = span_from_json(&a[1])?;
    let tag = str_of(&a[2], "expr tag")?;
    let get = |i: usize| a.get(i).ok_or_else(|| format!("expr {tag}: missing [{i}]"));
    let kind = match tag {
        "int" => ExprKind::IntLit(
            get(3)?
                .as_i64()
                .ok_or_else(|| "int literal: expected i64".to_string())?,
        ),
        "float" => ExprKind::FloatLit(
            f64::from_bits(
                get(3)?
                    .as_u64()
                    .ok_or_else(|| "float literal: expected bits".to_string())?,
            ),
            get(4)?
                .as_bool()
                .ok_or_else(|| "float literal: expected suffix flag".to_string())?,
        ),
        "var" => ExprKind::Var(str_of(get(3)?, "var name")?.to_string()),
        "idx" => ExprKind::Index {
            base: str_of(get(3)?, "index base")?.to_string(),
            indices: exprs_from_json(get(4)?, "indices")?,
        },
        "un" => ExprKind::Unary {
            op: unop_from_json(get(3)?)?,
            expr: Box::new(expr_from_json(get(4)?)?),
        },
        "bin" => ExprKind::Binary {
            op: binop_from_json(get(3)?)?,
            lhs: Box::new(expr_from_json(get(4)?)?),
            rhs: Box::new(expr_from_json(get(5)?)?),
        },
        "tern" => ExprKind::Ternary {
            cond: Box::new(expr_from_json(get(3)?)?),
            then_e: Box::new(expr_from_json(get(4)?)?),
            else_e: Box::new(expr_from_json(get(5)?)?),
        },
        "call" => ExprKind::Call {
            name: str_of(get(3)?, "call name")?.to_string(),
            args: exprs_from_json(get(4)?, "call args")?,
        },
        "cast" => ExprKind::Cast {
            ty: ty_from_json(get(3)?)?,
            expr: Box::new(expr_from_json(get(4)?)?),
        },
        "sizeof" => ExprKind::SizeOf(scalar_from_json(get(3)?)?),
        other => return Err(format!("unknown expr tag {other:?}")),
    };
    Ok(Expr { id, span, kind })
}

fn opt_expr_from_json(v: &Json) -> R<Option<Expr>> {
    match v {
        Json::Null => Ok(None),
        other => Ok(Some(expr_from_json(other)?)),
    }
}

fn lvalue_from_json(v: &Json) -> R<LValue> {
    let a = arr(v, "lvalue")?;
    match str_of(a.first().ok_or("lvalue: empty")?, "lvalue tag")? {
        "var" => Ok(LValue::Var(
            str_of(a.get(1).ok_or("lvalue var: missing name")?, "lvalue name")?.to_string(),
        )),
        "idx" => Ok(LValue::Index {
            base: str_of(a.get(1).ok_or("lvalue idx: missing base")?, "lvalue base")?.to_string(),
            indices: exprs_from_json(
                a.get(2).ok_or("lvalue idx: missing indices")?,
                "lvalue indices",
            )?,
        }),
        other => Err(format!("unknown lvalue tag {other:?}")),
    }
}

fn vardecl_from_json(v: &Json) -> R<VarDecl> {
    Ok(VarDecl {
        id: u32_of(field(v, "id")?, "decl id")?,
        name: str_of(field(v, "name")?, "decl name")?.to_string(),
        ty: ty_from_json(field(v, "ty")?)?,
        init: opt_expr_from_json(field(v, "init")?)?,
        span: span_from_json(field(v, "span")?)?,
    })
}

fn block_from_json(v: &Json) -> R<Block> {
    Ok(Block {
        stmts: arr(v, "block")?
            .iter()
            .map(stmt_from_json)
            .collect::<R<_>>()?,
    })
}

fn stmt_from_json(v: &Json) -> R<Stmt> {
    let id = u32_of(field(v, "id")?, "stmt id")?;
    let span = span_from_json(field(v, "span")?)?;
    let pragmas = arr(field(v, "pragmas")?, "pragmas")?
        .iter()
        .map(|p| {
            let a = arr(p, "pragma")?;
            if a.len() != 2 {
                return Err("pragma: expected [text, span]".into());
            }
            Ok(Pragma {
                text: str_of(&a[0], "pragma text")?.to_string(),
                span: span_from_json(&a[1])?,
            })
        })
        .collect::<R<Vec<Pragma>>>()?;
    let k = arr(field(v, "k")?, "stmt kind")?;
    let tag = str_of(k.first().ok_or("stmt kind: empty")?, "stmt tag")?;
    let get = |i: usize| k.get(i).ok_or_else(|| format!("stmt {tag}: missing [{i}]"));
    let kind = match tag {
        "decl" => StmtKind::Decl(vardecl_from_json(get(1)?)?),
        "expr" => StmtKind::Expr(expr_from_json(get(1)?)?),
        "assign" => StmtKind::Assign {
            target: lvalue_from_json(get(1)?)?,
            op: assignop_from_json(get(2)?)?,
            value: expr_from_json(get(3)?)?,
        },
        "if" => StmtKind::If {
            cond: expr_from_json(get(1)?)?,
            then_blk: block_from_json(get(2)?)?,
            else_blk: match get(3)? {
                Json::Null => None,
                other => Some(block_from_json(other)?),
            },
        },
        "for" => StmtKind::For {
            init: match get(1)? {
                Json::Null => None,
                other => Some(Box::new(stmt_from_json(other)?)),
            },
            cond: opt_expr_from_json(get(2)?)?,
            step: match get(3)? {
                Json::Null => None,
                other => Some(Box::new(stmt_from_json(other)?)),
            },
            body: block_from_json(get(4)?)?,
        },
        "while" => StmtKind::While {
            cond: expr_from_json(get(1)?)?,
            body: block_from_json(get(2)?)?,
        },
        "block" => StmtKind::Block(block_from_json(get(1)?)?),
        "return" => StmtKind::Return(opt_expr_from_json(get(1)?)?),
        "break" => StmtKind::Break,
        "continue" => StmtKind::Continue,
        other => return Err(format!("unknown stmt tag {other:?}")),
    };
    Ok(Stmt {
        id,
        span,
        pragmas,
        kind,
    })
}

/// Decode a program encoded by [`program_to_json`].
pub fn program_from_json(v: &Json) -> R<Program> {
    let next_id = u32_of(field(v, "next_id")?, "next_id")?;
    let items = arr(field(v, "items")?, "items")?
        .iter()
        .map(|it| {
            let a = arr(it, "item")?;
            match str_of(a.first().ok_or("item: empty")?, "item tag")? {
                "global" => Ok(Item::Global(vardecl_from_json(
                    a.get(1).ok_or("global: missing decl")?,
                )?)),
                "func" => {
                    let f = a.get(1).ok_or("func: missing body")?;
                    Ok(Item::Func(Func {
                        id: u32_of(field(f, "id")?, "func id")?,
                        name: str_of(field(f, "name")?, "func name")?.to_string(),
                        ret: ty_from_json(field(f, "ret")?)?,
                        params: arr(field(f, "params")?, "params")?
                            .iter()
                            .map(param_from_json)
                            .collect::<R<_>>()?,
                        body: block_from_json(field(f, "body")?)?,
                        span: span_from_json(field(f, "span")?)?,
                    }))
                }
                other => Err(format!("unknown item tag {other:?}")),
            }
        })
        .collect::<R<Vec<Item>>>()?;
    Ok(Program { items, next_id })
}

fn param_from_json(v: &Json) -> R<Param> {
    let a = arr(v, "param")?;
    if a.len() != 2 {
        return Err("param: expected [name, ty]".into());
    }
    Ok(Param {
        name: str_of(&a[0], "param name")?.to_string(),
        ty: ty_from_json(&a[1])?,
    })
}

/// Decode a semantic table encoded by [`sema_to_json`].
pub fn sema_from_json(v: &Json) -> R<Sema> {
    let mut sema = Sema::default();
    for entry in arr(field(v, "globals")?, "globals")? {
        let a = arr(entry, "global entry")?;
        if a.len() != 2 {
            return Err("global entry: expected [name, ty]".into());
        }
        sema.globals.insert(
            str_of(&a[0], "global name")?.to_string(),
            ty_from_json(&a[1])?,
        );
    }
    for entry in arr(field(v, "funcs")?, "funcs")? {
        let a = arr(entry, "func entry")?;
        if a.len() != 2 {
            return Err("func entry: expected [name, info]".into());
        }
        let name = str_of(&a[0], "func name")?.to_string();
        let info = &a[1];
        let mut locals = std::collections::HashMap::new();
        for l in arr(field(info, "locals")?, "locals")? {
            let la = arr(l, "local entry")?;
            if la.len() != 2 {
                return Err("local entry: expected [name, ty]".into());
            }
            locals.insert(
                str_of(&la[0], "local name")?.to_string(),
                ty_from_json(&la[1])?,
            );
        }
        sema.funcs.insert(
            name,
            FuncInfo {
                ret: ty_from_json(field(info, "ret")?)?,
                params: arr(field(info, "params")?, "params")?
                    .iter()
                    .map(param_from_json)
                    .collect::<R<_>>()?,
                locals,
            },
        );
    }
    for entry in arr(field(v, "expr_ty")?, "expr_ty")? {
        let a = arr(entry, "expr_ty entry")?;
        if a.len() != 2 {
            return Err("expr_ty entry: expected [id, ty]".into());
        }
        sema.expr_ty
            .insert(u32_of(&a[0], "expr id")?, ty_from_json(&a[1])?);
    }
    Ok(sema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{frontend, print_program};

    const SRC: &str = r#"
double a[16][4];
double *p;
int n;
void scale(double s) {
    int i;
    int j;
    #pragma acc data copy(a)
    {
        #pragma acc kernels loop gang worker
        for (i = 0; i < 16; i++) {
            for (j = 0; j < 4; j = j + 1) {
                a[i][j] = a[i][j] * s + (double) i - 0.5f;
            }
        }
    }
    while (n > 0) {
        if (n % 2 == 0) { n = n / 2; } else { break; }
    }
    p = (double *) malloc(8 * sizeof(double));
    p[0] = sqrt(fabs(-2.0));
    free(p);
    return;
}
void main() {
    scale(3.0);
}
"#;

    #[test]
    fn program_round_trips_exactly() {
        let (p, _sema) = frontend(SRC).unwrap();
        let text = program_to_json(&p).pretty();
        let back = program_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        // Pretty-printed output (the cache key basis) matches too.
        assert_eq!(print_program(&back), print_program(&p));
    }

    #[test]
    fn sema_round_trips() {
        let (p, sema) = frontend(SRC).unwrap();
        let text = sema_to_json(&sema).pretty();
        let back = sema_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.globals, sema.globals);
        assert_eq!(back.expr_ty, sema.expr_ty);
        assert_eq!(back.funcs.len(), sema.funcs.len());
        for (name, fi) in &sema.funcs {
            let bfi = back.funcs.get(name).expect("missing func");
            assert_eq!(bfi.ret, fi.ret);
            assert_eq!(bfi.params, fi.params);
            assert_eq!(bfi.locals, fi.locals);
        }
        // Re-encoding the decoded table is byte-identical (sorted maps).
        assert_eq!(sema_to_json(&back).pretty(), text);
        // Sanity: the table still resolves names.
        assert!(back.is_global("scale", "a"));
        assert!(!back.is_global("scale", "i"));
        let _ = p;
    }

    #[test]
    fn float_literal_bits_survive() {
        let (p, _) = frontend("double x;\nvoid main() { x = 0.30000000000000004; }").unwrap();
        let back =
            program_from_json(&Json::parse(&program_to_json(&p).to_string()).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn malformed_shapes_are_errors() {
        for bad in [
            Json::Null,
            Json::obj(vec![("next_id", Json::from(0u64))]),
            Json::obj(vec![
                ("next_id", Json::from(0u64)),
                (
                    "items",
                    Json::Arr(vec![Json::Arr(vec![Json::from("nope")])]),
                ),
            ]),
        ] {
            assert!(program_from_json(&bad).is_err());
        }
        assert!(sema_from_json(&Json::Null).is_err());
    }
}
