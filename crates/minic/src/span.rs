//! Source locations and diagnostics.
//!
//! Every token, AST node and compiler message carries a [`Span`] so that
//! errors and interactive-tool suggestions can be attributed back to the
//! directive-annotated input program — the traceability requirement the
//! paper motivates in §II-B.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file, plus the
/// 1-based line the range starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Span {
    /// Create a span covering `[start, end)` on `line`.
    pub fn new(start: u32, end: u32, line: u32) -> Self {
        Span { start, end, line }
    }

    /// A zero-width placeholder span (used for synthesized nodes).
    pub fn dummy() -> Self {
        Span::default()
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self
                .line
                .min(other.line)
                .max(1)
                .max(self.line.min(other.line)),
        }
    }

    /// True if this is a synthesized (dummy) span.
    pub fn is_dummy(&self) -> bool {
        *self == Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A hard error: compilation cannot proceed meaningfully.
    Error,
    /// A warning: suspicious but not fatal.
    Warning,
    /// A note attached to another diagnostic or informational output.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Note => write!(f, "note"),
        }
    }
}

/// A compiler message attributed to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How severe the problem is.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Location in the input program.
    pub span: Span,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Construct a note diagnostic.
    pub fn note(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Note,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ({})", self.severity, self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_to_covers_both() {
        let a = Span::new(3, 7, 1);
        let b = Span::new(10, 20, 3);
        let c = a.to(b);
        assert_eq!(c.start, 3);
        assert_eq!(c.end, 20);
        assert_eq!(c.line, 1);
    }

    #[test]
    fn dummy_span_detected() {
        assert!(Span::dummy().is_dummy());
        assert!(!Span::new(0, 1, 1).is_dummy());
    }

    #[test]
    fn diagnostic_display_includes_severity_and_line() {
        let d = Diagnostic::error("bad token", Span::new(0, 1, 42));
        let s = d.to_string();
        assert!(s.contains("error"));
        assert!(s.contains("line 42"));
    }

    #[test]
    fn severity_display() {
        assert_eq!(Severity::Warning.to_string(), "warning");
        assert_eq!(Severity::Note.to_string(), "note");
    }
}
