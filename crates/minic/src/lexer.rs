//! Hand-written lexer for MiniC.
//!
//! The lexer understands the C subset used by the benchmark suite plus
//! `#pragma` lines, which are captured verbatim (with `\` line continuations
//! folded) so the OpenACC directive parser can process them separately.
//! `//` and `/* ... */` comments are skipped.

use crate::span::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Lex `src` into a token stream ending with [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn span_from(&self, start: usize, line: u32) -> Span {
        Span::new(start as u32, self.pos as u32, line)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let span = self.span_from(start, line);
        self.tokens.push(Token::new(kind, span));
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let line = self.line;
            let c = self.peek();
            if c == 0 {
                self.push(TokenKind::Eof, start, line);
                return Ok(self.tokens);
            }
            match c {
                b'#' => self.lex_pragma(start, line)?,
                b'0'..=b'9' => self.lex_number(start, line)?,
                b'.' if self.peek2().is_ascii_digit() => self.lex_number(start, line)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start, line),
                _ => self.lex_symbol(start, line)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let line = self.line;
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return Err(Diagnostic::error(
                                "unterminated block comment",
                                self.span_from(start, line),
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_pragma(&mut self, start: usize, line: u32) -> Result<(), Diagnostic> {
        // Consume '#'.
        self.bump();
        // Expect the word "pragma".
        let word_start = self.pos;
        while self.peek().is_ascii_alphabetic() {
            self.bump();
        }
        let word = &self.src[word_start..self.pos];
        if word != b"pragma" {
            return Err(Diagnostic::error(
                format!(
                    "unsupported preprocessor directive `#{}`",
                    String::from_utf8_lossy(word)
                ),
                self.span_from(start, line),
            ));
        }
        // Capture the rest of the (logical) line, folding `\` continuations.
        let mut text = String::new();
        loop {
            match self.peek() {
                0 | b'\n' => break,
                b'\\' => {
                    // A backslash immediately before the newline joins lines.
                    let mut look = self.pos + 1;
                    while matches!(self.src.get(look), Some(b' ') | Some(b'\t') | Some(b'\r')) {
                        look += 1;
                    }
                    if matches!(self.src.get(look), Some(b'\n')) {
                        while self.pos <= look {
                            self.bump();
                        }
                        text.push(' ');
                    } else {
                        text.push(self.bump() as char);
                    }
                }
                c => {
                    text.push(c as char);
                    self.bump();
                }
            }
        }
        let text = normalize_ws(&text);
        self.push(TokenKind::Pragma(text), start, line);
        Ok(())
    }

    fn lex_number(&mut self, start: usize, line: u32) -> Result<(), Diagnostic> {
        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), b'+' | b'-') {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. identifier boundary).
                self.pos = save;
            }
        }
        let mut text: &str = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let mut f_suffix = false;
        if matches!(self.peek(), b'f' | b'F') {
            f_suffix = true;
            is_float = true;
            self.bump();
        } else if matches!(self.peek(), b'l' | b'L' | b'u' | b'U') {
            self.bump();
        }
        // `text` excludes any suffix character.
        let _ = &mut text;
        let span = self.span_from(start, line);
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| Diagnostic::error(format!("invalid float literal `{text}`"), span))?;
            self.push(TokenKind::FloatLit(v, f_suffix), start, line);
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| Diagnostic::error(format!("invalid int literal `{text}`"), span))?;
            self.push(TokenKind::IntLit(v), start, line);
        }
        Ok(())
    }

    fn lex_ident(&mut self, start: usize, line: u32) {
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let kind = match text {
            "int" => TokenKind::KwInt,
            "long" => TokenKind::KwLong,
            "float" => TokenKind::KwFloat,
            "double" => TokenKind::KwDouble,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "for" => TokenKind::KwFor,
            "while" => TokenKind::KwWhile,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "sizeof" => TokenKind::KwSizeof,
            _ => TokenKind::Ident(text.to_string()),
        };
        self.push(kind, start, line);
    }

    fn lex_symbol(&mut self, start: usize, line: u32) -> Result<(), Diagnostic> {
        use TokenKind::*;
        let c = self.bump();
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b':' => Colon,
            b'?' => Question,
            b'~' => Tilde,
            b'^' => Caret,
            b'+' => match self.peek() {
                b'+' => {
                    self.bump();
                    PlusPlus
                }
                b'=' => {
                    self.bump();
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.bump();
                    MinusMinus
                }
                b'=' => {
                    self.bump();
                    MinusAssign
                }
                _ => Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.bump();
                    StarAssign
                } else {
                    Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.bump();
                    SlashAssign
                } else {
                    Slash
                }
            }
            b'%' => Percent,
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    AmpAmp
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    PipePipe
                } else {
                    Pipe
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    Ne
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    Eq
                } else {
                    Assign
                }
            }
            b'<' => match self.peek() {
                b'=' => {
                    self.bump();
                    Le
                }
                b'<' => {
                    self.bump();
                    Shl
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.bump();
                    Ge
                }
                b'>' => {
                    self.bump();
                    Shr
                }
                _ => Gt,
            },
            other => {
                return Err(Diagnostic::error(
                    format!("unexpected character `{}`", other as char),
                    self.span_from(start, line),
                ))
            }
        };
        self.push(kind, start, line);
        Ok(())
    }
}

/// Collapse runs of whitespace to single spaces and trim the ends.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_decl() {
        assert_eq!(
            kinds("int x = 3;"),
            vec![
                T::KwInt,
                T::Ident("x".into()),
                T::Assign,
                T::IntLit(3),
                T::Semi,
                T::Eof
            ]
        );
    }

    #[test]
    fn lex_float_forms() {
        assert_eq!(
            kinds("1.5 2e3 1e-32 3.0f 7f"),
            vec![
                T::FloatLit(1.5, false),
                T::FloatLit(2000.0, false),
                T::FloatLit(1e-32, false),
                T::FloatLit(3.0, true),
                T::FloatLit(7.0, true),
                T::Eof
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("a += b << 2 && !c"),
            vec![
                T::Ident("a".into()),
                T::PlusAssign,
                T::Ident("b".into()),
                T::Shl,
                T::IntLit(2),
                T::AmpAmp,
                T::Bang,
                T::Ident("c".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn lex_pragma_line() {
        let ks = kinds("#pragma acc kernels loop gang worker\nfor(;;) ;");
        assert_eq!(ks[0], T::Pragma("acc kernels loop gang worker".into()));
        assert_eq!(ks[1], T::KwFor);
    }

    #[test]
    fn lex_pragma_continuation() {
        let src = "#pragma acc kernels loop async(1) \\\n    gang worker copy(q)\nx;";
        let ks = kinds(src);
        assert_eq!(
            ks[0],
            T::Pragma("acc kernels loop async(1) gang worker copy(q)".into())
        );
        assert_eq!(ks[1], T::Ident("x".into()));
    }

    #[test]
    fn lex_comments_skipped() {
        assert_eq!(
            kinds("a /* mid */ b // tail\nc"),
            vec![
                T::Ident("a".into()),
                T::Ident("b".into()),
                T::Ident("c".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn unknown_directive_is_error() {
        assert!(lex("#include <stdio.h>").is_err());
    }

    #[test]
    fn unknown_char_is_error() {
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 4);
    }

    #[test]
    fn exponent_requires_digits() {
        // `1e` followed by identifier char: lexes as 1 then ident `e`.
        let ks = kinds("1e");
        assert_eq!(ks[0], T::IntLit(1));
        assert_eq!(ks[1], T::Ident("e".into()));
    }

    #[test]
    fn integer_suffixes_allowed() {
        assert_eq!(kinds("10L 3u")[..2], [T::IntLit(10), T::IntLit(3)]);
    }
}
