//! Pretty-printer: AST → MiniC source.
//!
//! Used for two things: (1) emitting Listing-2-style transformed programs
//! after the memory-transfer demotion pass rewrites directives, and (2)
//! round-trip property testing of the parser (`parse(print(parse(s)))`
//! must equal `parse(s)` up to node ids).

use crate::ast::*;
use std::fmt::Write as _;

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for item in &p.items {
        match item {
            Item::Global(g) => {
                print_decl(&mut out, g, 0);
                out.push('\n');
            }
            Item::Func(f) => {
                print_func(&mut out, f);
                out.push('\n');
            }
        }
    }
    out
}

/// Render a single function definition.
pub fn print_func(out: &mut String, f: &Func) {
    let _ = write!(out, "{} {}(", ret_str(&f.ret), f.name);
    if f.params.is_empty() {
        out.push_str("void");
    } else {
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match &p.ty {
                Ty::Ptr(s) => {
                    let _ = write!(out, "{s} *{}", p.name);
                }
                ty => {
                    let _ = write!(out, "{ty} {}", p.name);
                }
            }
        }
    }
    out.push_str(") ");
    print_block(out, &f.body, 0);
}

fn ret_str(ty: &Ty) -> String {
    match ty {
        Ty::Ptr(s) => format!("{s} *"),
        other => other.to_string(),
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_decl(out: &mut String, d: &VarDecl, level: usize) {
    indent(out, level);
    match &d.ty {
        Ty::Void => out.push_str("void"),
        Ty::Scalar(s) => {
            let _ = write!(out, "{s} {}", d.name);
        }
        Ty::Ptr(s) => {
            let _ = write!(out, "{s} *{}", d.name);
        }
        Ty::Array(s, dims) => {
            let _ = write!(out, "{s} {}", d.name);
            for dim in dims {
                let _ = write!(out, "[{dim}]");
            }
        }
    }
    if let Some(init) = &d.init {
        out.push_str(" = ");
        print_expr(out, init);
    }
    out.push(';');
}

/// Render a block at `level` indentation (braces included).
pub fn print_block(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        print_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

/// Render a statement (with its pragmas) at `level` indentation.
pub fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    for pr in &s.pragmas {
        indent(out, level);
        let _ = writeln!(out, "#pragma {}", pr.text);
    }
    match &s.kind {
        StmtKind::Decl(d) => {
            print_decl(out, d, level);
            out.push('\n');
        }
        StmtKind::Expr(e) => {
            indent(out, level);
            print_expr(out, e);
            out.push_str(";\n");
        }
        StmtKind::Assign { target, op, value } => {
            indent(out, level);
            print_lvalue(out, target);
            let _ = write!(out, " {op} ");
            print_expr(out, value);
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            indent(out, level);
            out.push_str("if (");
            print_expr(out, cond);
            out.push_str(") ");
            print_block(out, then_blk, level);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                print_block(out, e, level);
            }
            out.push('\n');
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(out, level);
            out.push_str("for (");
            if let Some(i) = init {
                print_inline_stmt(out, i);
            }
            out.push_str("; ");
            if let Some(c) = cond {
                print_expr(out, c);
            }
            out.push_str("; ");
            if let Some(st) = step {
                print_inline_stmt(out, st);
            }
            out.push_str(") ");
            print_block(out, body, level);
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            indent(out, level);
            out.push_str("while (");
            print_expr(out, cond);
            out.push_str(") ");
            print_block(out, body, level);
            out.push('\n');
        }
        StmtKind::Block(b) => {
            if b.stmts.is_empty() && s.pragmas.is_empty() {
                indent(out, level);
                out.push_str(";\n");
            } else if b.stmts.is_empty() {
                // Standalone directive statement: nothing to print below the
                // pragma line(s) already emitted.
            } else {
                indent(out, level);
                print_block(out, b, level);
                out.push('\n');
            }
        }
        StmtKind::Return(e) => {
            indent(out, level);
            out.push_str("return");
            if let Some(e) = e {
                out.push(' ');
                print_expr(out, e);
            }
            out.push_str(";\n");
        }
        StmtKind::Break => {
            indent(out, level);
            out.push_str("break;\n");
        }
        StmtKind::Continue => {
            indent(out, level);
            out.push_str("continue;\n");
        }
    }
}

/// Statement rendered without indentation or trailing `;\n` (for `for`
/// headers). Only declaration/assignment/expression forms occur there.
fn print_inline_stmt(out: &mut String, s: &Stmt) {
    match &s.kind {
        StmtKind::Decl(d) => {
            let mut tmp = String::new();
            print_decl(&mut tmp, d, 0);
            out.push_str(tmp.trim_end_matches(';'));
        }
        StmtKind::Assign { target, op, value } => {
            print_lvalue(out, target);
            let _ = write!(out, " {op} ");
            print_expr(out, value);
        }
        StmtKind::Expr(e) => print_expr(out, e),
        other => {
            let _ = write!(out, "/* unsupported inline stmt {other:?} */");
        }
    }
}

fn print_lvalue(out: &mut String, lv: &LValue) {
    match lv {
        LValue::Var(n) => out.push_str(n),
        LValue::Index { base, indices } => {
            out.push_str(base);
            for ix in indices {
                out.push('[');
                print_expr(out, ix);
                out.push(']');
            }
        }
    }
}

/// Render an expression (fully parenthesized where nested, so precedence
/// always round-trips).
pub fn print_expr(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::FloatLit(v, suf) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v:?}");
            }
            if *suf {
                out.push('f');
            }
        }
        ExprKind::Var(n) => out.push_str(n),
        ExprKind::Index { base, indices } => {
            out.push_str(base);
            for ix in indices {
                out.push('[');
                print_expr(out, ix);
                out.push(']');
            }
        }
        ExprKind::Unary { op, expr } => {
            let _ = write!(out, "{op}");
            out.push('(');
            print_expr(out, expr);
            out.push(')');
        }
        ExprKind::Binary { op, lhs, rhs } => {
            out.push('(');
            print_expr(out, lhs);
            let _ = write!(out, " {op} ");
            print_expr(out, rhs);
            out.push(')');
        }
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            out.push('(');
            print_expr(out, cond);
            out.push_str(" ? ");
            print_expr(out, then_e);
            out.push_str(" : ");
            print_expr(out, else_e);
            out.push(')');
        }
        ExprKind::Call { name, args } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(')');
        }
        ExprKind::Cast { ty, expr } => {
            match ty {
                Ty::Ptr(s) => {
                    let _ = write!(out, "({s} *) ");
                }
                other => {
                    let _ = write!(out, "({other}) ");
                }
            }
            print_expr(out, expr);
        }
        ExprKind::SizeOf(s) => {
            let _ = write!(out, "sizeof({s})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strip node ids and spans for structural comparison.
    fn normalize(p: &Program) -> String {
        // Debug output includes ids/spans; instead compare re-printed text,
        // which is id-independent by construction.
        print_program(p)
    }

    fn round_trip(src: &str) {
        let p1 = parse(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 =
            parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        assert_eq!(normalize(&p1), normalize(&p2), "printed:\n{printed}");
    }

    #[test]
    fn round_trip_simple() {
        round_trip("int n;\nvoid main() { n = 1 + 2 * 3; }");
    }

    #[test]
    fn round_trip_pragmas() {
        round_trip(
            "double q[100];\ndouble w[100];\nvoid main() {\n int j;\n #pragma acc data create(q, w)\n {\n  #pragma acc kernels loop gang worker\n  for (j = 0; j < 100; j++) { q[j] = w[j]; }\n }\n}",
        );
    }

    #[test]
    fn round_trip_standalone_update() {
        round_trip(
            "double b[10];\nvoid main() {\n int k;\n for (k = 0; k < 4; k++) {\n  #pragma acc update host(b)\n  b[0] = 1.0;\n }\n}",
        );
    }

    #[test]
    fn round_trip_malloc_and_casts() {
        round_trip("double *p;\nint n;\nvoid main() { p = (double *) malloc(n * sizeof(double)); free(p); }");
    }

    #[test]
    fn round_trip_control_flow() {
        round_trip(
            "void main() { int i; double s; s = 0.0; for (i = 0; i < 10; i++) { if (i % 2 == 0) { s += 1.5; } else { s -= 0.5f; } } while (s > 0.0) { s = s - 1.0; } }",
        );
    }

    #[test]
    fn float_literals_keep_suffix() {
        let p = parse("void main() { float x; x = 2.0f; }").unwrap();
        let s = print_program(&p);
        assert!(s.contains("2.0f"), "{s}");
    }

    #[test]
    fn pragma_text_preserved_verbatim() {
        let src = "void main() {\n #pragma acc kernels loop async(1) gang worker copy(q) copyin(w)\n for (int j = 0; j < 3; j++) { }\n}";
        let p = parse(src).unwrap();
        let s = print_program(&p);
        assert!(
            s.contains("#pragma acc kernels loop async(1) gang worker copy(q) copyin(w)"),
            "{s}"
        );
    }
}
