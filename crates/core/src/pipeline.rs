//! Staged execution pipeline with content-addressed artifact reuse.
//!
//! The paper's workflow is interactive: the user runs the same program over
//! and over while toggling verification targets, error margins, transfer
//! overlays, and optimization variants. Re-running `frontend → translate →
//! execute` from scratch each round repeats work whose inputs did not
//! change. This module decomposes the run flow into explicit stages
//!
//! ```text
//! Frontend → Directives → Analysis → Instrument → Plan → Execute → Verify
//! ```
//!
//! where each stage produces a typed **artifact** carrying a content hash
//! ([`ArtifactId`], FNV-1a over the stage inputs). A [`Session`] memoizes
//! artifacts by id: the same source re-entered with different
//! [`ExecOptions`] reuses the parse and the translation; the same options
//! reuse the run itself. Per-stage hit/miss counters ([`Session::stats`])
//! make the reuse observable and testable.
//!
//! Stage meanings:
//!
//! * **Frontend** — parse + semantic check ([`openarc_minic::frontend`]).
//! * **Directives** — OpenACC pragma collection/census over the AST.
//! * **Analysis** — translation *without* instrumentation: dataflow,
//!   privatization/reduction recognition, kernel extraction.
//! * **Instrument** — translation *with* §III-B instrumentation; consulted
//!   only when [`TranslateOptions::instrument`] is set (otherwise the
//!   Analysis artifact is the translation).
//! * **Plan** — binding of a translation to one [`ExecOptions`]
//!   fingerprint.
//! * **Execute** — the simulated run ([`RunResult`]). Journaled runs are
//!   cached too: the miss records the exact event stream the run emitted,
//!   and a hit **replays** it into the caller's journal, so the journal
//!   side effect of a cache hit is byte-identical to a real run.
//! * **Verify** — the §III-A report: CPU baseline + verification run, both
//!   routed through the Execute stage so they cache independently.
//!
//! All caches sit behind [`Mutex`]es and artifacts are shared via [`Arc`],
//! so one `Session` can be driven from many scheduler workers
//! ([`crate::sched`]) at once; locks are never held across stage work, so
//! concurrent misses compute in parallel (last insert wins).
//!
//! Sessions are constructed with [`Session::builder`]. A builder given a
//! [`SessionBuilder::disk_cache`] directory adds the persistent layer
//! ([`crate::cache::DiskCache`]): Frontend, Analysis/Instrument, and
//! Execute artifacts that miss in memory are loaded from disk (counted as
//! stage *hits* — the stage work was skipped), and recomputed artifacts
//! are published back, so a second process over the same sources reruns
//! nothing. Disk traffic shows up in [`PipelineStats::disk`] and, for
//! journaled sessions, as [`EventKind::Cache`] events.
//!
//! Every stage records its **wall-clock** cost (cache hits included, so
//! reuse is visible as near-zero time): [`Session::stage_times`] returns
//! the accumulated per-stage breakdown, and a session built with
//! [`SessionBuilder::journal`] additionally emits one
//! [`EventKind::Stage`] span per stage request into the given journal.
//! Stage spans measure real time, not simulated time — they never enter
//! the deterministic per-run journals compared across worker counts.

use crate::cache::{DiskCache, DiskStats, Lookup};
use crate::exec::{execute, ExecMode, ExecOptions, RunResult, VerifyOptions};
use crate::translate::{translate, TranslateOptions, Translated};
use crate::verify::{VerificationReport, VerifyError};
use openarc_minic::ast::{walk_stmts, Item};
use openarc_minic::span::Diagnostic;
use openarc_minic::{frontend, print_program, Program, Sema};
use openarc_openacc::{directives_of, Directive};
use openarc_trace::{EventKind, Journal, TraceEvent, Track};
use openarc_vm::VmError;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

/// Content hash identifying one stage artifact (FNV-1a, 64-bit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactId(pub u64);

impl std::fmt::Display for ArtifactId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Incremental FNV-1a hasher (std-only; `DefaultHasher` is not stable
/// across releases, and artifact ids appear in reports).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Absorb a `u64`.
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv {
        self.write(&v.to_le_bytes())
    }

    /// Absorb an `f64` by bit pattern (exact, `-0.0 != 0.0`).
    pub fn write_f64(&mut self, v: f64) -> &mut Fnv {
        self.write_u64(v.to_bits())
    }

    /// Absorb a bool.
    pub fn write_bool(&mut self, v: bool) -> &mut Fnv {
        self.write(&[v as u8])
    }

    /// Absorb a length-prefixed string (prefix prevents concatenation
    /// collisions between adjacent fields).
    pub fn write_str(&mut self, s: &str) -> &mut Fnv {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

fn combine(a: u64, b: u64) -> u64 {
    Fnv::new().write_u64(a).write_u64(b).finish()
}

fn fp_translate_options(o: &TranslateOptions) -> u64 {
    let mut h = Fnv::new();
    h.write_bool(o.instrument)
        .write_bool(o.optimize_checks)
        .write_bool(o.hoist_gpu_checks)
        .write_bool(o.auto_privatize)
        .write_bool(o.auto_reduction)
        .write_bool(o.validate);
    h.write_u64(o.ignored_update_stmts.len() as u64);
    for id in &o.ignored_update_stmts {
        h.write_u64(*id as u64);
    }
    h.finish()
}

fn fp_verify_options(h: &mut Fnv, v: &VerifyOptions) {
    match &v.targets {
        None => {
            h.write_bool(false);
        }
        Some(set) => {
            h.write_bool(true).write_u64(set.len() as u64);
            for t in set {
                h.write_str(t);
            }
        }
    }
    h.write_bool(v.complement)
        .write_f64(v.rel_tol)
        .write_f64(v.abs_tol)
        .write_f64(v.min_value_to_check);
    let bounds: std::collections::BTreeMap<_, _> = v.bounds.iter().collect();
    h.write_u64(bounds.len() as u64);
    for (var, (lo, hi)) in bounds {
        h.write_str(var).write_f64(*lo).write_f64(*hi);
    }
    h.write_u64(v.assertions.len() as u64);
    for a in &v.assertions {
        h.write_str(&a.kernel).write_str(&a.var);
        match &a.kind {
            crate::exec::AssertKind::ChecksumWithin { expected, tol } => {
                h.write_u64(0).write_f64(*expected).write_f64(*tol);
            }
            crate::exec::AssertKind::AllFinite => {
                h.write_u64(1);
            }
            crate::exec::AssertKind::NonNegative => {
                h.write_u64(2);
            }
        }
    }
    h.write_u64(v.queue as u64)
        .write_bool(v.overlap_reference)
        .write_u64(v.compare_jobs as u64)
        .write_u64(v.dag_jobs as u64)
        .write_u64(v.devices as u64);
    h.write_u64(match v.placement {
        crate::exec::dag::Placement::RoundRobin => 0,
        crate::exec::dag::Placement::Eft => 1,
        crate::exec::dag::Placement::Measured => 2,
    });
    match &v.measured {
        None => {
            h.write_bool(false);
        }
        Some(m) => {
            h.write_bool(true);
            h.write_u64(m.kernel_us.len() as u64);
            for (k, us) in &m.kernel_us {
                h.write_str(k).write_f64(*us);
            }
            h.write_u64(m.stage_us.len() as u64);
            for (k, us) in &m.stage_us {
                h.write_str(k).write_f64(*us);
            }
        }
    }
}

fn fp_exec_options(o: &ExecOptions) -> u64 {
    let mut h = Fnv::new();
    match &o.mode {
        ExecMode::Normal => {
            h.write_u64(0);
        }
        ExecMode::CpuOnly => {
            h.write_u64(1);
        }
        ExecMode::Verify(v) => {
            h.write_u64(2);
            fp_verify_options(&mut h, v);
        }
    }
    h.write_bool(o.check_transfers)
        .write_bool(o.race_detect)
        .write_u64(o.launch.wave as u64)
        .write_u64(o.launch.step_budget)
        .write_u64(o.step_budget);
    h.write_u64(o.overlay.disable.len() as u64);
    for k in &o.overlay.disable {
        h.write_str(&k.site)
            .write_str(&k.var)
            .write_bool(k.to_device);
    }
    h.write_u64(o.overlay.defer.len() as u64);
    for k in &o.overlay.defer {
        h.write_str(&k.site)
            .write_str(&k.var)
            .write_bool(k.to_device);
    }
    // `o.stage_journal` is deliberately NOT hashed: stage spans are
    // wall-clock observations emitted live during a fresh run, never
    // recorded into or replayed from cached artifacts, so enabling them
    // must not fork the plan fingerprint.
    h.write_bool(o.journal.is_enabled());
    h.finish()
}

// ---------------------------------------------------------------------------
// Stage artifacts
// ---------------------------------------------------------------------------

/// Frontend artifact: checked AST + semantic tables, keyed by source hash.
#[derive(Debug)]
pub struct FrontendArtifact {
    /// Content hash of the source text (or of the printed program when
    /// built from a pre-parsed AST).
    pub id: ArtifactId,
    /// Parsed program.
    pub program: Program,
    /// Semantic tables.
    pub sema: Sema,
}

/// Directive census over one program (the Directives stage artifact).
#[derive(Debug, Clone, Default)]
pub struct DirectiveSummary {
    /// Artifact id (derived from the frontend artifact).
    pub id: ArtifactId,
    /// Compute constructs (`kernels` / `parallel`).
    pub compute: usize,
    /// Structured `data` regions.
    pub data: usize,
    /// Orphaned `loop` directives.
    pub loops: usize,
    /// `host_data` constructs.
    pub host_data: usize,
    /// Executable `update` directives.
    pub updates: usize,
    /// `wait` directives.
    pub waits: usize,
    /// `declare` directives.
    pub declares: usize,
    /// `cache` hints.
    pub caches: usize,
}

impl DirectiveSummary {
    /// Total directives counted.
    pub fn total(&self) -> usize {
        self.compute
            + self.data
            + self.loops
            + self.host_data
            + self.updates
            + self.waits
            + self.declares
            + self.caches
    }
}

/// Translation artifact (Analysis or Instrument stage).
#[derive(Debug)]
pub struct TranslatedArtifact {
    /// Content hash: frontend id × translate-options fingerprint.
    pub id: ArtifactId,
    /// Whether this is the instrumented (§III-B) translation.
    pub instrumented: bool,
    /// The translation output.
    pub tr: Translated,
}

/// Plan artifact: one translation bound to one [`ExecOptions`] fingerprint.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// Content hash: translation id × exec-options fingerprint.
    pub id: ArtifactId,
    /// Translation this plan executes.
    pub translated: ArtifactId,
    /// Human-readable mode label (`normal` / `cpu` / `verify`).
    pub mode: &'static str,
    /// Whether this plan journals events. Journaled plans are still
    /// cacheable: the Execute stage records the event stream on a miss and
    /// replays it into the caller's journal on a hit, so the side effect
    /// survives caching byte-for-byte.
    pub journaled: bool,
}

// ---------------------------------------------------------------------------
// Stage bookkeeping
// ---------------------------------------------------------------------------

/// Pipeline stages, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Parse + semantic check.
    Frontend,
    /// OpenACC directive census.
    Directives,
    /// Uninstrumented translation (dataflow, kernel extraction).
    Analysis,
    /// Instrumented translation (§III-B checks inserted).
    Instrument,
    /// Translation × options binding.
    Plan,
    /// Simulated run.
    Execute,
    /// §III-A verification report.
    Verify,
}

impl Stage {
    /// All stages, pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Frontend,
        Stage::Directives,
        Stage::Analysis,
        Stage::Instrument,
        Stage::Plan,
        Stage::Execute,
        Stage::Verify,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Frontend => "frontend",
            Stage::Directives => "directives",
            Stage::Analysis => "analysis",
            Stage::Instrument => "instrument",
            Stage::Plan => "plan",
            Stage::Execute => "execute",
            Stage::Verify => "verify",
        }
    }
}

/// Hit/miss counters for one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that ran the stage.
    pub misses: u64,
}

/// Snapshot of a session's per-stage cache behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Counters indexed like [`Stage::ALL`].
    pub stages: [StageCounts; 7],
    /// Disk-layer traffic (all zero when the session has no disk cache).
    /// A disk hit is *also* a stage hit — the stage work was skipped.
    pub disk: DiskStats,
}

impl PipelineStats {
    /// Counters for one stage.
    pub fn get(&self, s: Stage) -> StageCounts {
        self.stages[Stage::ALL.iter().position(|x| *x == s).unwrap()]
    }
}

impl std::fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<12} {:>6} {:>6}", "stage", "hits", "misses")?;
        for s in Stage::ALL {
            let c = self.get(s);
            writeln!(f, "{:<12} {:>6} {:>6}", s.label(), c.hits, c.misses)?;
        }
        if !self.disk.is_empty() {
            writeln!(
                f,
                "{:<12} {:>6} {:>6}   stores {}, evicted {}, corrupt {}",
                "disk",
                self.disk.hits,
                self.disk.misses,
                self.disk.stores,
                self.disk.evictions,
                self.disk.corrupt
            )?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct StageMeters {
    hits: [AtomicU64; 7],
    misses: [AtomicU64; 7],
}

impl StageMeters {
    fn idx(s: Stage) -> usize {
        Stage::ALL.iter().position(|x| *x == s).unwrap()
    }

    fn hit(&self, s: Stage) {
        self.hits[Self::idx(s)].fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self, s: Stage) {
        self.misses[Self::idx(s)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PipelineStats {
        let mut out = PipelineStats::default();
        for i in 0..7 {
            out.stages[i] = StageCounts {
                hits: self.hits[i].load(Ordering::Relaxed),
                misses: self.misses[i].load(Ordering::Relaxed),
            };
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// The one error type every pipeline stage returns, so drivers match a
/// single enum instead of juggling `Vec<Diagnostic>` / `Diagnostic` /
/// [`VmError`] per call site.
#[derive(Debug)]
pub enum PipelineError {
    /// Parse or semantic-check failure.
    Frontend(Vec<Diagnostic>),
    /// Directive parse failure in the census stage.
    Directives(Diagnostic),
    /// Translation failure.
    Translate(Vec<Diagnostic>),
    /// Execution failure.
    Run(VmError),
}

impl PipelineError {
    /// Process exit code a CLI driver should use for this error:
    /// 2 for anything wrong with the *input program* (parse, directives,
    /// translation), 3 for a failure while *running* it.
    pub fn exit_code(&self) -> i32 {
        match self {
            PipelineError::Frontend(_)
            | PipelineError::Directives(_)
            | PipelineError::Translate(_) => 2,
            PipelineError::Run(_) => 3,
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Frontend(ds) => {
                write!(f, "frontend failed:")?;
                for d in ds {
                    write!(f, " {d}")?;
                }
                Ok(())
            }
            PipelineError::Directives(d) => write!(f, "directive error: {d}"),
            PipelineError::Translate(ds) => {
                write!(f, "translation failed:")?;
                for d in ds {
                    write!(f, " {d}")?;
                }
                Ok(())
            }
            PipelineError::Run(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<VerifyError> for PipelineError {
    fn from(e: VerifyError) -> PipelineError {
        match e {
            VerifyError::Translate(ds) => PipelineError::Translate(ds),
            VerifyError::Run(e) => PipelineError::Run(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// A pipeline session: stage caches + counters, shareable across threads.
///
/// ```
/// use openarc_core::pipeline::{Session, Stage};
/// use openarc_core::exec::{ExecMode, ExecOptions};
/// use openarc_core::translate::TranslateOptions;
/// let src = "double a[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { a[j] = 1.0; }\n}";
/// let session = Session::builder().build();
/// let run1 = session.run_source(src, &TranslateOptions::default(), &ExecOptions::default()).unwrap();
/// // Same source, different options: frontend + translation are reused.
/// let cpu = ExecOptions { mode: ExecMode::CpuOnly, ..Default::default() };
/// let run2 = session.run_source(src, &TranslateOptions::default(), &cpu).unwrap();
/// let stats = session.stats();
/// assert_eq!(stats.get(Stage::Frontend).hits, 1);
/// assert_eq!(stats.get(Stage::Analysis).hits, 1);
/// assert_eq!(stats.get(Stage::Execute).misses, 2);
/// assert!(run1.result.sim_time_us() > run2.result.sim_time_us());
/// ```
pub struct Session {
    meters: StageMeters,
    frontends: Mutex<HashMap<u64, Arc<FrontendArtifact>>>,
    directives: Mutex<HashMap<u64, Arc<DirectiveSummary>>>,
    translations: Mutex<HashMap<u64, Arc<TranslatedArtifact>>>,
    plans: Mutex<HashMap<u64, ExecPlan>>,
    runs: Mutex<HashMap<u64, CachedRun>>,
    verifications: Mutex<HashMap<u64, Arc<VerificationReport>>>,
    /// Accumulated wall-clock nanoseconds per stage ([`Stage::ALL`] order).
    stage_wall: [AtomicU64; 7],
    /// Optional session-level stream of [`EventKind::Stage`] spans.
    stage_journal: Journal,
    /// Session epoch: stage-span timestamps are offsets from here.
    t0: Instant,
    /// Optional persistent layer under the in-memory stage caches.
    disk: Option<Arc<DiskCache>>,
}

impl Default for Session {
    fn default() -> Session {
        Session {
            meters: StageMeters::default(),
            frontends: Mutex::default(),
            directives: Mutex::default(),
            translations: Mutex::default(),
            plans: Mutex::default(),
            runs: Mutex::default(),
            verifications: Mutex::default(),
            stage_wall: Default::default(),
            stage_journal: Journal::disabled(),
            t0: Instant::now(),
            disk: None,
        }
    }
}

/// Builder for [`Session`] — the one way to configure a session.
///
/// ```
/// use openarc_core::pipeline::Session;
/// // Plain in-memory session:
/// let s = Session::builder().build();
/// // Journaled session with a persistent artifact cache:
/// let j = openarc_trace::Journal::enabled();
/// let dir = std::env::temp_dir().join("openarc-doc-cache");
/// let s = Session::builder().journal(j).disk_cache(&dir).build();
/// assert!(s.disk_cache().is_some());
/// ```
#[derive(Debug, Default)]
pub struct SessionBuilder {
    journal: Option<Journal>,
    disk: Option<PathBuf>,
    namespace: String,
}

impl SessionBuilder {
    /// Emit one [`EventKind::Stage`] span per stage request (and one
    /// [`EventKind::Cache`] event per disk-cache operation) into
    /// `journal`. Wall-clock µs; timestamps are offsets from session
    /// creation.
    pub fn journal(mut self, journal: Journal) -> SessionBuilder {
        self.journal = Some(journal);
        self
    }

    /// Add the persistent content-addressed artifact store rooted at
    /// `dir` (created lazily on first store). See [`crate::cache`].
    pub fn disk_cache(mut self, dir: impl Into<PathBuf>) -> SessionBuilder {
        self.disk = Some(dir.into());
        self
    }

    /// Drop any configured disk layer: the session caches in memory only.
    /// Lets a driver thread `--no-cache` through unconditionally after a
    /// defaulted [`SessionBuilder::disk_cache`].
    pub fn no_cache(mut self) -> SessionBuilder {
        self.disk = None;
        self
    }

    /// Fold a tenant namespace into the disk layer's entry keys (see
    /// [`DiskCache::with_namespace`]): sessions with different namespaces
    /// over the same [`SessionBuilder::disk_cache`] root never observe
    /// each other's persisted artifacts. No effect without a disk layer;
    /// the empty namespace (the default) is the identity.
    pub fn cache_namespace(mut self, namespace: impl Into<String>) -> SessionBuilder {
        self.namespace = namespace.into();
        self
    }

    /// Construct the session.
    pub fn build(self) -> Session {
        Session {
            stage_journal: self.journal.unwrap_or_else(Journal::disabled),
            disk: self
                .disk
                .map(|dir| Arc::new(DiskCache::with_namespace(dir, self.namespace))),
            ..Session::default()
        }
    }
}

/// A memoized Execute-stage entry: the run plus the exact event stream it
/// journaled (empty for unjournaled runs), so a cache hit can replay the
/// journal side effect byte-for-byte.
struct CachedRun {
    result: Arc<RunResult>,
    events: Arc<Vec<TraceEvent>>,
}

/// One end-to-end pipeline run: the translation used plus the run result.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Frontend artifact (parse reused across runs).
    pub frontend: Arc<FrontendArtifact>,
    /// Translation artifact (Analysis or Instrument stage output).
    pub translated: Arc<TranslatedArtifact>,
    /// Plan the Execute stage ran (or served from cache).
    pub plan: ExecPlan,
    /// The run.
    pub result: Arc<RunResult>,
}

impl Session {
    /// Start configuring a session. See [`SessionBuilder`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The persistent artifact store, when the session was built with
    /// [`SessionBuilder::disk_cache`].
    pub fn disk_cache(&self) -> Option<&DiskCache> {
        self.disk.as_deref()
    }

    /// The session-level stage journal ([`SessionBuilder::journal`]);
    /// disabled when the session was built without one. Cloning the
    /// handle shares the underlying stream.
    pub fn stage_journal(&self) -> &Journal {
        &self.stage_journal
    }

    /// Journal one disk-cache operation (zero-duration marker event).
    fn disk_event(&self, stage: Stage, op: &'static str) {
        if self.stage_journal.is_enabled() {
            self.stage_journal.emit(TraceEvent {
                ts_us: self.t0.elapsed().as_secs_f64() * 1e6,
                dur_us: 0.0,
                track: Track::Host,
                kind: EventKind::Cache {
                    stage: stage.label(),
                    op,
                },
            });
        }
    }

    /// Try the disk layer with one of its typed, format-negotiating
    /// loaders; journals the outcome.
    fn disk_load<T>(&self, stage: Stage, look: impl FnOnce(&DiskCache) -> Lookup<T>) -> Option<T> {
        let disk = self.disk.as_ref()?;
        match look(disk) {
            Lookup::Hit(v) => {
                self.disk_event(stage, "hit");
                Some(v)
            }
            Lookup::Miss => {
                self.disk_event(stage, "miss");
                None
            }
            Lookup::Corrupt => {
                self.disk_event(stage, "corrupt");
                None
            }
        }
    }

    /// Publish a recomputed artifact to the disk layer with one of its
    /// typed binary-format stores; journals stores.
    fn disk_store(&self, stage: Stage, store: impl FnOnce(&DiskCache) -> bool) {
        if let Some(disk) = &self.disk {
            if store(disk) {
                self.disk_event(stage, "store");
            }
        }
    }

    /// Record one stage request's wall-clock cost; `cached` marks hits.
    fn note_stage(&self, stage: Stage, started: Instant, cached: bool) {
        let dur = started.elapsed();
        self.stage_wall[StageMeters::idx(stage)]
            .fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
        if self.stage_journal.is_enabled() {
            let dur_us = dur.as_secs_f64() * 1e6;
            let end_us = started.duration_since(self.t0).as_secs_f64() * 1e6 + dur_us;
            self.stage_journal.emit(TraceEvent {
                ts_us: end_us - dur_us,
                dur_us,
                track: Track::Host,
                kind: EventKind::Stage {
                    stage: stage.label(),
                    cached,
                },
            });
        }
    }

    /// Accumulated wall-clock µs spent in each stage (cache hits included,
    /// so artifact reuse shows up as near-zero stage time), in
    /// [`Stage::ALL`] order.
    pub fn stage_times(&self) -> [(Stage, f64); 7] {
        let mut out = [(Stage::Frontend, 0.0); 7];
        for (i, s) in Stage::ALL.iter().enumerate() {
            out[i] = (*s, self.stage_wall[i].load(Ordering::Relaxed) as f64 / 1e3);
        }
        out
    }

    /// Frontend stage: parse + check `src`, cached by source hash (memory
    /// first, then the disk layer — a disk load skips the parse and counts
    /// as a hit).
    pub fn frontend(&self, src: &str) -> Result<Arc<FrontendArtifact>, PipelineError> {
        let t = Instant::now();
        let key = Fnv::new().write_str(src).finish();
        if let Some(fe) = self.frontends.lock().unwrap().get(&key) {
            self.meters.hit(Stage::Frontend);
            let fe = fe.clone();
            self.note_stage(Stage::Frontend, t, true);
            return Ok(fe);
        }
        let id = ArtifactId(key);
        if let Some(fe) = self.disk_load(Stage::Frontend, |d| d.load_frontend(id)) {
            self.meters.hit(Stage::Frontend);
            let fe = Arc::new(fe);
            self.frontends.lock().unwrap().insert(key, fe.clone());
            self.note_stage(Stage::Frontend, t, true);
            return Ok(fe);
        }
        self.meters.miss(Stage::Frontend);
        let (program, sema) = frontend(src).map_err(PipelineError::Frontend)?;
        let fe = Arc::new(FrontendArtifact { id, program, sema });
        self.frontends.lock().unwrap().insert(key, fe.clone());
        self.disk_store(Stage::Frontend, |d| d.store_frontend(&fe));
        self.note_stage(Stage::Frontend, t, false);
        Ok(fe)
    }

    /// Frontend stage for a pre-parsed program (e.g. one produced by a
    /// source-to-source transform such as [`crate::strip_privatization`]),
    /// keyed by the printed program text.
    pub fn frontend_program(&self, program: Program, sema: Sema) -> Arc<FrontendArtifact> {
        let t = Instant::now();
        let key = Fnv::new().write_str(&print_program(&program)).finish();
        if let Some(fe) = self.frontends.lock().unwrap().get(&key) {
            self.meters.hit(Stage::Frontend);
            let fe = fe.clone();
            self.note_stage(Stage::Frontend, t, true);
            return fe;
        }
        self.meters.miss(Stage::Frontend);
        let fe = Arc::new(FrontendArtifact {
            id: ArtifactId(key),
            program,
            sema,
        });
        self.frontends.lock().unwrap().insert(key, fe.clone());
        self.note_stage(Stage::Frontend, t, false);
        fe
    }

    /// Directives stage: census of the OpenACC pragmas in the program.
    pub fn directives(
        &self,
        fe: &FrontendArtifact,
    ) -> Result<Arc<DirectiveSummary>, PipelineError> {
        let t = Instant::now();
        let key = combine(fe.id.0, 0xd1ec);
        if let Some(d) = self.directives.lock().unwrap().get(&key) {
            self.meters.hit(Stage::Directives);
            let d = d.clone();
            self.note_stage(Stage::Directives, t, true);
            return Ok(d);
        }
        self.meters.miss(Stage::Directives);
        let mut sum = DirectiveSummary {
            id: ArtifactId(key),
            ..Default::default()
        };
        let mut err = None;
        for item in &fe.program.items {
            if let Item::Func(f) = item {
                walk_stmts(&f.body, &mut |s| match directives_of(s) {
                    Ok(ds) => {
                        for (d, _) in ds {
                            match d {
                                Directive::Compute(_) => sum.compute += 1,
                                Directive::Data(_) => sum.data += 1,
                                Directive::Loop(_) => sum.loops += 1,
                                Directive::HostData { .. } => sum.host_data += 1,
                                Directive::Update(_) => sum.updates += 1,
                                Directive::Wait(_) => sum.waits += 1,
                                Directive::Declare(_) => sum.declares += 1,
                                Directive::Cache(_) => sum.caches += 1,
                            }
                        }
                    }
                    Err(d) => {
                        if err.is_none() {
                            err = Some(d);
                        }
                    }
                });
            }
        }
        if let Some(d) = err {
            return Err(PipelineError::Directives(d));
        }
        let sum = Arc::new(sum);
        self.directives.lock().unwrap().insert(key, sum.clone());
        self.note_stage(Stage::Directives, t, false);
        Ok(sum)
    }

    /// Analysis/Instrument stage: translate under `topts`, cached by
    /// frontend id × options fingerprint (memory first, then the disk
    /// layer). Instrumented translations are metered as the Instrument
    /// stage, plain ones as Analysis.
    pub fn translate(
        &self,
        fe: &FrontendArtifact,
        topts: &TranslateOptions,
    ) -> Result<Arc<TranslatedArtifact>, PipelineError> {
        let t = Instant::now();
        let stage = if topts.instrument {
            Stage::Instrument
        } else {
            Stage::Analysis
        };
        let key = combine(fe.id.0, fp_translate_options(topts));
        if let Some(tr) = self.translations.lock().unwrap().get(&key) {
            self.meters.hit(stage);
            let tr = tr.clone();
            self.note_stage(stage, t, true);
            return Ok(tr);
        }
        let id = ArtifactId(key);
        if let Some(art) = self.disk_load(stage, |d| d.load_translated(stage, id)) {
            self.meters.hit(stage);
            let art = Arc::new(art);
            self.translations.lock().unwrap().insert(key, art.clone());
            self.note_stage(stage, t, true);
            return Ok(art);
        }
        self.meters.miss(stage);
        let tr = translate(&fe.program, &fe.sema, topts).map_err(PipelineError::Translate)?;
        let art = Arc::new(TranslatedArtifact {
            id,
            instrumented: topts.instrument,
            tr,
        });
        self.translations.lock().unwrap().insert(key, art.clone());
        self.disk_store(stage, |d| d.store_translated(stage, &art));
        self.note_stage(stage, t, false);
        Ok(art)
    }

    /// Plan stage: bind a translation to one options fingerprint.
    pub fn plan(&self, tr: &TranslatedArtifact, eopts: &ExecOptions) -> ExecPlan {
        let t = Instant::now();
        let key = combine(tr.id.0, fp_exec_options(eopts));
        if let Some(p) = self.plans.lock().unwrap().get(&key) {
            self.meters.hit(Stage::Plan);
            let p = p.clone();
            self.note_stage(Stage::Plan, t, true);
            return p;
        }
        self.meters.miss(Stage::Plan);
        let plan = ExecPlan {
            id: ArtifactId(key),
            translated: tr.id,
            mode: match eopts.mode {
                ExecMode::Normal => "normal",
                ExecMode::CpuOnly => "cpu",
                ExecMode::Verify(_) => "verify",
            },
            journaled: eopts.journal.is_enabled(),
        };
        self.plans.lock().unwrap().insert(key, plan.clone());
        self.note_stage(Stage::Plan, t, false);
        plan
    }

    /// Execute stage: run the plan, serving repeats from cache. Journaled
    /// plans replay their recorded event stream into the caller's journal
    /// on a hit, so the side effect is byte-identical to a real run.
    pub fn execute(
        &self,
        tr: &TranslatedArtifact,
        eopts: &ExecOptions,
    ) -> Result<Arc<RunResult>, PipelineError> {
        if let ExecMode::Verify(v) = &eopts.mode {
            if v.placement == crate::exec::dag::Placement::Measured && v.measured.is_none() {
                return self.execute_measured(tr, eopts);
            }
        }
        let plan = self.plan(tr, eopts);
        self.execute_plan(tr, eopts, &plan)
    }

    /// The `placement=measured` two-pass flow: run once under round-robin
    /// with a capture journal (pass 1, a normal cached Execute, so a warm
    /// session replays it instead of re-running), calibrate per-site
    /// costs from the observed kernel and staging spans, then run again
    /// with the calibrated costs driving EFT placement. The second pass
    /// carries the calibration in its fingerprint, so both passes cache
    /// independently and deterministically.
    fn execute_measured(
        &self,
        tr: &TranslatedArtifact,
        eopts: &ExecOptions,
    ) -> Result<Arc<RunResult>, PipelineError> {
        let ExecMode::Verify(v) = &eopts.mode else {
            unreachable!("execute_measured requires verify mode");
        };
        let capture = Journal::enabled();
        let mut probe = v.clone();
        probe.placement = crate::exec::dag::Placement::RoundRobin;
        let probe_opts = ExecOptions {
            mode: ExecMode::Verify(probe),
            journal: capture.clone(),
            ..eopts.clone()
        };
        self.execute(tr, &probe_opts)?;
        let measured = crate::exec::dag::cost::MeasuredCosts::from_journal(&capture.drain());
        let mut placed = v.clone();
        placed.measured = Some(measured);
        let placed_opts = ExecOptions {
            mode: ExecMode::Verify(placed),
            ..eopts.clone()
        };
        let plan = self.plan(tr, &placed_opts);
        self.execute_plan(tr, &placed_opts, &plan)
    }

    /// Execute stage against an already-materialized plan (avoids metering
    /// the Plan stage twice when the caller holds the plan).
    fn execute_plan(
        &self,
        tr: &TranslatedArtifact,
        eopts: &ExecOptions,
        plan: &ExecPlan,
    ) -> Result<Arc<RunResult>, PipelineError> {
        let t = Instant::now();
        let hit = self
            .runs
            .lock()
            .unwrap()
            .get(&plan.id.0)
            .map(|c| (c.result.clone(), c.events.clone()));
        if let Some((result, events)) = hit {
            self.meters.hit(Stage::Execute);
            if !events.is_empty() {
                // Replay the recorded journal side effect (outside the
                // cache lock; the extend is one batched acquisition).
                eopts.journal.extend((*events).clone());
            }
            self.note_stage(Stage::Execute, t, true);
            return Ok(result);
        }
        if let Some((result, events)) = self.disk_load(Stage::Execute, |d| d.load_run(plan.id)) {
            self.meters.hit(Stage::Execute);
            let result = Arc::new(result);
            if !events.is_empty() {
                eopts.journal.extend(events.clone());
            }
            self.runs.lock().unwrap().insert(
                plan.id.0,
                CachedRun {
                    result: result.clone(),
                    events: Arc::new(events),
                },
            );
            self.note_stage(Stage::Execute, t, true);
            return Ok(result);
        }
        self.meters.miss(Stage::Execute);
        let (result, events) = if plan.journaled {
            // Run against a private capture journal so exactly this run's
            // events are recorded for replay, then forward them to the
            // caller's journal.
            let capture = Journal::enabled();
            let run_opts = ExecOptions {
                journal: capture.clone(),
                ..eopts.clone()
            };
            let result = Arc::new(execute(&tr.tr, &run_opts).map_err(PipelineError::Run)?);
            let events = capture.drain();
            eopts.journal.extend(events.clone());
            (result, Arc::new(events))
        } else {
            let result = Arc::new(execute(&tr.tr, eopts).map_err(PipelineError::Run)?);
            (result, Arc::new(Vec::new()))
        };
        self.disk_store(Stage::Execute, |d| d.store_run(plan.id, &result, &events));
        self.runs.lock().unwrap().insert(
            plan.id.0,
            CachedRun {
                result: result.clone(),
                events,
            },
        );
        self.note_stage(Stage::Execute, t, false);
        Ok(result)
    }

    /// Verify stage: §III-A report (CPU baseline + verification run), both
    /// legs routed through the Execute stage so they cache independently.
    /// Mirrors [`crate::verify::verify_kernels`].
    pub fn verify(
        &self,
        fe: &FrontendArtifact,
        topts: &TranslateOptions,
        vopts: VerifyOptions,
    ) -> Result<(Arc<TranslatedArtifact>, Arc<VerificationReport>), PipelineError> {
        let tr = self.translate(fe, topts)?;
        let t = Instant::now();
        let vrun_opts = ExecOptions {
            mode: ExecMode::Verify(vopts),
            ..Default::default()
        };
        let key = combine(tr.id.0, fp_exec_options(&vrun_opts));
        if let Some(rep) = self.verifications.lock().unwrap().get(&key) {
            self.meters.hit(Stage::Verify);
            let rep = rep.clone();
            self.note_stage(Stage::Verify, t, true);
            return Ok((tr, rep));
        }
        self.meters.miss(Stage::Verify);
        let base = self.execute(
            &tr,
            &ExecOptions {
                mode: ExecMode::CpuOnly,
                race_detect: false,
                ..Default::default()
            },
        )?;
        let run = self.execute(&tr, &vrun_opts)?;
        let rep = Arc::new(VerificationReport {
            kernels: run.verify.clone(),
            breakdown: run.machine.clock.breakdown.clone(),
            cpu_baseline_us: base.sim_time_us(),
            races: run.races.clone(),
        });
        self.verifications.lock().unwrap().insert(key, rep.clone());
        self.note_stage(Stage::Verify, t, false);
        Ok((tr, rep))
    }

    /// End-to-end convenience: frontend → translate → execute.
    pub fn run_source(
        &self,
        src: &str,
        topts: &TranslateOptions,
        eopts: &ExecOptions,
    ) -> Result<PipelineRun, PipelineError> {
        let fe = self.frontend(src)?;
        let tr = self.translate(&fe, topts)?;
        let plan = self.plan(&tr, eopts);
        let result = self.execute_plan(&tr, eopts, &plan)?;
        Ok(PipelineRun {
            frontend: fe,
            translated: tr,
            plan,
            result,
        })
    }

    /// Per-stage hit/miss counters accumulated so far, plus disk-layer
    /// traffic when a disk cache is attached.
    pub fn stats(&self) -> PipelineStats {
        let mut out = self.meters.snapshot();
        if let Some(disk) = &self.disk {
            out.disk = disk.stats();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::TransferOverlay;

    const SRC: &str = "double q[32];\ndouble w[32];\nvoid main() {\n int j;\n for (j = 0; j < 32; j++) { w[j] = (double) j; }\n #pragma acc data copyin(w) copyout(q)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 32; j++) { q[j] = w[j] * 3.0; }\n }\n}";

    #[test]
    fn same_source_different_options_reuses_translation() {
        let s = Session::builder().build();
        let topts = TranslateOptions::default();
        s.run_source(SRC, &topts, &ExecOptions::default()).unwrap();
        let cpu = ExecOptions {
            mode: ExecMode::CpuOnly,
            ..Default::default()
        };
        s.run_source(SRC, &topts, &cpu).unwrap();
        let st = s.stats();
        assert_eq!(st.get(Stage::Frontend), StageCounts { hits: 1, misses: 1 });
        assert_eq!(st.get(Stage::Analysis), StageCounts { hits: 1, misses: 1 });
        // Different exec fingerprints: two plans, two real runs.
        assert_eq!(st.get(Stage::Plan).misses, 2);
        assert_eq!(st.get(Stage::Execute), StageCounts { hits: 0, misses: 2 });
    }

    #[test]
    fn identical_request_hits_the_run_cache() {
        let s = Session::builder().build();
        let topts = TranslateOptions::default();
        let a = s.run_source(SRC, &topts, &ExecOptions::default()).unwrap();
        let b = s.run_source(SRC, &topts, &ExecOptions::default()).unwrap();
        assert!(
            Arc::ptr_eq(&a.result, &b.result),
            "second run served from cache"
        );
        let st = s.stats();
        assert_eq!(st.get(Stage::Execute), StageCounts { hits: 1, misses: 1 });
        assert_eq!(st.get(Stage::Plan), StageCounts { hits: 1, misses: 1 });
    }

    #[test]
    fn journaled_runs_cache_and_replay_events() {
        let s = Session::builder().build();
        let topts = TranslateOptions::default();
        let first = openarc_trace::Journal::enabled();
        let a = s
            .run_source(
                SRC,
                &topts,
                &ExecOptions {
                    journal: first.clone(),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(a.plan.journaled);
        let recorded = first.snapshot();
        assert!(!recorded.is_empty(), "miss journaled real events");
        // Identical request with a fresh journal: served from cache, with
        // the recorded event stream replayed byte-for-byte.
        let second = openarc_trace::Journal::enabled();
        let b = s
            .run_source(
                SRC,
                &topts,
                &ExecOptions {
                    journal: second.clone(),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(Arc::ptr_eq(&a.result, &b.result), "hit reuses the run");
        assert_eq!(s.stats().get(Stage::Execute).hits, 1);
        assert_eq!(second.snapshot(), recorded, "replay is byte-identical");
        // Journaled and unjournaled requests stay separate plans.
        let c = s.run_source(SRC, &topts, &ExecOptions::default()).unwrap();
        assert!(!c.plan.journaled);
        assert!(!Arc::ptr_eq(&a.result, &c.result));
    }

    #[test]
    fn stage_times_and_stage_journal_observe_requests() {
        let j = openarc_trace::Journal::enabled();
        let s = Session::builder().journal(j.clone()).build();
        s.run_source(SRC, &TranslateOptions::default(), &ExecOptions::default())
            .unwrap();
        s.run_source(SRC, &TranslateOptions::default(), &ExecOptions::default())
            .unwrap();
        let times = s.stage_times();
        let get = |st: Stage| times.iter().find(|(x, _)| *x == st).unwrap().1;
        assert!(get(Stage::Execute) > 0.0, "execute stage accumulated time");
        let events = j.snapshot();
        let stages: Vec<(&str, bool)> = events
            .iter()
            .filter_map(|e| match e.kind {
                openarc_trace::EventKind::Stage { stage, cached } => Some((stage, cached)),
                _ => None,
            })
            .collect();
        // Both requests emitted Frontend and Execute spans; the second
        // request's are cache hits.
        assert!(stages.contains(&("frontend", false)));
        assert!(stages.contains(&("frontend", true)));
        assert!(stages.contains(&("execute", false)));
        assert!(stages.contains(&("execute", true)));
    }

    #[test]
    fn instrumented_translation_meters_separately() {
        let s = Session::builder().build();
        let fe = s.frontend(SRC).unwrap();
        let plain = TranslateOptions::default();
        let inst = TranslateOptions {
            instrument: true,
            ..Default::default()
        };
        let a = s.translate(&fe, &plain).unwrap();
        let b = s.translate(&fe, &inst).unwrap();
        let c = s.translate(&fe, &inst).unwrap();
        assert_ne!(a.id, b.id);
        assert!(Arc::ptr_eq(&b, &c));
        let st = s.stats();
        assert_eq!(st.get(Stage::Analysis), StageCounts { hits: 0, misses: 1 });
        assert_eq!(
            st.get(Stage::Instrument),
            StageCounts { hits: 1, misses: 1 }
        );
    }

    #[test]
    fn directive_census_counts_pragmas() {
        let s = Session::builder().build();
        let fe = s.frontend(SRC).unwrap();
        let d = s.directives(&fe).unwrap();
        assert_eq!(d.compute, 1);
        assert_eq!(d.data, 1);
        assert_eq!(d.total(), 2);
        s.directives(&fe).unwrap();
        assert_eq!(s.stats().get(Stage::Directives).hits, 1);
    }

    #[test]
    fn overlay_edits_change_the_plan_fingerprint() {
        let s = Session::builder().build();
        let fe = s.frontend(SRC).unwrap();
        let tr = s.translate(&fe, &TranslateOptions::default()).unwrap();
        let base = s.plan(&tr, &ExecOptions::default());
        let mut overlay = TransferOverlay::default();
        overlay.disable.insert(crate::exec::TransferKey {
            site: "data_enter0".into(),
            var: "w".into(),
            to_device: true,
        });
        let edited = s.plan(
            &tr,
            &ExecOptions {
                overlay,
                ..Default::default()
            },
        );
        assert_ne!(base.id, edited.id);
        assert_eq!(base.translated, edited.translated);
    }

    #[test]
    fn sessions_are_shareable_across_scheduler_workers() {
        let s = Session::builder().build();
        let topts = TranslateOptions::default();
        let tasks: Vec<_> = (0..8)
            .map(|_| {
                let s = &s;
                let topts = topts.clone();
                move || {
                    s.run_source(SRC, &topts, &ExecOptions::default())
                        .unwrap()
                        .result
                        .sim_time_us()
                }
            })
            .collect();
        let times = crate::sched::run_tasks(4, tasks);
        assert!(times.windows(2).all(|w| w[0] == w[1]));
        let st = s.stats();
        assert_eq!(
            st.get(Stage::Frontend).hits + st.get(Stage::Frontend).misses,
            8
        );
        // At least one of the eight requests computed each stage; the rest
        // hit (or raced the first miss, which is also a miss).
        assert!(st.get(Stage::Execute).hits >= 1);
    }

    fn disk_scratch(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "openarc-pipe-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_cache_survives_into_a_new_session() {
        let dir = disk_scratch("warm");
        let topts = TranslateOptions::default();
        let journal = openarc_trace::Journal::enabled();
        let eopts = ExecOptions {
            journal: journal.clone(),
            ..Default::default()
        };
        let cold = Session::builder().disk_cache(&dir).build();
        let a = cold.run_source(SRC, &topts, &eopts).unwrap();
        let recorded = journal.drain();
        let st = cold.stats();
        assert_eq!(st.disk.hits, 0);
        assert!(st.disk.stores >= 3, "frontend + analysis + run persisted");

        // A brand-new session over the same directory models a second
        // process: every persisted stage loads from disk — zero misses.
        let replay = openarc_trace::Journal::enabled();
        let warm = Session::builder().disk_cache(&dir).build();
        let b = warm
            .run_source(
                SRC,
                &topts,
                &ExecOptions {
                    journal: replay.clone(),
                    ..Default::default()
                },
            )
            .unwrap();
        let st = warm.stats();
        assert_eq!(st.get(Stage::Frontend), StageCounts { hits: 1, misses: 0 });
        assert_eq!(st.get(Stage::Analysis), StageCounts { hits: 1, misses: 0 });
        assert_eq!(st.get(Stage::Execute), StageCounts { hits: 1, misses: 0 });
        assert_eq!(st.disk.misses, 0);
        assert!(st.disk.hits >= 3);
        assert_eq!(a.result.sim_time_us(), b.result.sim_time_us());
        assert_eq!(a.result.kernel_launches, b.result.kernel_launches);
        assert_eq!(replay.drain(), recorded, "disk replay is byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_recompute_cleanly() {
        let dir = disk_scratch("corrupt");
        let topts = TranslateOptions::default();
        let cold = Session::builder().disk_cache(&dir).build();
        let a = cold
            .run_source(SRC, &topts, &ExecOptions::default())
            .unwrap();
        // Trash every persisted entry: truncation, garbage, and a valid
        // JSON document with the wrong shape.
        let mut i = 0;
        for stage in crate::cache::DISK_STAGES {
            let Ok(rd) = std::fs::read_dir(dir.join(stage.label())) else {
                continue;
            };
            for entry in rd.flatten() {
                let junk = ["", "{not json", "{\"schema\": 999}"][i % 3];
                std::fs::write(entry.path(), junk).unwrap();
                i += 1;
            }
        }
        assert!(i >= 3, "expected persisted entries to corrupt");
        let warm = Session::builder().disk_cache(&dir).build();
        let b = warm
            .run_source(SRC, &topts, &ExecOptions::default())
            .unwrap();
        assert_eq!(a.result.sim_time_us(), b.result.sim_time_us());
        let st = warm.stats();
        assert_eq!(st.disk.hits, 0);
        assert!(
            st.disk.corrupt + st.disk.misses >= 3,
            "every load either missed or detected corruption: {:?}",
            st.disk
        );
        assert!(st.disk.corrupt >= 1, "at least one corruption detected");
        // The recompute re-published fresh entries over the carnage.
        assert!(st.disk.stores >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_clears_a_configured_disk_layer() {
        let dir = disk_scratch("nocache");
        let s = Session::builder().disk_cache(&dir).no_cache().build();
        assert!(s.disk_cache().is_none());
        s.run_source(SRC, &TranslateOptions::default(), &ExecOptions::default())
            .unwrap();
        assert!(s.stats().disk.is_empty());
        assert!(!dir.exists(), "no directory created when the cache is off");
    }
}
