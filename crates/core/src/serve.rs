//! `openarc serve`: a multi-tenant compile-and-verify daemon.
//!
//! The one-shot CLI pays the full pipeline on every invocation; an
//! interactive debugging session (the paper's whole premise) re-verifies
//! the same program dozens of times with small edits. This module keeps
//! the pipeline **warm** in a long-running process: clients connect over
//! TCP (or a Unix socket), send newline-framed JSON [`Request`]s, and
//! get back [`Response`]s rendered by the same [`crate::api::handle`]
//! entry point the CLI uses — so a served report is byte-identical to
//! `openarc <action>` on the same program, while repeat requests hit the
//! session caches.
//!
//! ## Wire protocol
//!
//! One JSON object per line, both directions (`\n`-terminated, no
//! pretty-printing on the wire; a line longer than
//! [`ServerConfig::max_frame`] is refused and the connection closed).
//! Client→server lines are [`Request`]s (`action` = `run`/`cpu`/`check`/
//! `verify`/`profile`) plus two control actions: `{"action":"stats"}`
//! returns the daemon's counters and `{"action":"shutdown"}` stops the
//! daemon after acknowledging. Server→client lines are
//! `{"ok":true,"response":{...}}`, `{"ok":true,"stats":{...}}`,
//! `{"ok":true,"shutdown":true}`, or `{"ok":false,"error":{...}}` with a
//! structured [`ApiError`]. Malformed JSON gets an error line, never a
//! panic and never a dropped connection; only oversized frames and EOF
//! close the stream.
//!
//! ## Admission, tenancy, observability
//!
//! Requests are admitted to a bounded [`WorkQueue`]: when
//! [`ServerConfig::queue_capacity`] jobs are already waiting the daemon
//! refuses with [`ErrorKind::Overloaded`] and a `retry_after_ms` hint
//! sized from the observed queue depth × recent median service time —
//! load is shed at the door, not by timing out deep in the pipeline. A
//! request carrying `deadline_ms` that cannot *start* within its
//! deadline is dropped at dequeue with [`ErrorKind::DeadlineExceeded`].
//! Each tenant id is routed to its own warm [`Session`] whose disk cache
//! lives in a per-tenant namespace of one shared store (the tenant id is
//! folded into every cache key), so tenants never observe each other's
//! artifacts. A heartbeat thread samples the same gauges the `stats`
//! action reports and emits them as [`EventKind::Serve`] events on the
//! server journal (real wall-clock offsets since daemon start).

use crate::api::{self, ApiError, ErrorKind, Request, Response};
use crate::pipeline::{Session, Stage};
use crate::sched::WorkQueue;
use openarc_trace::json::Json;
use openarc_trace::{EventKind, Journal, TraceEvent, Track};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Largest accepted request/response line, bytes (8 MiB — a full
/// journaled bench-scale response is well under 1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 8 << 20;

/// How many recent per-request service times feed the p50/p95 gauges.
const SERVICE_WINDOW: usize = 256;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Pipeline worker threads (requests executing concurrently).
    pub workers: usize,
    /// Bounded admission queue: jobs *waiting* beyond the workers.
    pub queue_capacity: usize,
    /// Root of the shared content-addressed store; tenants get disjoint
    /// key namespaces inside it. `None` serves from memory only.
    pub cache_dir: Option<PathBuf>,
    /// Heartbeat period for [`EventKind::Serve`] gauge samples; `None`
    /// disables the heartbeat thread.
    pub stats_interval: Option<Duration>,
    /// Largest accepted wire line, bytes.
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            cache_dir: None,
            stats_interval: Some(Duration::from_millis(1000)),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// Daemon-level counters behind the `stats` action and the heartbeat.
#[derive(Default)]
struct ServerStats {
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    deadline_missed: AtomicU64,
    in_flight: AtomicU64,
    protocol_errors: AtomicU64,
    /// Ring of the last [`SERVICE_WINDOW`] request service times, µs.
    service_us: Mutex<Vec<u64>>,
}

impl ServerStats {
    fn record_service(&self, us: u64) {
        let mut ring = self.service_us.lock().expect("stats poisoned");
        if ring.len() == SERVICE_WINDOW {
            ring.remove(0);
        }
        ring.push(us);
    }

    /// Nearest-rank p50/p95 over the recent-service window, µs.
    fn percentiles(&self) -> (u64, u64) {
        let ring = self.service_us.lock().expect("stats poisoned");
        if ring.is_empty() {
            return (0, 0);
        }
        let mut sorted = ring.clone();
        sorted.sort_unstable();
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        (rank(0.50), rank(0.95))
    }
}

struct ServerInner {
    cfg: ServerConfig,
    /// One warm session per tenant id (`""` = the default tenant).
    tenants: Mutex<HashMap<String, Arc<Session>>>,
    pool: WorkQueue,
    stats: ServerStats,
    /// Server-level journal carrying [`EventKind::Serve`] heartbeats.
    journal: Journal,
    start: Instant,
    /// Set by the `shutdown` action; checked by the accept loop and the
    /// heartbeat thread.
    stopping: AtomicBool,
    /// Wakes the heartbeat thread early on shutdown.
    stop_signal: (Mutex<bool>, Condvar),
}

impl ServerInner {
    /// The warm session serving `tenant`, created on first use.
    fn session_for(&self, tenant: &str) -> Arc<Session> {
        let mut map = self.tenants.lock().expect("tenant map poisoned");
        if let Some(s) = map.get(tenant) {
            return Arc::clone(s);
        }
        let mut b = Session::builder();
        if let Some(dir) = &self.cfg.cache_dir {
            b = b.disk_cache(dir).cache_namespace(tenant);
        }
        let s = Arc::new(b.build());
        map.insert(tenant.to_string(), Arc::clone(&s));
        s
    }

    /// Aggregate per-stage and disk cache counters over every tenant
    /// session.
    fn cache_totals(&self) -> (Vec<(&'static str, u64, u64)>, [u64; 3]) {
        let map = self.tenants.lock().expect("tenant map poisoned");
        let mut stages: Vec<(&'static str, u64, u64)> =
            Stage::ALL.iter().map(|s| (s.label(), 0, 0)).collect();
        let mut disk = [0u64; 3];
        for session in map.values() {
            let st = session.stats();
            for (i, s) in Stage::ALL.iter().enumerate() {
                let c = st.get(*s);
                stages[i].1 += c.hits;
                stages[i].2 += c.misses;
            }
            disk[0] += st.disk.hits;
            disk[1] += st.disk.misses;
            disk[2] += st.disk.stores;
        }
        (stages, disk)
    }

    /// The gauge set shared by the `stats` action and the heartbeat.
    fn gauges(&self) -> Vec<(&'static str, f64)> {
        let (p50, p95) = self.stats.percentiles();
        let (stages, disk) = self.cache_totals();
        let (hits, misses) = stages
            .iter()
            .fold((0, 0), |(h, m), (_, sh, sm)| (h + sh, m + sm));
        vec![
            (
                "in_flight",
                self.stats.in_flight.load(Ordering::Relaxed) as f64,
            ),
            ("queue_depth", self.pool.depth() as f64),
            (
                "admitted",
                self.stats.admitted.load(Ordering::Relaxed) as f64,
            ),
            (
                "completed",
                self.stats.completed.load(Ordering::Relaxed) as f64,
            ),
            (
                "rejected",
                self.stats.rejected.load(Ordering::Relaxed) as f64,
            ),
            (
                "deadline_missed",
                self.stats.deadline_missed.load(Ordering::Relaxed) as f64,
            ),
            (
                "tenants",
                self.tenants.lock().expect("tenant map poisoned").len() as f64,
            ),
            ("p50_us", p50 as f64),
            ("p95_us", p95 as f64),
            ("cache_hits", hits as f64),
            ("cache_misses", misses as f64),
            ("disk_hits", disk[0] as f64),
            ("disk_misses", disk[1] as f64),
        ]
    }

    /// The `stats` action's payload.
    fn stats_json(&self) -> Json {
        let (p50, p95) = self.stats.percentiles();
        let (stages, disk) = self.cache_totals();
        Json::obj(vec![
            (
                "uptime_us",
                Json::from(self.start.elapsed().as_micros() as u64),
            ),
            (
                "in_flight",
                Json::from(self.stats.in_flight.load(Ordering::Relaxed)),
            ),
            ("queue_depth", Json::from(self.pool.depth() as u64)),
            ("queue_capacity", Json::from(self.pool.capacity() as u64)),
            (
                "admitted",
                Json::from(self.stats.admitted.load(Ordering::Relaxed)),
            ),
            (
                "completed",
                Json::from(self.stats.completed.load(Ordering::Relaxed)),
            ),
            (
                "rejected",
                Json::from(self.stats.rejected.load(Ordering::Relaxed)),
            ),
            (
                "deadline_missed",
                Json::from(self.stats.deadline_missed.load(Ordering::Relaxed)),
            ),
            (
                "protocol_errors",
                Json::from(self.stats.protocol_errors.load(Ordering::Relaxed)),
            ),
            (
                "tenants",
                Json::from(self.tenants.lock().expect("tenant map poisoned").len() as u64),
            ),
            ("p50_us", Json::from(p50)),
            ("p95_us", Json::from(p95)),
            (
                "stages",
                Json::Arr(
                    stages
                        .iter()
                        .map(|(label, hits, misses)| {
                            Json::obj(vec![
                                ("stage", Json::from(*label)),
                                ("hits", Json::from(*hits)),
                                ("misses", Json::from(*misses)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "disk",
                Json::obj(vec![
                    ("hits", Json::from(disk[0])),
                    ("misses", Json::from(disk[1])),
                    ("stores", Json::from(disk[2])),
                ]),
            ),
        ])
    }

    /// Emit one heartbeat: every gauge as an instant
    /// [`EventKind::Serve`] event stamped with the wall-clock offset
    /// since daemon start.
    fn heartbeat(&self) {
        let ts_us = self.start.elapsed().as_micros() as f64;
        for (gauge, value) in self.gauges() {
            self.journal.emit(TraceEvent {
                ts_us,
                dur_us: 0.0,
                track: Track::Host,
                kind: EventKind::Serve {
                    gauge: gauge.to_string(),
                    value,
                },
            });
        }
    }

    /// Run one admitted request on a worker thread.
    fn execute(&self, req: Request, admitted_at: Instant) -> Result<Response, ApiError> {
        if let Some(ms) = req.deadline_ms {
            if admitted_at.elapsed() >= Duration::from_millis(ms) {
                self.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
                return Err(ApiError {
                    kind: ErrorKind::DeadlineExceeded,
                    message: format!("request spent its {ms} ms deadline waiting in the queue"),
                    retry_after_ms: None,
                });
            }
        }
        self.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let session = self.session_for(&req.tenant);
        let out = api::handle(&session, &req);
        self.stats.record_service(t0.elapsed().as_micros() as u64);
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// Admission: hand the request to the bounded pool and wait for its
    /// result. Refused submissions become [`ErrorKind::Overloaded`] with
    /// a backoff hint of queue-depth × recent median service time.
    fn admit(self: &Arc<Self>, req: Request) -> Result<Response, ApiError> {
        let admitted_at = Instant::now();
        let (tx, rx) = mpsc::channel();
        let inner = Arc::clone(self);
        let submitted = self.pool.try_submit(move || {
            let _ = tx.send(inner.execute(req, admitted_at));
        });
        if let Err(full) = submitted {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let (p50_us, _) = self.stats.percentiles();
            let per_job_ms = (p50_us / 1000).max(1);
            return Err(ApiError {
                kind: ErrorKind::Overloaded,
                message: full.to_string(),
                retry_after_ms: Some((full.depth as u64 + 1) * per_job_ms),
            });
        }
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
        rx.recv()
            .unwrap_or_else(|_| Err(ApiError::internal("worker dropped the request")))
    }
}

/// What to send back for one request line, and whether to keep reading.
enum Outcome {
    Reply(Json),
    Shutdown(Json),
}

fn error_line(e: &ApiError) -> Json {
    Json::obj(vec![("ok", Json::from(false)), ("error", e.to_json())])
}

/// Dispatch one parsed request line.
fn dispatch(inner: &Arc<ServerInner>, line: &str) -> Outcome {
    let parsed = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return Outcome::Reply(error_line(&ApiError::bad_request(format!(
                "request is not valid JSON: {e}"
            ))));
        }
    };
    match parsed.get("action").and_then(Json::as_str) {
        Some("stats") => Outcome::Reply(Json::obj(vec![
            ("ok", Json::from(true)),
            ("stats", inner.stats_json()),
        ])),
        Some("shutdown") => Outcome::Shutdown(Json::obj(vec![
            ("ok", Json::from(true)),
            ("shutdown", Json::from(true)),
        ])),
        _ => match Request::from_json(&parsed) {
            Ok(req) => match inner.admit(req) {
                Ok(resp) => Outcome::Reply(Json::obj(vec![
                    ("ok", Json::from(true)),
                    ("response", resp.to_json()),
                ])),
                Err(e) => Outcome::Reply(error_line(&e)),
            },
            Err(e) => {
                inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Outcome::Reply(error_line(&e))
            }
        },
    }
}

/// One wire frame, or why there isn't one.
enum Frame {
    /// A complete line (without the trailing `\n`).
    Line(Vec<u8>),
    /// Clean EOF between frames.
    Eof,
    /// The peer sent more than `max_frame` bytes without a newline, or
    /// EOF arrived mid-line (truncated frame).
    Broken(&'static str),
}

/// Read one newline-terminated frame with a hard size cap, never
/// buffering more than the cap.
fn read_frame<R: BufRead>(reader: &mut R, max_frame: usize) -> io::Result<Frame> {
    let mut line = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if line.is_empty() {
                Frame::Eof
            } else {
                Frame::Broken("truncated frame (EOF before newline)")
            });
        }
        match chunk.iter().position(|b| *b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max_frame {
                    return Ok(Frame::Broken("frame exceeds the size limit"));
                }
                line.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return Ok(Frame::Line(line));
            }
            None => {
                let n = chunk.len();
                if line.len() + n > max_frame {
                    return Ok(Frame::Broken("frame exceeds the size limit"));
                }
                line.extend_from_slice(chunk);
                reader.consume(n);
            }
        }
    }
}

/// Serve one connection: frames in, responses out, until EOF, a broken
/// frame, or a `shutdown` action. Returns `true` if the daemon should
/// stop.
fn handle_conn<R: Read, W: Write>(inner: &Arc<ServerInner>, reader: R, mut writer: W) -> bool {
    let mut reader = BufReader::new(reader);
    loop {
        let frame = match read_frame(&mut reader, inner.cfg.max_frame) {
            Ok(f) => f,
            Err(_) => return false,
        };
        let line = match frame {
            Frame::Eof => return false,
            Frame::Broken(why) => {
                // Framing is lost; report once and close.
                inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = writeln!(writer, "{}", error_line(&ApiError::bad_request(why)));
                return false;
            }
            Frame::Line(bytes) => match String::from_utf8(bytes) {
                Ok(s) => s,
                Err(_) => {
                    inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = writeln!(
                        writer,
                        "{}",
                        error_line(&ApiError::bad_request("request is not UTF-8"))
                    );
                    continue;
                }
            },
        };
        if line.trim().is_empty() {
            continue;
        }
        match dispatch(inner, &line) {
            Outcome::Reply(json) => {
                if writeln!(writer, "{json}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return false;
                }
            }
            Outcome::Shutdown(json) => {
                let _ = writeln!(writer, "{json}").and_then(|()| writer.flush());
                return true;
            }
        }
    }
}

/// A bound, not-yet-running daemon. Create with [`Server::bind_tcp`]
/// (use port `0` for an ephemeral port), then call [`Server::run`]
/// (blocks until a client sends `{"action":"shutdown"}`).
pub struct Server {
    listener: TcpListener,
    inner: Arc<ServerInner>,
}

impl Server {
    /// Bind a TCP endpoint (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind_tcp(cfg: ServerConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            inner: Arc::new(ServerInner {
                pool: WorkQueue::new(cfg.workers, cfg.queue_capacity),
                cfg,
                tenants: Mutex::new(HashMap::new()),
                stats: ServerStats::default(),
                journal: Journal::enabled(),
                start: Instant::now(),
                stopping: AtomicBool::new(false),
                stop_signal: (Mutex::new(false), Condvar::new()),
            }),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server journal: heartbeat [`EventKind::Serve`] gauge samples.
    pub fn journal(&self) -> &Journal {
        &self.inner.journal
    }

    /// The daemon's current stats payload (same shape as the `stats`
    /// wire action).
    pub fn stats_json(&self) -> Json {
        self.inner.stats_json()
    }

    /// Accept connections until a client sends `{"action":"shutdown"}`.
    ///
    /// Each connection gets its own thread; requests funnel through the
    /// bounded worker pool. The final heartbeat is emitted on exit, so
    /// the journal always carries at least one full gauge set.
    pub fn run(&self) -> io::Result<()> {
        let heartbeat = self.inner.cfg.stats_interval.map(|period| {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || {
                let (lock, cv) = &inner.stop_signal;
                let mut stopped = lock.lock().expect("stop signal poisoned");
                loop {
                    let (guard, timeout) = cv
                        .wait_timeout(stopped, period)
                        .expect("stop signal poisoned");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        inner.heartbeat();
                    }
                }
            })
        });
        let mut conns = Vec::new();
        for stream in self.listener.incoming() {
            if self.inner.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let inner = Arc::clone(&self.inner);
            let addr = self.listener.local_addr();
            conns.push(std::thread::spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => return,
                };
                if handle_conn(&inner, reader, stream) {
                    inner.stopping.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it observes the flag.
                    if let Ok(addr) = addr {
                        let _ = TcpStream::connect(addr);
                    }
                }
            }));
        }
        // Stop the heartbeat, then let every in-flight connection finish
        // before reporting the final gauge set.
        {
            let (lock, cv) = &self.inner.stop_signal;
            *lock.lock().expect("stop signal poisoned") = true;
            cv.notify_all();
        }
        if let Some(h) = heartbeat {
            let _ = h.join();
        }
        for c in conns {
            let _ = c.join();
        }
        self.inner.heartbeat();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "double a[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { a[j] = 2.0 * (double) j; }\n}";

    fn start(cfg: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind_tcp(cfg, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn send_lines(addr: SocketAddr, lines: &[String]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut out = Vec::new();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for line in lines {
            writeln!(stream, "{line}").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            out.push(resp);
        }
        out
    }

    fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
        send_lines(addr, &[r#"{"action":"shutdown"}"#.to_string()]);
        handle.join().unwrap();
    }

    #[test]
    fn serves_requests_and_stats_over_tcp() {
        let (addr, handle) = start(ServerConfig {
            stats_interval: None,
            ..ServerConfig::default()
        });
        let req = Request::new(crate::api::Action::Run, SRC);
        let lines = send_lines(
            addr,
            &[
                req.to_json().to_string(),
                req.to_json().to_string(),
                r#"{"action":"stats"}"#.to_string(),
            ],
        );
        let first = Json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        let resp = Response::from_json(first.get("response").unwrap()).unwrap();
        assert_eq!(resp.exit_code, 0);
        assert!(resp.report.contains("kernel launches   : 1"));
        // Second identical request replays from the warm session:
        // same bytes, but the stage counters now show hits.
        let second =
            Response::from_json(Json::parse(&lines[1]).unwrap().get("response").unwrap()).unwrap();
        assert_eq!(second.report, resp.report);
        assert_eq!(second.sim_time_us, resp.sim_time_us);
        let frontend = second
            .stages
            .iter()
            .find(|s| s.stage == "frontend")
            .unwrap();
        assert_eq!((frontend.hits, frontend.misses), (1, 1));
        let stats = Json::parse(&lines[2]).unwrap();
        let stats = stats.get("stats").unwrap();
        assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("rejected").and_then(Json::as_u64), Some(0));
        shutdown(addr, handle);
    }

    #[test]
    fn garbage_and_bad_requests_get_error_lines_not_panics() {
        let (addr, handle) = start(ServerConfig {
            stats_interval: None,
            ..ServerConfig::default()
        });
        let lines = send_lines(
            addr,
            &[
                "this is not json".to_string(),
                r#"{"action":"frobnicate","source":"x"}"#.to_string(),
                r#"{"action":"run"}"#.to_string(),
                // The connection survived all three errors.
                r#"{"action":"stats"}"#.to_string(),
            ],
        );
        for line in &lines[..3] {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
            let e = ApiError::from_json(v.get("error").unwrap()).unwrap();
            assert_eq!(e.kind, ErrorKind::BadRequest);
        }
        let stats = Json::parse(&lines[3]).unwrap();
        assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("protocol_errors"))
                .and_then(Json::as_u64),
            Some(3)
        );
        shutdown(addr, handle);
    }

    #[test]
    fn oversized_frames_close_the_connection_with_an_error() {
        let (addr, handle) = start(ServerConfig {
            stats_interval: None,
            max_frame: 256,
            ..ServerConfig::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&vec![b'x'; 4096]).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut reply)
            .unwrap();
        let v = Json::parse(&reply).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(reply.contains("size limit"));
        // Server closed its side: the next read returns EOF.
        let mut rest = String::new();
        BufReader::new(stream).read_line(&mut rest).unwrap();
        assert!(rest.is_empty());
        shutdown(addr, handle);
    }

    #[test]
    fn truncated_frames_never_hang_the_server() {
        let (addr, handle) = start(ServerConfig {
            stats_interval: None,
            ..ServerConfig::default()
        });
        // Half a request, then EOF: the server drops the connection and
        // keeps serving others.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"action\":\"ru").unwrap();
        drop(stream);
        let lines = send_lines(addr, &[r#"{"action":"stats"}"#.to_string()]);
        assert_eq!(
            Json::parse(&lines[0])
                .unwrap()
                .get("ok")
                .and_then(Json::as_bool),
            Some(true)
        );
        shutdown(addr, handle);
    }

    #[test]
    fn tenants_get_isolated_cache_namespaces() {
        let dir =
            std::env::temp_dir().join(format!("openarc-serve-tenants-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (addr, handle) = start(ServerConfig {
            stats_interval: None,
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        });
        let mut a = Request::new(crate::api::Action::Run, SRC);
        a.tenant = "team-a".into();
        let mut b = a.clone();
        b.tenant = "team-b".into();
        let lines = send_lines(
            addr,
            &[
                a.to_json().to_string(),
                b.to_json().to_string(),
                r#"{"action":"stats"}"#.to_string(),
            ],
        );
        // Identical program, identical bytes — but each tenant compiled
        // it in its own session: every stage missed twice, and the disk
        // store holds two disjoint key sets.
        assert_eq!(
            Json::parse(&lines[0]).unwrap().get("response"),
            Json::parse(&lines[1]).unwrap().get("response")
        );
        let stats = Json::parse(&lines[2]).unwrap();
        let stats = stats.get("stats").unwrap();
        assert_eq!(stats.get("tenants").and_then(Json::as_u64), Some(2));
        let disk = stats.get("disk").unwrap();
        assert_eq!(disk.get("hits").and_then(Json::as_u64), Some(0));
        let stores = disk.get("stores").and_then(Json::as_u64).unwrap();
        assert!(stores >= 2, "two tenants stored disjoint entries");
        shutdown(addr, handle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_deadline_is_rejected_at_dequeue() {
        let (addr, handle) = start(ServerConfig {
            stats_interval: None,
            ..ServerConfig::default()
        });
        let mut req = Request::new(crate::api::Action::Run, SRC);
        req.deadline_ms = Some(0);
        let lines = send_lines(addr, &[req.to_json().to_string()]);
        let v = Json::parse(&lines[0]).unwrap();
        let e = ApiError::from_json(v.get("error").unwrap()).unwrap();
        assert_eq!(e.kind, ErrorKind::DeadlineExceeded);
        shutdown(addr, handle);
    }

    #[test]
    fn heartbeat_emits_serve_gauges() {
        let server = Server::bind_tcp(
            ServerConfig {
                stats_interval: None,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        server.inner.heartbeat();
        let events = server.journal().drain();
        assert!(!events.is_empty());
        let gauges: Vec<&str> = events
            .iter()
            .map(|e| match &e.kind {
                EventKind::Serve { gauge, .. } => gauge.as_str(),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        for want in ["in_flight", "queue_depth", "p50_us", "p95_us", "cache_hits"] {
            assert!(gauges.contains(&want), "missing gauge {want}");
        }
    }
}
