//! Cost-model-driven device placement for the launch DAG.
//!
//! The round-robin plan of [`DepDag::device_plan`] balances *counts*, not
//! *work*: BENCH_dag showed CFD at 0.84/0.13 device utilization because a
//! tiny step-factor kernel shares a level with three heavy ones. This
//! module estimates what each launch site actually costs on the simulated
//! machine and list-schedules the DAG by earliest finish time (EFT):
//! level by level (the executor's real concurrency unit — consecutive
//! levels are separated by a host sync), heaviest site first, each one
//! going to the device whose level lane finishes it earliest, with
//! aggregate load and input locality breaking ties, then a refinement
//! pass that drains the bottleneck device within round-robin's per-level
//! makespan budget.
//!
//! Costs come from two places:
//!
//! * **Static estimates** ([`estimate_site_costs`]): kernel time from
//!   [`CostModel::kernel_time`] over a thread-count proxy (the largest
//!   statically-sized aggregate the site writes) and a per-thread
//!   instruction proxy (the kernel chunk's bytecode length); staging cost
//!   as one [`CostModel::transfer_time`] per touched aggregate.
//! * **Journal calibration** ([`MeasuredCosts`]): a prior run's journal
//!   already contains the exact simulated duration of every
//!   `KernelComplete` span and every `*_verify` staging transfer, so a
//!   second pass can re-place with observed per-site costs — the paper's
//!   measure-then-optimize loop closed automatically.
//!
//! Either way a site's table entry is its *total* predicted load: the
//! per-launch cost times the site's estimated launch count
//! ([`launch_multiplicity`], from the trip counts of the loops enclosing
//! the launch in the lowered host AST). The placement is per *site*, but
//! the device queues fill per *launch* — a kernel inside a `2`-trip
//! Runge-Kutta stage loads its device twice as much per outer iteration
//! as its level-mates, which is exactly the imbalance round-robin cannot
//! see.
//!
//! Greedy EFT carries no optimality guarantee, so [`eft_plan`] is a
//! *portfolio*: it evaluates both its greedy plan and the round-robin
//! plan under the same model and returns whichever predicts the better
//! [`Schedule::objective`] — makespan first, bottleneck device load as
//! tie-break. The EFT plan's predicted objective
//! therefore never exceeds round-robin's, by construction. Everything
//! here is deterministic — ordered maps, index-ordered tie-breaking, no
//! hashing — so a plan is a pure function of (DAG, cost table, device
//! count).

use super::DepDag;
use crate::ir::RtOp;
use crate::translate::Translated;
use openarc_gpusim::{CostModel, DeviceId};
use openarc_minic::ast::{AssignOp, BinOp, Block, Expr, ExprKind, Item, Stmt, StmtKind, UnOp};
use openarc_trace::{EventKind, TraceEvent};
use std::collections::BTreeMap;

/// Fallback bytes for an aggregate whose static size is unknown
/// (pointer-typed or dynamically sized): one page.
const DEFAULT_BYTES: u64 = 4096;

/// Fallback per-thread instruction count when a kernel chunk is missing.
const DEFAULT_BODY_LEN: u64 = 16;

/// Fallback trip count for a loop whose bounds the estimator cannot fold.
const DEFAULT_TRIPS: u64 = 8;

/// Cap on a site's estimated launch count; keeps pathological nests from
/// overflowing into meaningless magnitudes.
const MULT_CAP: u64 = 1 << 20;

/// Predicted cost of one launch site over the whole run, µs of simulated
/// time (per-launch cost × estimated launch count).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SiteCost {
    /// Device execution spans (launch overhead + kernel time).
    pub kernel_us: f64,
    /// Host→device staging transfers charged at issue.
    pub stage_us: f64,
}

impl SiteCost {
    /// Total predicted device-side occupancy of the site.
    pub fn total_us(&self) -> f64 {
        self.kernel_us + self.stage_us
    }
}

/// Per-site total costs plus launch-count estimates, aligned with a
/// [`DepDag`]'s sites.
#[derive(Debug, Clone, Default)]
pub struct CostTable {
    /// One entry per launch site: its total predicted device load.
    pub sites: Vec<SiteCost>,
    /// Estimated launches per site (≥ 1); already folded into `sites`,
    /// kept so measured per-launch means can be re-scaled the same way.
    pub mult: Vec<u64>,
}

/// Fold an integer-constant expression (literals and unary negation).
fn const_i64(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::Unary {
            op: UnOp::Neg,
            expr,
        } => const_i64(expr).map(|v| v.wrapping_neg()),
        _ => None,
    }
}

/// Estimate the trip count of a lowered `for` header. Only the canonical
/// counted shape folds — `v = a; v </<= b; v += c` with constant `a`,
/// `b`, `c` — everything else gets [`DEFAULT_TRIPS`].
fn loop_trips(init: Option<&Stmt>, cond: Option<&Expr>, step: Option<&Stmt>) -> u64 {
    let folded = || -> Option<u64> {
        let (var, start) = match init.map(|s| &s.kind) {
            Some(StmtKind::Assign {
                target,
                op: AssignOp::Set,
                value,
            }) => (target.base().to_string(), const_i64(value)?),
            Some(StmtKind::Decl(d)) => (d.name.clone(), const_i64(d.init.as_ref()?)?),
            _ => return None,
        };
        let (bound, inclusive) = match cond.map(|e| &e.kind) {
            Some(ExprKind::Binary { op, lhs, rhs })
                if matches!(op, BinOp::Lt | BinOp::Le)
                    && matches!(&lhs.kind, ExprKind::Var(n) if *n == var) =>
            {
                (const_i64(rhs)?, *op == BinOp::Le)
            }
            _ => return None,
        };
        let stride = match step.map(|s| &s.kind) {
            Some(StmtKind::Assign { target, op, value }) if target.base() == var => match op {
                AssignOp::Add => const_i64(value)?,
                AssignOp::Set => match &value.kind {
                    ExprKind::Binary {
                        op: BinOp::Add,
                        lhs,
                        rhs,
                    } if matches!(&lhs.kind, ExprKind::Var(n) if *n == var) => const_i64(rhs)?,
                    _ => return None,
                },
                _ => return None,
            },
            _ => return None,
        };
        if stride <= 0 {
            return None;
        }
        let span = bound + i64::from(inclusive) - start;
        Some((span.max(0) as u64).div_ceil(stride as u64))
    };
    folded().unwrap_or(DEFAULT_TRIPS)
}

/// Walk a lowered block recording, for every `__host_op` launch marker,
/// the product of enclosing-loop trip counts.
fn walk_mult(block: &Block, mult: u64, ops: &[RtOp], out: &mut [u64]) {
    for s in &block.stmts {
        match &s.kind {
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let trips = loop_trips(init.as_deref(), cond.as_ref(), step.as_deref());
                walk_mult(
                    body,
                    mult.saturating_mul(trips.max(1)).min(MULT_CAP),
                    ops,
                    out,
                );
            }
            StmtKind::While { body, .. } => {
                walk_mult(
                    body,
                    mult.saturating_mul(DEFAULT_TRIPS).min(MULT_CAP),
                    ops,
                    out,
                );
            }
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                walk_mult(then_blk, mult, ops, out);
                if let Some(e) = else_blk {
                    walk_mult(e, mult, ops, out);
                }
            }
            StmtKind::Block(b) => walk_mult(b, mult, ops, out),
            StmtKind::Expr(Expr {
                kind: ExprKind::Call { name, args },
                ..
            }) if name == openarc_vm::HOST_OP => {
                if let Some(id) = args.first().and_then(const_i64) {
                    if let Some(RtOp::Launch(k)) = ops.get(id as usize) {
                        if let Some(slot) = out.get_mut(*k) {
                            *slot = (*slot).max(mult);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Estimate how many times each launch site fires over one program run:
/// the product of the trip counts of the loops enclosing its `__host_op`
/// marker in the lowered host AST. Constant-bound counted loops fold
/// exactly; anything else contributes `DEFAULT_TRIPS`. Sites the walk
/// never reaches (dead code) report 1.
pub fn launch_multiplicity(tr: &Translated) -> Vec<u64> {
    let mut out = vec![0u64; tr.kernels.len()];
    for item in &tr.host_program.items {
        if let Item::Func(f) = item {
            walk_mult(&f.body, 1, &tr.ops, &mut out);
        }
    }
    for m in &mut out {
        *m = (*m).max(1);
    }
    out
}

/// Statically estimate every site's cost from the translated program.
///
/// Thread counts are unknowable at plan time (`n_threads_global` is
/// assigned right before each launch), so the estimator uses the largest
/// statically-declared length among the aggregates the site writes (its
/// output size bounds its iteration space), falling back to its read
/// aggregates, then to a single thread. Per-thread work is proxied by the
/// kernel chunk's instruction count. Each site's per-launch estimate is
/// scaled by its [`launch_multiplicity`].
pub fn estimate_site_costs(tr: &Translated, model: &CostModel) -> CostTable {
    let agg_bytes = |name: &str| -> Option<(u64, u64)> {
        // (elements, bytes) of a statically-sized host aggregate.
        let slot = tr.host_module.global_slot(name)?;
        let ty = &tr.host_module.globals[slot as usize].ty;
        let len = ty.static_len()?;
        let elem = ty.elem().map(|e| e.size_bytes()).unwrap_or(8);
        Some((len, len * elem))
    };

    let mult = launch_multiplicity(tr);
    let sites = tr
        .kernels
        .iter()
        .zip(&mult)
        .map(|(k, &m)| {
            let body_len = tr
                .kernel_module
                .chunk(&k.name)
                .map(|c| c.code.len() as u64)
                .unwrap_or(DEFAULT_BODY_LEN)
                .max(1);
            let n_est = k
                .gpu_writes
                .iter()
                .chain(k.gpu_reads.iter())
                .filter_map(|v| agg_bytes(v).map(|(len, _)| len))
                .max()
                .unwrap_or(1)
                .max(1);
            let kernel_us = model.kernel_time(n_est * body_len, body_len);
            let stage_us: f64 = k
                .gpu_reads
                .iter()
                .chain(k.gpu_writes.iter())
                .collect::<std::collections::BTreeSet<_>>()
                .iter()
                .map(|v| {
                    let bytes = agg_bytes(v).map(|(_, b)| b).unwrap_or(DEFAULT_BYTES);
                    model.transfer_time(bytes)
                })
                .sum();
            SiteCost {
                kernel_us: kernel_us * m as f64,
                stage_us: stage_us * m as f64,
            }
        })
        .collect();

    CostTable { sites, mult }
}

/// Per-kernel costs calibrated from a prior run's journal
/// (`placement=measured`). Keys are kernel names — launch sites have
/// unique kernel names, so this is per-site resolution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeasuredCosts {
    /// Mean `KernelComplete` span duration per kernel, µs.
    pub kernel_us: BTreeMap<String, f64>,
    /// Mean total `*_verify` staging-transfer duration per launch, µs.
    pub stage_us: BTreeMap<String, f64>,
}

impl MeasuredCosts {
    /// No observations at all?
    pub fn is_empty(&self) -> bool {
        self.kernel_us.is_empty() && self.stage_us.is_empty()
    }

    /// Calibrate from a run journal: average every kernel's execution
    /// span and the staging transfers charged at its `{kernel}_verify`
    /// site over however many times the site launched.
    pub fn from_journal(events: &[TraceEvent]) -> MeasuredCosts {
        let mut exec: BTreeMap<String, (f64, u64)> = BTreeMap::new();
        let mut stage: BTreeMap<String, f64> = BTreeMap::new();
        for e in events {
            match &e.kind {
                EventKind::KernelComplete { kernel } => {
                    let s = exec.entry(kernel.clone()).or_insert((0.0, 0));
                    s.0 += e.dur_us;
                    s.1 += 1;
                }
                EventKind::Transfer { site, .. } => {
                    if let Some(kernel) = site.strip_suffix("_verify") {
                        *stage.entry(kernel.to_string()).or_insert(0.0) += e.dur_us;
                    }
                }
                _ => {}
            }
        }
        MeasuredCosts {
            stage_us: stage
                .into_iter()
                .map(|(k, total)| {
                    let launches = exec.get(&k).map(|s| s.1).unwrap_or(1).max(1);
                    (k, total / launches as f64)
                })
                .collect(),
            kernel_us: exec
                .into_iter()
                .map(|(k, (total, n))| (k, total / n.max(1) as f64))
                .collect(),
        }
    }
}

impl CostTable {
    /// Override static estimates with journal observations where present;
    /// sites the journal never saw keep their static estimate. Observed
    /// values are per-launch means, so they scale by the same launch
    /// multiplicity the static estimates already carry.
    pub fn apply_measured(&mut self, kernels: &[crate::ir::KernelInfo], m: &MeasuredCosts) {
        for (i, k) in kernels.iter().enumerate() {
            let scale = self.mult.get(i).copied().unwrap_or(1).max(1) as f64;
            if let Some(&us) = m.kernel_us.get(&k.name) {
                self.sites[i].kernel_us = us * scale;
            }
            if let Some(&us) = m.stage_us.get(&k.name) {
                self.sites[i].stage_us = us * scale;
            }
        }
    }
}

/// A fully-evaluated placement: per-site device, predicted start/finish
/// times on the model timeline, and the resulting makespan.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Device per launch site.
    pub plan: Vec<DeviceId>,
    /// Predicted issue time of each site, µs.
    pub start_us: Vec<f64>,
    /// Predicted finish time of each site, µs.
    pub finish_us: Vec<f64>,
    /// Predicted completion time of the whole DAG, µs (one-instance
    /// critical path through queues and dependency edges).
    pub makespan_us: f64,
    /// Predicted total load per device, µs.
    pub busy_us: Vec<f64>,
}

impl Schedule {
    /// The most-loaded device's total, µs — how well the plan spreads the
    /// program's whole device-side load.
    pub fn bottleneck_us(&self) -> f64 {
        self.busy_us.iter().copied().fold(0.0, f64::max)
    }

    /// The objective the placement portfolio minimizes: predicted
    /// makespan first, bottleneck load as the tie-break. Ties on both are
    /// common — a solo level's device cannot change the makespan — and
    /// the bottleneck term steers those free choices toward balance.
    pub fn objective(&self) -> (f64, f64) {
        (self.makespan_us, self.bottleneck_us())
    }
}

/// Model-evaluate a fixed device plan under the executor's *barrier*
/// semantics.
///
/// The verified executor issues launches in program order and retires
/// in-flight launches whenever a new site's footprint conflicts with one
/// of them — and the host clock syncs past the whole window at each such
/// retirement. Sites on the same DAG level are pairwise conflict-free
/// (an edge forces a level difference), so on the simulated machine a
/// level's sites genuinely overlap across devices, while consecutive
/// levels are separated by a host sync. The evaluator reproduces that:
/// per level, each device runs its assigned sites back to back from the
/// level's start; the next level starts when the slowest device lane
/// finishes. Starts and finishes therefore respect every RAW/WAR/WAW
/// edge (dependencies always cross a level boundary).
pub fn evaluate_plan(
    dag: &DepDag,
    costs: &CostTable,
    model: &CostModel,
    plan: &[DeviceId],
    n_devices: usize,
) -> Schedule {
    let _ = model;
    let n = n_devices.max(1);
    let mut busy_us = vec![0.0f64; n];
    let mut start_us = vec![0.0f64; dag.len()];
    let mut finish_us = vec![0.0f64; dag.len()];
    let mut level_start = 0.0f64;
    let mut lane = vec![0.0f64; n]; // device lanes within the current level
    let mut cur_level = 0usize;
    for &j in &dag.schedule() {
        if dag.levels[j] != cur_level {
            // Barrier: the next level starts when every lane has drained.
            level_start = lane.iter().copied().fold(level_start, f64::max);
            lane.iter_mut().for_each(|l| *l = level_start);
            cur_level = dag.levels[j];
        }
        let d = (plan[j].0 as usize).min(n - 1);
        let dur = costs.sites.get(j).copied().unwrap_or_default().total_us();
        let start = lane[d].max(level_start);
        start_us[j] = start;
        finish_us[j] = start + dur;
        lane[d] = finish_us[j];
        busy_us[d] += dur;
    }
    let makespan_us = finish_us.iter().copied().fold(0.0, f64::max);
    Schedule {
        plan: plan.to_vec(),
        start_us,
        finish_us,
        makespan_us,
        busy_us,
    }
}

/// Earliest-finish-time list scheduler with a round-robin portfolio
/// fallback.
///
/// Sites are scheduled level by level (the executor's real concurrency
/// unit — see [`evaluate_plan`]), heaviest site first within a level,
/// each going to the device whose level lane finishes it earliest. Ties
/// break by, in order: lighter total device load so far (solo levels and
/// symmetric lanes spread instead of stacking), fewer cross-device input
/// hops (a site prefers the device already holding its inputs — on this
/// machine locality saves a one-time allocation, below the model's
/// resolution, so it ranks as a preference rather than a cost), then the
/// lower device id.
///
/// After the per-level pass, a refinement loop drains load off the
/// bottleneck device: it moves sites away from the most-loaded device
/// whenever the move strictly lowers the heaviest device's total load
/// *and* keeps the donor level's makespan within round-robin's makespan
/// for that same level. The second condition is the sim-safety bound —
/// at every host sync point the refined plan's device lanes are no
/// longer than round-robin's, so refinement can trade predicted makespan
/// slack for balance without ever making the real run slower than the
/// round-robin baseline. (The slack is real: a level whose sole member
/// dominates the program, like CFD's update kernel, pins the makespan no
/// matter where it runs, so only aggregate balance is left to optimize.)
///
/// The chosen plan is re-evaluated with [`evaluate_plan`] and compared —
/// under the same evaluator — against [`DepDag::device_plan`]'s
/// round-robin on [`Schedule::objective`]; the better plan wins, so the
/// returned schedule's predicted objective is never worse than
/// round-robin's. With one device both collapse to the all-primary plan.
pub fn eft_plan(dag: &DepDag, costs: &CostTable, model: &CostModel, n_devices: usize) -> Schedule {
    const EPS: f64 = 1e-9;
    let n = n_devices.max(1);
    let mut plan = vec![DeviceId::PRIMARY; dag.len()];
    let mut busy = vec![0.0f64; n];
    let mut loc: Vec<Option<DeviceId>> = vec![None; dag.vars.names.len()];
    let schedule = dag.schedule();
    let site_cost = |j: usize| costs.sites.get(j).copied().unwrap_or_default().total_us();
    let rr_plan = dag.device_plan(n);

    // Sites grouped by level, in schedule order.
    let mut levels: Vec<Vec<usize>> = Vec::new();
    for &j in &schedule {
        let l = dag.levels[j];
        if levels.len() <= l {
            levels.resize(l + 1, Vec::new());
        }
        levels[l].push(j);
    }
    // Round-robin's per-level makespan: the sim-safety budget each level
    // of the refined plan must stay within.
    let rr_level_max: Vec<f64> = levels
        .iter()
        .map(|members| {
            let mut lane = vec![0.0f64; n];
            for &j in members {
                lane[(rr_plan[j].0 as usize).min(n - 1)] += site_cost(j);
            }
            lane.iter().copied().fold(0.0, f64::max)
        })
        .collect();

    // Per-level lane totals of the plan under construction, kept for the
    // refinement pass's level-budget checks.
    let mut level_lane: Vec<Vec<f64>> = vec![vec![0.0f64; n]; levels.len()];

    for (l, members) in levels.iter().enumerate() {
        // Longest-processing-time order within the level; index breaks
        // cost ties so the plan stays a pure function of its inputs.
        let mut order = members.clone();
        order.sort_by(|&a, &b| {
            site_cost(b)
                .partial_cmp(&site_cost(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let lane = &mut level_lane[l];
        for &j in &order {
            let hops = |dev: DeviceId| -> usize {
                dag.footprints[j]
                    .reads
                    .iter()
                    .chain(dag.footprints[j].writes.iter())
                    .filter(|&&v| matches!(loc[v as usize], Some(owner) if owner != dev))
                    .count()
            };
            let dur = site_cost(j);
            let d = (0..n)
                .min_by(|&a, &b| {
                    let ka = (lane[a] + dur, busy[a], hops(DeviceId(a as u32)));
                    let kb = (lane[b] + dur, busy[b], hops(DeviceId(b as u32)));
                    ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            plan[j] = DeviceId(d as u32);
            lane[d] += dur;
            busy[d] += dur;
        }
        // Variable locations update only at the level barrier: same-level
        // sites never read each other's outputs.
        for &j in members {
            for &w in &dag.footprints[j].writes {
                loc[w as usize] = Some(plan[j]);
            }
        }
    }

    // Refinement: shift sites off the bottleneck device while every
    // touched level stays within round-robin's makespan for that level.
    // Each accepted move strictly lowers the bottleneck, so the loop
    // terminates; the cap is a belt-and-braces bound.
    for _ in 0..(2 * dag.len() + 8) {
        let b = (0..n)
            .max_by(|&a, &c| {
                busy[a]
                    .partial_cmp(&busy[c])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        let bottleneck = busy[b];
        // Candidate donors on the bottleneck device, heaviest first.
        let mut donors: Vec<usize> = (0..dag.len())
            .filter(|&j| plan[j].0 as usize == b)
            .collect();
        donors.sort_by(|&x, &y| {
            site_cost(y)
                .partial_cmp(&site_cost(x))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.cmp(&y))
        });
        let mut moved = false;
        'search: for &j in &donors {
            let dur = site_cost(j);
            if dur <= EPS {
                continue;
            }
            let l = dag.levels[j];
            for d in 0..n {
                if d == b || level_lane[l][d] + dur > rr_level_max[l] + EPS {
                    continue;
                }
                let new_bottleneck = (0..n)
                    .map(|k| match k {
                        _ if k == b => busy[b] - dur,
                        _ if k == d => busy[d] + dur,
                        _ => busy[k],
                    })
                    .fold(0.0f64, f64::max);
                if new_bottleneck < bottleneck - EPS {
                    plan[j] = DeviceId(d as u32);
                    level_lane[l][b] -= dur;
                    level_lane[l][d] += dur;
                    busy[b] -= dur;
                    busy[d] += dur;
                    moved = true;
                    break 'search;
                }
            }
        }
        if !moved {
            break;
        }
    }

    let eft = evaluate_plan(dag, costs, model, &plan, n);
    let rr = evaluate_plan(dag, costs, model, &rr_plan, n);
    if rr.objective() < eft.objective() {
        rr
    } else {
        eft
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::kernel;
    use super::super::*;
    use super::*;

    /// A hand-built cost table: site i costs `us[i]`, one launch each.
    fn table(_dag: &DepDag, us: &[f64]) -> CostTable {
        CostTable {
            sites: us
                .iter()
                .map(|&u| SiteCost {
                    kernel_us: u,
                    stage_us: 0.0,
                })
                .collect(),
            mult: vec![1; us.len()],
        }
    }

    #[test]
    fn eft_balances_uneven_level() {
        // One level of four independent sites: 100, 100, 100, 1 µs.
        // Round-robin on 2 devices pairs them (100+100) vs (100+1);
        // EFT should instead end up near 150/151.
        let ks = [
            kernel("a", &[], &["w"]),
            kernel("b", &[], &["x"]),
            kernel("c", &[], &["y"]),
            kernel("d", &[], &["z"]),
        ];
        let dag = DepDag::build(&ks);
        let t = table(&dag, &[100.0, 100.0, 100.0, 1.0]);
        let m = CostModel::default();
        let s = eft_plan(&dag, &t, &m, 2);
        let rr = evaluate_plan(&dag, &t, &m, &dag.device_plan(2), 2);
        assert!(s.makespan_us <= rr.makespan_us);
        assert!(
            s.makespan_us <= 201.0,
            "EFT should not stack two heavies: {}",
            s.makespan_us
        );
        // Deterministic: same inputs, same plan.
        assert_eq!(s.plan, eft_plan(&dag, &t, &m, 2).plan);
    }

    #[test]
    fn single_device_is_all_primary() {
        let ks = [kernel("a", &[], &["x"]), kernel("b", &[], &["y"])];
        let dag = DepDag::build(&ks);
        let t = table(&dag, &[10.0, 10.0]);
        let s = eft_plan(&dag, &t, &CostModel::default(), 1);
        assert!(s.plan.iter().all(|d| *d == DeviceId::PRIMARY));
    }

    #[test]
    fn locality_tiebreak_prefers_producer_device() {
        // a writes x on some device; consumer b reads x on the next level.
        // Both devices offer b the same finish time and carry equal load,
        // so the locality tie-break decides — b follows x to a's device.
        let ks = [
            kernel("a", &[], &["x"]),
            kernel("c", &[], &["z"]),
            kernel("b", &["x"], &["y"]),
        ];
        let dag = DepDag::build(&ks);
        let t = table(&dag, &[50.0, 50.0, 10.0]);
        let s = eft_plan(&dag, &t, &CostModel::default(), 2);
        assert_eq!(
            s.plan[2], s.plan[0],
            "consumer should land on its producer's device"
        );
        assert!(s.finish_us[2] >= s.finish_us[0]);
    }

    #[test]
    fn evaluate_respects_dependencies() {
        let ks = [kernel("a", &[], &["x"]), kernel("b", &["x"], &["y"])];
        let dag = DepDag::build(&ks);
        let t = table(&dag, &[10.0, 10.0]);
        let m = CostModel::default();
        // Even on different devices, b cannot start before a finishes.
        let s = evaluate_plan(&dag, &t, &m, &[DeviceId(0), DeviceId(1)], 2);
        assert!(s.start_us[1] >= s.finish_us[0]);
        assert!(s.makespan_us >= 20.0);
    }

    #[test]
    fn measured_costs_average_journal_spans() {
        use openarc_trace::Track;
        let ev = |dur: f64, kind: EventKind| TraceEvent {
            ts_us: 0.0,
            dur_us: dur,
            track: Track::Host,
            kind,
        };
        let events = vec![
            ev(
                30.0,
                EventKind::KernelComplete {
                    kernel: "k0".into(),
                },
            ),
            ev(
                10.0,
                EventKind::KernelComplete {
                    kernel: "k0".into(),
                },
            ),
            ev(
                7.0,
                EventKind::Transfer {
                    var: "a".into(),
                    site: "k0_verify".into(),
                    bytes: 64,
                    to_device: true,
                },
            ),
            ev(
                5.0,
                EventKind::Transfer {
                    var: "a".into(),
                    site: "update0".into(),
                    bytes: 64,
                    to_device: true,
                },
            ),
        ];
        let m = MeasuredCosts::from_journal(&events);
        assert_eq!(m.kernel_us.get("k0"), Some(&20.0));
        // 7 µs of verify staging over 2 launches.
        assert_eq!(m.stage_us.get("k0"), Some(&3.5));
        assert!(!m.stage_us.contains_key("update0"));
    }

    #[test]
    fn multiplicity_folds_enclosing_loop_trips() {
        // Outer loop ×5; the second kernel also sits inside a ×2 stage
        // loop, so its site fires 10 times per run.
        let src = "double a[8];\ndouble b[8];\nvoid main() {\n\
                   int i; int it; int rk;\n\
                   for (it = 0; it < 5; it++) {\n\
                   #pragma acc kernels loop gang worker\n\
                   for (i = 0; i < 8; i++) { a[i] = a[i] + 1.0; }\n\
                   for (rk = 0; rk < 2; rk++) {\n\
                   #pragma acc kernels loop gang worker\n\
                   for (i = 0; i < 8; i++) { b[i] = a[i]; }\n\
                   }\n}\n}";
        let (program, sema) = openarc_minic::frontend(src).unwrap();
        let tr = crate::translate::translate(
            &program,
            &sema,
            &crate::translate::TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(launch_multiplicity(&tr), vec![5, 10]);
        // The cost table carries the scaling: same body shape, but the
        // twice-as-frequent site predicts at least twice the load.
        let t = estimate_site_costs(&tr, &CostModel::default());
        assert_eq!(t.mult, vec![5, 10]);
        assert!(t.sites[1].total_us() > t.sites[0].total_us());
    }

    #[test]
    fn measured_overrides_scale_by_multiplicity() {
        let ks = [kernel("a", &[], &["x"]), kernel("b", &[], &["y"])];
        let mut t = CostTable {
            sites: vec![SiteCost::default(); 2],
            mult: vec![3, 1],
        };
        let m = MeasuredCosts {
            kernel_us: [("a".to_string(), 10.0), ("b".to_string(), 10.0)]
                .into_iter()
                .collect(),
            stage_us: BTreeMap::new(),
        };
        let infos: Vec<_> = ks.to_vec();
        t.apply_measured(&infos, &m);
        assert_eq!(t.sites[0].kernel_us, 30.0);
        assert_eq!(t.sites[1].kernel_us, 10.0);
    }
}
