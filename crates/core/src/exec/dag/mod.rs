//! Launch dependency DAG for the multi-device verified executor.
//!
//! Nodes are the program's kernel launch *sites* (entries of
//! [`Translated::kernels`](crate::translate::Translated::kernels)); an edge `i → j` (for `i < j` in program
//! order) exists when the two sites' memory footprints conflict:
//!
//! * **RAW** — `j` reads something `i` writes;
//! * **WAR** — `j` writes something `i` reads;
//! * **WAW** — both write the same variable.
//!
//! A footprint is the variable set the §III-A verified launch touches:
//! reads are the kernel's aggregate reads plus scalar parameters plus
//! reduction initial values; writes are the aggregate writes plus
//! reduction results plus falsely-shared global cells written back after
//! the launch. Dependencies that flow through *host* computation between
//! launches (the CPU results are canonical, §III-A) are deliberately not
//! modeled — the executor's issue phase runs all host work in program
//! order, so host-mediated values are always current; the DAG only
//! governs which launches may overlap on the *simulated* timeline.
//!
//! Variable names are interned once into a shared `u32` table on the DAG
//! ([`DepDag::vars`]); footprints hold integer-id sets, so the O(n²)
//! conflict sweep in [`DepDag::build`] compares integers, never strings.
//!
//! Everything here is deterministic: sets are ordered (`BTreeSet`), the
//! topological levels come from longest-path over program order, and both
//! device planners ([`DepDag::device_plan`] round-robin and the
//! cost-model-driven EFT scheduler in [`cost`]) are pure functions of the
//! DAG, the cost table and the device count — so a schedule never depends
//! on iteration order of a hash map.

pub mod cost;

use crate::ir::{KernelInfo, KernelParam};
use openarc_gpusim::DeviceId;
use std::collections::BTreeSet;

/// Device-placement policy for the verified executor's launch sites (the
/// `placement=` key of `verificationOptions`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Static per-level round-robin (PR 7's scheme): within each level,
    /// sites cycle over the devices in program order, ignoring cost.
    #[default]
    RoundRobin,
    /// Cost-model-driven earliest-finish-time list scheduling: each site
    /// goes to the device minimizing its predicted finish time, using
    /// [`cost::estimate_site_costs`] static estimates (kernel time over
    /// footprint sizes and thread counts, staging transfers, cross-device
    /// d2d penalties).
    Eft,
    /// The EFT scheduler fed with per-site costs calibrated from observed
    /// `KernelLaunch`/transfer durations in a prior run's journal
    /// ([`cost::MeasuredCosts`]); falls back to the static estimates for
    /// sites the journal never saw.
    Measured,
}

impl Placement {
    /// The `verificationOptions` spelling of this policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            Placement::RoundRobin => "roundrobin",
            Placement::Eft => "eft",
            Placement::Measured => "measured",
        }
    }
}

/// Interned variable id (index into [`DepDag::vars`]).
pub type VarId = u32;

/// The variable sets one launch site touches, as interned ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Variables read (aggregates, scalar params, reduction inits).
    pub reads: BTreeSet<VarId>,
    /// Variables written (aggregates, reduction results, cell writebacks).
    pub writes: BTreeSet<VarId>,
}

impl Footprint {
    /// Does scheduling `self` before `other` order them? True when any
    /// RAW, WAR or WAW hazard links the two footprints.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        !self.writes.is_disjoint(&other.reads)       // RAW
            || !self.reads.is_disjoint(&other.writes) // WAR
            || !self.writes.is_disjoint(&other.writes) // WAW
    }

    /// Does this footprint touch `var` at all?
    pub fn touches(&self, var: VarId) -> bool {
        self.reads.contains(&var) || self.writes.contains(&var)
    }
}

/// Shared variable-name intern table: one id per distinct name, in
/// first-seen order. Construction is the only string work; after it,
/// footprint operations are pure integer-set comparisons.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    /// Id → name, in first-intern order.
    pub names: Vec<String>,
}

impl VarTable {
    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as VarId;
        }
        self.names.push(name.to_string());
        (self.names.len() - 1) as VarId
    }

    /// Id of an already-interned name.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| i as VarId)
    }

    /// Name of an id.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id as usize]
    }
}

/// Compute the footprint of one launch site, interning names into `vars`.
pub fn footprint(k: &KernelInfo, vars: &mut VarTable) -> Footprint {
    let mut fp = Footprint::default();
    for v in &k.gpu_reads {
        fp.reads.insert(vars.intern(v));
    }
    for v in &k.gpu_writes {
        fp.writes.insert(vars.intern(v));
    }
    for (var, _) in &k.reductions {
        // The reduction reads the scalar's initial value and writes the
        // final one.
        let id = vars.intern(var);
        fp.reads.insert(id);
        fp.writes.insert(id);
    }
    for p in &k.params {
        match p {
            KernelParam::Scalar { var } => {
                fp.reads.insert(vars.intern(var));
            }
            KernelParam::SharedCell { var, init_global } => {
                if init_global.as_deref() == Some(var.as_str()) {
                    // Falsely-shared global: written back after launch.
                    let id = vars.intern(var);
                    fp.reads.insert(id);
                    fp.writes.insert(id);
                }
            }
            KernelParam::Aggregate { .. } | KernelParam::ReductionSlot { .. } => {}
        }
    }
    fp
}

/// The dependency DAG over the program's launch sites.
#[derive(Debug, Clone)]
pub struct DepDag {
    /// Shared intern table mapping footprint variable ids to names.
    pub vars: VarTable,
    /// Per-site footprints, indexed like [`Translated::kernels`](crate::translate::Translated::kernels).
    pub footprints: Vec<Footprint>,
    /// `deps[j]` = sites `i < j` that must retire before `j` issues.
    pub deps: Vec<Vec<usize>>,
    /// Longest-path depth of each site (roots at level 0). Sites sharing
    /// a level have no path between them and may run concurrently.
    pub levels: Vec<usize>,
}

impl DepDag {
    /// Build the DAG from the kernel launch table.
    pub fn build(kernels: &[KernelInfo]) -> DepDag {
        let mut vars = VarTable::default();
        let footprints: Vec<Footprint> = kernels.iter().map(|k| footprint(k, &mut vars)).collect();
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); kernels.len()];
        let mut levels: Vec<usize> = vec![0; kernels.len()];
        for j in 0..kernels.len() {
            for i in 0..j {
                if footprints[i].conflicts_with(&footprints[j]) {
                    deps[j].push(i);
                    levels[j] = levels[j].max(levels[i] + 1);
                }
            }
        }
        DepDag {
            vars,
            footprints,
            deps,
            levels,
        }
    }

    /// Number of launch sites.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True when the program has no launch sites.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// A deterministic topological order: by (level, program index).
    /// Program order itself is already topological (edges only point
    /// forward); this order additionally groups concurrent sites.
    pub fn schedule(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&i| (self.levels[i], i));
        order
    }

    /// Static device assignment over `n_devices` simulated devices:
    /// within each level, sites round-robin across devices in program
    /// order, so independent launches land on distinct devices and
    /// dependent ones follow their level structure. Pure and
    /// deterministic; `n_devices = 1` maps every site to the primary
    /// device.
    pub fn device_plan(&self, n_devices: usize) -> Vec<DeviceId> {
        let n = n_devices.max(1) as u32;
        let mut rank_in_level: Vec<u32> = Vec::with_capacity(self.len());
        let mut seen_per_level: Vec<u32> = Vec::new();
        for &lvl in &self.levels {
            if lvl >= seen_per_level.len() {
                seen_per_level.resize(lvl + 1, 0);
            }
            rank_in_level.push(seen_per_level[lvl]);
            seen_per_level[lvl] += 1;
        }
        rank_in_level.into_iter().map(|r| DeviceId(r % n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn kernel(name: &str, reads: &[&str], writes: &[&str]) -> KernelInfo {
        KernelInfo {
            name: name.to_string(),
            seq_name: format!("__seq_{name}"),
            n_threads_global: format!("__n_{name}"),
            params: Vec::new(),
            actions: Vec::new(),
            gpu_reads: reads.iter().map(|s| s.to_string()).collect(),
            gpu_writes: writes.iter().map(|s| s.to_string()).collect(),
            hoisted_writes: Vec::new(),
            reductions: Vec::new(),
            knowledge: Default::default(),
            wave_override: None,
            queue: None,
            if_global: None,
            stmt: Default::default(),
            line: 0,
        }
    }

    #[test]
    fn raw_war_waw_all_order() {
        let raw = [kernel("a", &[], &["x"]), kernel("b", &["x"], &["y"])];
        let war = [kernel("a", &["x"], &["y"]), kernel("b", &[], &["x"])];
        let waw = [kernel("a", &[], &["x"]), kernel("b", &[], &["x"])];
        for ks in [&raw, &war, &waw] {
            let d = DepDag::build(ks);
            assert_eq!(d.deps[1], vec![0]);
            assert_eq!(d.levels, vec![0, 1]);
        }
    }

    #[test]
    fn interned_ids_round_trip_names() {
        let ks = [kernel("a", &["x"], &["y"]), kernel("b", &["y"], &["x"])];
        let d = DepDag::build(&ks);
        let x = d.vars.get("x").unwrap();
        let y = d.vars.get("y").unwrap();
        assert_ne!(x, y);
        assert_eq!(d.vars.name(x), "x");
        assert_eq!(d.vars.name(y), "y");
        // Both sites touch the same two interned ids, in opposite roles.
        assert!(d.footprints[0].reads.contains(&x));
        assert!(d.footprints[0].writes.contains(&y));
        assert!(d.footprints[1].reads.contains(&y));
        assert!(d.footprints[1].writes.contains(&x));
        assert!(d.footprints[0].touches(x) && d.footprints[0].touches(y));
    }

    #[test]
    fn independent_sites_share_a_level_and_split_devices() {
        // Diamond: a writes x,y; b reads x, c reads y (independent);
        // d reads both results.
        let ks = [
            kernel("a", &[], &["x", "y"]),
            kernel("b", &["x"], &["u"]),
            kernel("c", &["y"], &["v"]),
            kernel("d", &["u", "v"], &["w"]),
        ];
        let d = DepDag::build(&ks);
        assert_eq!(d.levels, vec![0, 1, 1, 2]);
        assert_eq!(d.deps[1], vec![0]);
        assert_eq!(d.deps[2], vec![0]);
        assert_eq!(d.deps[3], vec![1, 2]);
        let plan = d.device_plan(2);
        assert_eq!(plan[0], DeviceId(0));
        // b and c share level 1 → distinct devices.
        assert_eq!(plan[1], DeviceId(0));
        assert_eq!(plan[2], DeviceId(1));
        assert_eq!(plan[3], DeviceId(0));
        // Single device: everything on the primary.
        assert!(d.device_plan(1).iter().all(|d| *d == DeviceId::PRIMARY));
    }

    #[test]
    fn read_read_sharing_is_not_a_conflict() {
        let ks = [kernel("a", &["x"], &["u"]), kernel("b", &["x"], &["v"])];
        let d = DepDag::build(&ks);
        assert!(d.deps[1].is_empty());
        assert_eq!(d.levels, vec![0, 0]);
    }

    #[test]
    fn reductions_and_cells_count_as_writes() {
        let mut a = kernel("a", &[], &[]);
        a.reductions
            .push(("s".into(), openarc_openacc::ReductionOp::Add));
        let b = kernel("b", &["s"], &["y"]);
        let d = DepDag::build(&[a, b]);
        assert_eq!(d.deps[1], vec![0], "reduction result orders a RAW edge");
    }

    #[test]
    fn schedule_is_topological_and_deterministic() {
        let ks = [
            kernel("a", &[], &["x"]),
            kernel("b", &["x"], &["y"]),
            kernel("c", &[], &["z"]),
        ];
        let d = DepDag::build(&ks);
        let order = d.schedule();
        // c (level 0) sorts with a, before b.
        assert_eq!(order, vec![0, 2, 1]);
        for (pos_j, &j) in order.iter().enumerate() {
            for &i in &d.deps[j] {
                let pos_i = order.iter().position(|&x| x == i).unwrap();
                assert!(pos_i < pos_j, "dep {i} must precede {j}");
            }
        }
    }
}
