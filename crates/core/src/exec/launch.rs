//! Argument marshalling plus the Normal-mode and sequential-fallback
//! kernel launch paths.

use super::env::ExecEnv;
use super::reduce::red_eval;
use crate::ir::KernelParam;
use openarc_gpusim::{launch, DeviceId, TimeCategory};
use openarc_minic::ScalarTy;
use openarc_openacc::ReductionOp;
use openarc_runtime::DevSide;
use openarc_vm::{Buffer, Handle, Value, VmError};
use std::collections::{HashMap, VecDeque};

impl ExecEnv<'_> {
    /// Build kernel args. `on_device` selects device or host buffers; the
    /// returned vec lists `(reduction var, op, partial buffer)` to finalize
    /// and the set of handles to free afterwards (reduction buffers).
    #[allow(clippy::type_complexity)]
    pub(super) fn build_args(
        &mut self,
        k: usize,
        n: u64,
        on_device: bool,
    ) -> Result<
        (
            Vec<Value>,
            Vec<(String, ReductionOp, Handle)>,
            Vec<Handle>,
            Vec<(String, Handle)>,
        ),
        VmError,
    > {
        self.build_args_prepared(k, n, on_device, DeviceId::PRIMARY, &mut VecDeque::new())
    }

    /// [`ExecEnv::build_args`] with pre-built reduction partial buffers:
    /// the verified-launch pipeline constructs them (zero-fill is O(n))
    /// off the arena while staging copies run, then publishes each here
    /// with a pointer move. `prepared` is consumed front-to-back in kernel
    /// parameter order; when it runs dry the slot allocates as usual, so
    /// handle assignment and accounting are identical either way.
    #[allow(clippy::type_complexity)]
    pub(super) fn build_args_prepared(
        &mut self,
        k: usize,
        n: u64,
        on_device: bool,
        dev: DeviceId,
        prepared: &mut VecDeque<Buffer>,
    ) -> Result<
        (
            Vec<Value>,
            Vec<(String, ReductionOp, Handle)>,
            Vec<Handle>,
            Vec<(String, Handle)>,
        ),
        VmError,
    > {
        let tr = self.tr;
        let params = &tr.kernels[k].params;
        let mut args = Vec::with_capacity(params.len());
        let mut reds = Vec::new();
        let mut temps = Vec::new();
        let mut cell_writebacks = Vec::new();
        for p in params {
            match p {
                KernelParam::Aggregate { var } => {
                    let host_h = self.resolve(var)?;
                    let h = if on_device {
                        self.machine.device_of_on(dev, host_h)?
                    } else {
                        host_h
                    };
                    args.push(Value::Ptr(h));
                }
                KernelParam::Scalar { var } => args.push(self.scalar_value(var)?),
                KernelParam::SharedCell { var, init_global } => {
                    let elem = init_global
                        .as_deref()
                        .map(|g| self.scalar_elem_of(g))
                        .unwrap_or(ScalarTy::Double);
                    // Cells are per-memory-space: one per device plus the
                    // host side.
                    let key = if on_device {
                        format!("{}::dev{}", var, dev.0)
                    } else {
                        format!("{var}::host")
                    };
                    let cells: &mut HashMap<String, Handle> = if on_device {
                        &mut self.device_cells
                    } else {
                        &mut self.host_cells
                    };
                    let h = match cells.get(&key) {
                        Some(h) => *h,
                        None => {
                            let mem = if on_device {
                                &mut self.machine.devices.get_mut(dev).mem
                            } else {
                                &mut self.machine.host.mem
                            };
                            let h = mem.alloc(elem, 1, format!("__cell_{var}"));
                            if on_device {
                                self.device_cells.insert(key, h);
                            } else {
                                self.host_cells.insert(key, h);
                            }
                            if let Some(g) = init_global {
                                let init = self.scalar_value(g)?;
                                let mem = if on_device {
                                    &mut self.machine.devices.get_mut(dev).mem
                                } else {
                                    &mut self.machine.host.mem
                                };
                                mem.store(h, 0, init)?;
                            }
                            h
                        }
                    };
                    args.push(Value::Ptr(h));
                    // A falsely-shared GLOBAL scalar behaves like a CUDA
                    // __device__ global: its final value flows back to the
                    // host variable after the kernel.
                    if init_global.as_deref() == Some(var.as_str()) {
                        cell_writebacks.push((var.clone(), h));
                    }
                }
                KernelParam::ReductionSlot { var, op } => {
                    let elem = self.scalar_elem_of(var);
                    let mem = if on_device {
                        &mut self.machine.devices.get_mut(dev).mem
                    } else {
                        &mut self.machine.host.mem
                    };
                    let h = match prepared.pop_front() {
                        Some(buf) => {
                            debug_assert_eq!(buf.elem, elem, "prepared buffer type mismatch");
                            mem.insert(buf)
                        }
                        None => mem.alloc(elem, n.max(1) as usize, format!("__red_{var}")),
                    };
                    args.push(Value::Ptr(h));
                    reds.push((var.clone(), *op, h));
                    temps.push(h);
                }
            }
        }
        Ok((args, reds, temps, cell_writebacks))
    }

    /// Copy falsely-shared global scalars back to their host variables.
    pub(super) fn writeback_cells(
        &mut self,
        cells: &[(String, Handle)],
        on_device: bool,
        dev: DeviceId,
    ) -> Result<(), VmError> {
        for (var, h) in cells {
            let v = if on_device {
                self.machine.devices.get(dev).mem.load(*h, 0)?
            } else {
                self.machine.host.mem.load(*h, 0)?
            };
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, v.cast(elem))?;
        }
        Ok(())
    }

    /// Production launch (Normal mode).
    pub(super) fn launch_normal(&mut self, k: usize) -> Result<(), VmError> {
        // `self.tr` outlives `self`, so the kernel record is borrowed for
        // the whole launch instead of deep-cloned per launch.
        let tr = self.tr;
        let info = &tr.kernels[k];
        let n = self.n_threads(k)?;
        let queue = info.queue;
        // Data-region-at-kernel semantics: map + copyin. OpenACC `copy`
        // semantics are present_or_copy: data already mapped by an
        // enclosing region (possibly under an aliasing name) moves nothing.
        let mut fresh: std::collections::BTreeSet<String> = Default::default();
        // A region-managed variable whose region's if(...) evaluated false
        // falls back to the default per-kernel copy policy.
        let effective = |env: &Self, a: &crate::ir::DataAction| -> (bool, bool) {
            match a.covering_region {
                Some(r) if !env.region_active.get(&r).copied().unwrap_or(false) => {
                    (true, a.written)
                }
                _ => (a.copyin, a.copyout),
            }
        };
        let mut plans: Vec<(&crate::ir::DataAction, bool, bool)> =
            Vec::with_capacity(info.actions.len());
        for a in &info.actions {
            let (ci, co) = effective(self, a);
            plans.push((a, ci, co));
        }
        for (a, copyin, _) in &plans {
            if a.map {
                let h = self.resolve(&a.var)?;
                let (_, newly) = self.machine.map_to_device(h)?;
                if newly {
                    fresh.insert(a.var.clone());
                }
                if *copyin && newly {
                    self.do_copy(&a.var, &info.name, true, queue)?;
                }
            }
        }
        // GPU-side coherence checks at the kernel boundary.
        for v in &info.gpu_reads {
            if let Ok(h) = self.resolve(v) {
                self.machine.check_read(h, DevSide::Gpu, &info.name);
            }
        }
        for v in &info.gpu_writes {
            if info.hoisted_writes.contains(v) {
                continue;
            }
            if let Ok(h) = self.resolve(v) {
                self.machine.check_write(h, DevSide::Gpu, false, &info.name);
            }
        }
        let (args, reds, temps, cells) = self.build_args(k, n, true)?;
        let cfg = self.launch_cfg(k);
        let outcome = launch(
            self.machine.devices.primary_mut(),
            &tr.kernel_module,
            &info.name,
            &args,
            n,
            &cfg,
        )?;
        for r in &outcome.races {
            self.races.push((info.name.clone(), r.clone()));
        }
        self.machine
            .charge_kernel_named(&info.name, &outcome, queue);
        self.writeback_cells(&cells, true, DeviceId::PRIMARY)?;
        // Reductions finalize on the CPU (device partials → host scalar).
        for (var, op, buf) in &reds {
            if let Some(q) = queue {
                self.machine.clock.wait(q);
            }
            let gpu_val = self.fold_device(*buf, *op, n)?;
            let init = self.scalar_value(var)?;
            let final_v = red_eval(*op, init, gpu_val)?;
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, final_v.cast(elem))?;
            // One scalar-sized transfer for the result.
            let dt = self.machine.cost.transfer_time(elem.size_bytes());
            self.machine.clock.advance(TimeCategory::MemTransfer, dt);
        }
        for t in temps {
            self.machine.devices.primary_mut().mem.free(t)?;
        }
        // Copyout + unmap (copyout only for mappings this launch created —
        // region-managed data stays resident).
        for (a, _, copyout) in &plans {
            if *copyout && fresh.contains(&a.var) {
                self.do_copy(&a.var, &info.name, false, queue)?;
            }
        }
        for a in &info.actions {
            if a.map {
                let h = self.resolve(&a.var)?;
                if let Some(q) = queue {
                    // Don't free under in-flight async work.
                    self.machine.clock.wait(q);
                }
                self.machine.unmap_from_device(h)?;
            }
        }
        Ok(())
    }

    /// Sequential fallback execution (CpuOnly mode / unselected kernels in
    /// Verify mode).
    pub(super) fn launch_seq(&mut self, k: usize) -> Result<(), VmError> {
        let info = &self.tr.kernels[k];
        let n = self.n_threads(k)?;
        let (mut args, reds, temps, cells) = self.build_args(k, n, false)?;
        args.insert(0, Value::Int(n as i64));
        let steps = self.run_host_fn(&info.seq_name, &args)?;
        self.machine.charge_cpu(steps);
        self.writeback_cells(&cells, false, DeviceId::PRIMARY)?;
        for (var, op, buf) in &reds {
            let cpu_val = self.fold_host(*buf, *op, n)?;
            let init = self.scalar_value(var)?;
            let final_v = red_eval(*op, init, cpu_val)?;
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, final_v.cast(elem))?;
        }
        for t in temps {
            self.machine.host.mem.free(t)?;
        }
        Ok(())
    }
}
