//! The execution environment: host bytecode runs against this, and every
//! lowered runtime op ([`RtOp`]) dispatches here.

use super::{ExecMode, ExecOptions, KernelVerification, TransferKey};
use crate::ir::RtOp;
use crate::translate::Translated;
use openarc_gpusim::{RaceReport, TimeCategory};
use openarc_minic::ScalarTy;
use openarc_runtime::Machine;
use openarc_vm::{Env, Handle, Value, VmError};
use std::collections::HashMap;

/// A deferred transfer: (var, site, to_device, async queue).
pub(super) type DeferredCopy = (String, String, bool, Option<i64>);

pub(super) struct ExecEnv<'a> {
    pub(super) tr: &'a Translated,
    pub(super) opts: &'a ExecOptions,
    pub(super) machine: Machine,
    pub(super) verify: Vec<KernelVerification>,
    pub(super) races: Vec<(String, RaceReport)>,
    pub(super) pending_cpu: u64,
    /// Persistent device cells for falsely-shared scalars (like CUDA
    /// `__device__` temporaries).
    pub(super) device_cells: HashMap<String, Handle>,
    /// Host-side cells for sequential fallbacks.
    pub(super) host_cells: HashMap<String, Handle>,
    pub(super) kernel_launches: u64,
    /// Pending deferred transfers per active loop (innermost last).
    pub(super) deferred: Vec<Vec<DeferredCopy>>,
    /// Data regions currently active (if-clause decisions at enter time).
    pub(super) region_active: HashMap<usize, bool>,
    /// Verified launches issued but not yet retired (FIFO; see
    /// [`VerifyOptions::dag_jobs`](super::VerifyOptions::dag_jobs)).
    pub(super) pending: std::collections::VecDeque<super::verified::PendingVerify>,
    /// Static device assignment per launch site (verify mode; from
    /// [`super::dag::DepDag::device_plan`]).
    pub(super) device_plan: Vec<openarc_gpusim::DeviceId>,
    /// Per-site memory footprints (verify mode; empty otherwise).
    pub(super) footprints: Vec<super::dag::Footprint>,
    /// Wall-clock origin of the run; verified-launch stage spans are
    /// journaled relative to this instant.
    pub(super) t0: std::time::Instant,
}

impl ExecEnv<'_> {
    pub(super) fn flush_cpu(&mut self) {
        if self.pending_cpu > 0 {
            self.machine.charge_cpu(self.pending_cpu);
            self.pending_cpu = 0;
        }
    }

    /// Host buffer handle of a global aggregate.
    pub(super) fn resolve(&mut self, var: &str) -> Result<Handle, VmError> {
        let slot = self
            .tr
            .host_module
            .global_slot(var)
            .ok_or_else(|| VmError::Internal(format!("unknown global `{var}`")))?;
        match self.machine.host.globals[slot as usize] {
            Value::Ptr(h) if !h.is_null() => Ok(h),
            Value::Ptr(h) => Err(VmError::BadHandle(h)),
            other => Err(VmError::TypeError(format!(
                "`{var}` is not a buffer: {other}"
            ))),
        }
    }

    pub(super) fn scalar_value(&self, var: &str) -> Result<Value, VmError> {
        let slot = self
            .tr
            .host_module
            .global_slot(var)
            .ok_or_else(|| VmError::Internal(format!("unknown global `{var}`")))?;
        Ok(self.machine.host.globals[slot as usize])
    }

    pub(super) fn store_scalar(&mut self, var: &str, v: Value) -> Result<(), VmError> {
        let slot = self
            .tr
            .host_module
            .global_slot(var)
            .ok_or_else(|| VmError::Internal(format!("unknown global `{var}`")))?;
        self.machine.host.globals[slot as usize] = v;
        Ok(())
    }

    pub(super) fn scalar_elem_of(&self, var: &str) -> ScalarTy {
        self.tr
            .host_module
            .global_slot(var)
            .and_then(|s| self.tr.host_module.globals.get(s as usize))
            .and_then(|g| g.ty.elem())
            .unwrap_or(ScalarTy::Double)
    }

    /// Perform (or skip/defer, per the interactive overlay) one transfer.
    pub(super) fn do_copy(
        &mut self,
        var: &str,
        site: &str,
        to_device: bool,
        queue: Option<i64>,
    ) -> Result<(), VmError> {
        // The overlay lookup needs an owned key; skip building it on the
        // (overwhelmingly common) runs with no interactive edits.
        if !self.opts.overlay.is_empty() {
            let key = TransferKey {
                site: site.to_string(),
                var: var.to_string(),
                to_device,
            };
            if self.opts.overlay.disable.contains(&key) {
                return Ok(());
            }
            if self.opts.overlay.defer.contains(&key) {
                if let Some(frame) = self.deferred.last_mut() {
                    // Replace any earlier pending copy of the same
                    // var/direction (only the final value matters).
                    frame.retain(|(v, _, d, _)| !(v == var && *d == to_device));
                    frame.push((
                        var.to_string(),
                        format!("{site}_deferred"),
                        to_device,
                        queue,
                    ));
                    return Ok(());
                }
                // No enclosing loop: execute in place.
            }
        }
        let h = self.resolve(var)?;
        // An `update` of data with no live mapping is a *user* error per
        // OpenACC, not a runtime invariant break — the region paths
        // (`data_enter`/`data_exit` sites) keep the internal-error
        // classification because their entry action always maps first.
        if site.starts_with("update") && !self.machine.is_present(h) {
            return Err(VmError::NotPresent {
                var: var.to_string(),
                to_device,
            });
        }
        if to_device {
            self.machine.copy_to_device_named(h, site, queue, Some(var))
        } else {
            self.machine.copy_to_host_named(h, site, queue, Some(var))
        }
    }

    pub(super) fn flush_deferred(&mut self) -> Result<(), VmError> {
        if let Some(frame) = self.deferred.pop() {
            for (var, site, to_device, queue) in frame {
                let h = self.resolve(&var)?;
                if to_device {
                    self.machine
                        .copy_to_device_named(h, &site, queue, Some(&var))?;
                } else {
                    self.machine
                        .copy_to_host_named(h, &site, queue, Some(&var))?;
                }
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, id: u16) -> Result<(), VmError> {
        self.flush_cpu();
        // `tr` and `opts` are shared references that outlive `self`, so
        // copying them out lets the op (and the verify config below) be
        // borrowed for the whole dispatch with `self` still mutable — no
        // per-op `RtOp` clone on the interpreter hot path.
        let tr = self.tr;
        let opts = self.opts;
        let op = tr
            .ops
            .get(id as usize)
            .ok_or_else(|| VmError::Internal(format!("bad host op id {id}")))?;
        let verify_mode = matches!(opts.mode, ExecMode::Verify(_));
        let cpu_only = matches!(opts.mode, ExecMode::CpuOnly);
        match op {
            RtOp::LoopEnter { label } => {
                self.machine.loop_context.push((label.clone(), 0));
                self.deferred.push(Vec::new());
            }
            RtOp::LoopTick => {
                if let Some(last) = self.machine.loop_context.last_mut() {
                    last.1 += 1;
                }
            }
            RtOp::LoopExit => {
                self.machine.loop_context.pop();
                if !verify_mode && !cpu_only {
                    self.flush_deferred()?;
                } else {
                    self.deferred.pop();
                }
            }
            RtOp::Wait(q) => {
                if !verify_mode && !cpu_only {
                    match q {
                        Some(q) => self.machine.clock.wait(*q),
                        None => self.machine.clock.wait_all(),
                    }
                }
            }
            RtOp::DataEnter(r) => {
                let r = *r;
                if verify_mode || cpu_only {
                    return Ok(());
                }
                let active = self.region_condition(r)?;
                self.region_active.insert(r, active);
                if !active {
                    return Ok(());
                }
                // One site string per region event, shared by every action.
                let site = format!("data_enter{r}");
                for a in &tr.data_regions[r].actions {
                    if a.map {
                        let h = self.resolve(&a.var)?;
                        self.machine.map_to_device(h)?;
                        if a.copyin {
                            self.do_copy(&a.var, &site, true, None)?;
                        }
                    }
                }
            }
            RtOp::DataExit(r) => {
                let r = *r;
                if verify_mode || cpu_only {
                    return Ok(());
                }
                // An exit mirrors its matching enter's decision, even if
                // the condition's inputs changed in between.
                if !self.region_active.remove(&r).unwrap_or(true) {
                    return Ok(());
                }
                let site = format!("data_exit{r}");
                for a in &tr.data_regions[r].actions {
                    if a.map {
                        if a.copyout {
                            self.do_copy(&a.var, &site, false, None)?;
                        }
                        let h = self.resolve(&a.var)?;
                        self.machine.unmap_from_device(h)?;
                    }
                }
            }
            RtOp::Update {
                to_host,
                to_device,
                queue,
                site,
                if_global,
            } => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                if let Some(g) = if_global {
                    if !self.scalar_value(g)?.truthy() {
                        return Ok(());
                    }
                }
                for v in to_host {
                    self.do_copy(v, site, false, *queue)?;
                }
                for v in to_device {
                    self.do_copy(v, site, true, *queue)?;
                }
            }
            RtOp::CheckRead { var, side, site } => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                let dt = self.machine.cost.check_us;
                self.machine.clock.advance(TimeCategory::CpuTime, dt);
                if let Ok(h) = self.resolve(var) {
                    self.machine.check_read(h, *side, site);
                }
            }
            RtOp::CheckWrite {
                var,
                side,
                total,
                site,
            } => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                let dt = self.machine.cost.check_us;
                self.machine.clock.advance(TimeCategory::CpuTime, dt);
                if let Ok(h) = self.resolve(var) {
                    self.machine.check_write(h, *side, *total, site);
                }
            }
            RtOp::ResetStatus { var, side, st } => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                let dt = self.machine.cost.check_us;
                self.machine.clock.advance(TimeCategory::CpuTime, dt);
                if let Ok(h) = self.resolve(var) {
                    self.machine.reset_status(h, *side, *st);
                }
            }
            RtOp::Launch(k) => {
                let k = *k;
                self.kernel_launches += 1;
                // `if(cond)` false → host execution (OpenACC semantics).
                let offload = match &tr.kernels[k].if_global {
                    Some(g) => self.scalar_value(g)?.truthy(),
                    None => true,
                };
                match &opts.mode {
                    ExecMode::Normal if !offload => self.launch_seq(k)?,
                    ExecMode::Normal => self.launch_normal(k)?,
                    ExecMode::CpuOnly => self.launch_seq(k)?,
                    ExecMode::Verify(v) => {
                        let name = &tr.kernels[k].name;
                        let in_set = v.targets.as_ref().map(|t| t.contains(name)).unwrap_or(true);
                        let selected = in_set != v.complement;
                        if selected {
                            self.launch_verified(k, v)?;
                        } else {
                            self.launch_seq(k)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluate a data region's `if(...)` value (true when absent).
    fn region_condition(&self, r: usize) -> Result<bool, VmError> {
        match &self.tr.data_regions[r].if_global {
            Some(g) => Ok(self.scalar_value(g)?.truthy()),
            None => Ok(true),
        }
    }

    /// Launch configuration for kernel `k`: `num_workers`/`vector_length`
    /// clauses override the default lockstep wave width.
    pub(super) fn launch_cfg(&self, k: usize) -> openarc_gpusim::LaunchConfig {
        let mut cfg = self.opts.launch.clone();
        if let Some(w) = self.tr.kernels[k].wave_override {
            cfg.wave = w;
        }
        cfg
    }

    pub(super) fn n_threads(&self, k: usize) -> Result<u64, VmError> {
        let v = self.scalar_value(&self.tr.kernels[k].n_threads_global)?;
        Ok(v.as_i64().max(0) as u64)
    }

    /// Run a host-module function to completion against host memory only.
    pub(super) fn run_host_fn(&mut self, name: &str, args: &[Value]) -> Result<u64, VmError> {
        let mut t = openarc_vm::ThreadState::new(&self.tr.host_module, name, args)?;
        // The fallback touches only parameters, so a plain host env view is
        // enough; reuse self as the env (globals resolve fine).
        while !t.is_done() {
            t.step(&self.tr.host_module, self)?;
        }
        Ok(t.steps)
    }
}

impl Env for ExecEnv<'_> {
    fn load_global(&mut self, slot: u16) -> Result<Value, VmError> {
        self.machine.host.load_global(slot)
    }

    fn store_global(&mut self, slot: u16, v: Value) -> Result<(), VmError> {
        self.machine.host.store_global(slot, v)
    }

    fn load_elem(&mut self, h: Handle, idx: u64) -> Result<Value, VmError> {
        self.machine.host.load_elem(h, idx)
    }

    fn store_elem(&mut self, h: Handle, idx: u64, v: Value) -> Result<(), VmError> {
        self.machine.host.store_elem(h, idx, v)
    }

    fn malloc(&mut self, elem: ScalarTy, len: u64, label: &str) -> Result<Handle, VmError> {
        self.machine.host.malloc(elem, len, label)
    }

    fn free(&mut self, h: Handle) -> Result<(), VmError> {
        // In-flight verified launches unmap their staging at retirement;
        // retire them first so this free sees settled present tables.
        if !self.pending.is_empty() {
            self.retire_all()?;
        }
        // Freeing a host allocation invalidates any device mapping and its
        // coherence record.
        while let Some(d) = self.machine.present_anywhere(h) {
            self.machine.unmap_from_device_on(d, h)?;
        }
        self.machine.coherence.untrack(h);
        self.machine.host.free(h)
    }

    fn host_op(&mut self, id: u16) -> Result<(), VmError> {
        self.dispatch(id)
    }
}
