//! Executor: runs a [`Translated`] program on the simulated machine.
//!
//! Three modes:
//!
//! * **Normal** — the production run: data regions, transfers, device
//!   kernels, coherence checks (when instrumented).
//! * **CpuOnly** — the reference run: every compute region executes its
//!   sequential fallback on the host; no device traffic (the normalization
//!   baseline of Figures 1 and 3).
//! * **Verify** — the paper's §III-A kernel verification: target kernels
//!   run on the device *and* sequentially on the host (asynchronously
//!   overlapped, post-demotion semantics), outputs are compared with a
//!   configurable error margin, and the host's sequential results remain
//!   canonical so errors never propagate.
//!
//! The module is split by concern:
//!
//! * [`mod@self`] — configuration types, the [`execute`] entry point, and
//!   the [`RunResult`].
//! * `env` — the `Env`-implementing execution environment that
//!   dispatches lowered runtime ops (data regions, updates, checks).
//! * `launch` — argument marshalling plus the Normal and CpuOnly kernel
//!   launch paths.
//! * `verified` — the §III-A verified launch, with the CPU reference
//!   interpreter running on a real worker thread overlapped with the
//!   simulated device execution.
//! * `reduce` — reduction operator evaluation and partial-buffer folds.

pub mod dag;
mod env;
mod launch;
mod reduce;
#[cfg(test)]
mod tests;
mod verified;

use crate::translate::Translated;
use env::ExecEnv;
pub use reduce::red_eval;

use openarc_gpusim::{CostModel, DeviceId, LaunchConfig, RaceReport};
use openarc_runtime::Machine;
use openarc_trace::Journal;
use openarc_vm::interp::BasicEnv;
use openarc_vm::{ThreadState, Value, VmError, GLOBALS_INIT};
use std::collections::{BTreeSet, HashMap};

/// §III-C application-knowledge assertion kinds.
#[derive(Debug, Clone)]
pub enum AssertKind {
    /// Sum of all elements must be within `tol` of `expected`.
    ChecksumWithin {
        /// Expected checksum.
        expected: f64,
        /// Allowed absolute deviation.
        tol: f64,
    },
    /// Every element must be finite.
    AllFinite,
    /// Every element must be `>= 0`.
    NonNegative,
}

/// A user-provided kernel assertion (§III-C debug-assertion API).
#[derive(Debug, Clone)]
pub struct KernelAssertion {
    /// Kernel name it applies to.
    pub kernel: String,
    /// Variable whose device result is checked.
    pub var: String,
    /// The predicate.
    pub kind: AssertKind,
}

/// Kernel-verification configuration (§III-A).
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Kernels to verify (names). `None` = all.
    pub targets: Option<BTreeSet<String>>,
    /// Invert the target set (the paper's `complement=1`).
    pub complement: bool,
    /// Relative error tolerance.
    pub rel_tol: f64,
    /// Absolute error tolerance.
    pub abs_tol: f64,
    /// `minValueToCheck`: compare only when `|cpu| >=` this threshold.
    pub min_value_to_check: f64,
    /// §III-C user value bounds per variable: differences where both values
    /// fall inside the bound are accepted.
    pub bounds: HashMap<String, (f64, f64)>,
    /// §III-C assertions evaluated on device results.
    pub assertions: Vec<KernelAssertion>,
    /// Async queue used for the demoted transfers/kernels.
    pub queue: i64,
    /// Run the CPU reference interpreter on a worker thread overlapped
    /// with the simulated device execution (§III-A's async overlap as
    /// actual host parallelism). Clock and journal reconciliation stay
    /// deterministic either way; disable to force the fully sequential
    /// oracle path (staging, reference, and comparison all inline on the
    /// calling thread, `compare_jobs` ignored).
    pub overlap_reference: bool,
    /// Worker threads for the element-wise comparison stage (stage 3 of
    /// the verified-launch pipeline). Each written aggregate is chunked
    /// into at most this many contiguous ranges fanned over
    /// [`crate::sched::run_tasks`]; chunk results merge in task order, so
    /// mismatch counts and `max_abs_err` are bit-identical for every
    /// value. `1` (the default) compares inline; forced to `1` when
    /// `overlap_reference` is `false`.
    pub compare_jobs: usize,
    /// Verified launches allowed in flight concurrently on the simulated
    /// timeline. Each launch *executes* (device run, reference,
    /// comparison, canonical stores) at issue in program order, but its
    /// completion accounting — the reference CPU charge, the queue wait,
    /// the result-comparison charge, the verification event and the
    /// unmaps — defers until the launch *retires*: when a later launch's
    /// footprint conflicts with it (RAW/WAR/WAW, see [`dag`]), when the
    /// in-flight window exceeds this bound, or at a flush point (host
    /// free of a touched buffer, end of run). `1` (the default) retires
    /// every launch immediately, reproducing the sequential oracle
    /// bit-for-bit.
    pub dag_jobs: usize,
    /// Simulated devices the DAG executor schedules across (clamped to
    /// `1..=`[`openarc_runtime::MAX_DEVICES`]). Independent launches —
    /// same level of the dependency DAG — round-robin over the devices,
    /// so with `dag_jobs > 1` their queue spans overlap on the simulated
    /// timeline. `1` (the default) keeps everything on the primary
    /// device.
    pub devices: usize,
    /// Device-placement policy for launch sites (`placement=` option):
    /// static round-robin, cost-model EFT, or EFT over journal-calibrated
    /// costs. With `devices=1` every policy produces the all-primary plan,
    /// so placement never perturbs the sequential oracle.
    pub placement: dag::Placement,
    /// Journal-calibrated per-kernel costs feeding the `measured`
    /// placement (`None` falls back to static estimates). Populated by
    /// the two-pass measure-then-place flow in
    /// [`crate::pipeline::Session`].
    pub measured: Option<dag::cost::MeasuredCosts>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            targets: None,
            complement: false,
            rel_tol: 1e-6,
            abs_tol: 1e-9,
            min_value_to_check: 0.0,
            bounds: HashMap::new(),
            assertions: Vec::new(),
            queue: 1,
            overlap_reference: true,
            compare_jobs: 1,
            dag_jobs: 1,
            devices: 1,
            placement: dag::Placement::RoundRobin,
            measured: None,
        }
    }
}

/// Identity of one transfer site for interactive edits: the report site
/// label, the variable, and the direction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TransferKey {
    /// Report site label (e.g. `update0`, `data_enter0`, `main_kernel2`).
    pub site: String,
    /// Variable name.
    pub var: String,
    /// True for host→device.
    pub to_device: bool,
}

/// Programmer edits applied on top of the translated transfer plan — the
/// concrete form of "modify data clauses in the input program according to
/// the suggestions" (§IV-C).
#[derive(Debug, Clone, Default)]
pub struct TransferOverlay {
    /// Transfers removed entirely (e.g. `copy` → `create`).
    pub disable: std::collections::BTreeSet<TransferKey>,
    /// Transfers moved after their enclosing loop (the Listing 4 deferral:
    /// "the memory transfer can be deferred until the k-loop finishes").
    pub defer: std::collections::BTreeSet<TransferKey>,
}

impl TransferOverlay {
    /// Number of edits applied.
    pub fn len(&self) -> usize {
        self.disable.len() + self.defer.len()
    }

    /// True when no edits are applied.
    pub fn is_empty(&self) -> bool {
        self.disable.is_empty() && self.defer.is_empty()
    }
}

/// Execution mode.
///
/// `Verify` carries the full option block inline: one `ExecMode` exists
/// per pipeline run, so the size skew between variants never multiplies.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Default)]
pub enum ExecMode {
    /// Production run.
    #[default]
    Normal,
    /// Sequential reference run.
    CpuOnly,
    /// Kernel verification run.
    Verify(VerifyOptions),
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Mode.
    pub mode: ExecMode,
    /// Enable the coherence tracker (memory-transfer verification).
    pub check_transfers: bool,
    /// Device race oracle on/off.
    pub race_detect: bool,
    /// Device launch knobs.
    pub launch: LaunchConfig,
    /// Host instruction budget.
    pub step_budget: u64,
    /// Interactive transfer edits.
    pub overlay: TransferOverlay,
    /// Event journal threaded through the machine; disabled by default.
    pub journal: Journal,
    /// Wall-clock stage-span journal for the verified-launch pipeline
    /// phases (`verify:staging` / `verify:overlap` / `verify:compare`,
    /// emitted as [`openarc_trace::EventKind::Stage`]). Like the
    /// `Session` stage stream it measures *real* elapsed time, so it is
    /// kept out of the deterministic run journal above and out of the
    /// plan fingerprint; disabled by default.
    pub stage_journal: Journal,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::Normal,
            check_transfers: false,
            race_detect: true,
            launch: LaunchConfig::default(),
            step_budget: 5_000_000_000,
            overlay: TransferOverlay::default(),
            journal: Journal::disabled(),
            stage_journal: Journal::disabled(),
        }
    }
}

/// Verification verdict for one kernel.
#[derive(Debug, Clone, Default)]
pub struct KernelVerification {
    /// Kernel name.
    pub kernel: String,
    /// Times the kernel was verified.
    pub launches: u64,
    /// Launches whose outputs diverged beyond the margin.
    pub failed_launches: u64,
    /// Elements compared in total.
    pub compared_elems: u64,
    /// Elements that diverged.
    pub mismatched_elems: u64,
    /// Largest absolute divergence seen.
    pub max_abs_err: f64,
    /// Assertion failures (§III-C).
    pub assertion_failures: u64,
}

impl KernelVerification {
    /// Did verification flag this kernel?
    pub fn flagged(&self) -> bool {
        self.failed_launches > 0 || self.assertion_failures > 0
    }
}

/// Result of one execution.
#[derive(Debug)]
pub struct RunResult {
    /// The machine after the run (clock, stats, coherence report, memory).
    pub machine: Machine,
    /// Per-kernel verification outcomes (verify mode).
    pub verify: Vec<KernelVerification>,
    /// Races observed by the device oracle, per kernel name.
    pub races: Vec<(String, RaceReport)>,
    /// Total kernel launches.
    pub kernel_launches: u64,
    /// Host instructions interpreted.
    pub host_instrs: u64,
}

impl RunResult {
    /// Simulated wall-clock time, µs.
    pub fn sim_time_us(&self) -> f64 {
        self.machine.clock.now()
    }

    /// Read a named global scalar from the final host state.
    pub fn global_scalar(&self, tr: &Translated, name: &str) -> Option<Value> {
        let slot = tr.host_module.global_slot(name)?;
        self.machine.host.globals.get(slot as usize).copied()
    }

    /// Snapshot a named global aggregate as f64s from the final host state.
    pub fn global_array(&self, tr: &Translated, name: &str) -> Option<Vec<f64>> {
        let slot = tr.host_module.global_slot(name)?;
        match self.machine.host.globals.get(slot as usize)? {
            Value::Ptr(h) if !h.is_null() => {
                let buf = self.machine.host.mem.get(*h).ok()?;
                Some(
                    (0..buf.len())
                        .map(|i| buf.get(i as u64).unwrap().as_f64())
                        .collect(),
                )
            }
            _ => None,
        }
    }
}

/// Execute a translated program.
pub fn execute(tr: &Translated, opts: &ExecOptions) -> Result<RunResult, VmError> {
    let host = BasicEnv::for_module(&tr.host_module);
    // The device dimension exists only in verify mode — the sequential
    // and Normal paths always simulate exactly one device.
    let (n_devices, device_plan, footprints) = match &opts.mode {
        ExecMode::Verify(v) => {
            let d = dag::DepDag::build(&tr.kernels);
            let n = v.devices.clamp(1, openarc_runtime::MAX_DEVICES);
            let plan = match v.placement {
                dag::Placement::RoundRobin => d.device_plan(n),
                dag::Placement::Eft | dag::Placement::Measured => {
                    let model = CostModel::default();
                    let mut table = dag::cost::estimate_site_costs(tr, &model);
                    if v.placement == dag::Placement::Measured {
                        if let Some(m) = &v.measured {
                            table.apply_measured(&tr.kernels, m);
                        }
                    }
                    dag::cost::eft_plan(&d, &table, &model, n).plan
                }
            };
            (n, plan, d.footprints)
        }
        _ => (1, vec![DeviceId::PRIMARY; tr.kernels.len()], Vec::new()),
    };
    let mut machine = Machine::with_devices(host, opts.check_transfers, n_devices);
    machine.devices.set_race_detect(opts.race_detect);
    machine.set_journal(opts.journal.clone());
    let mut env = ExecEnv {
        tr,
        opts,
        machine,
        verify: tr
            .kernels
            .iter()
            .map(|k| KernelVerification {
                kernel: k.name.clone(),
                ..Default::default()
            })
            .collect(),
        races: Vec::new(),
        pending_cpu: 0,
        device_cells: HashMap::new(),
        host_cells: HashMap::new(),
        kernel_launches: 0,
        deferred: Vec::new(),
        region_active: HashMap::new(),
        pending: std::collections::VecDeque::new(),
        device_plan,
        footprints,
        t0: std::time::Instant::now(),
    };

    let mut t = ThreadState::new(&tr.host_module, GLOBALS_INIT, &[])?;
    while !t.is_done() {
        t.step(&tr.host_module, &mut env)?;
    }
    // `declare` clauses: program-lifetime device residency.
    if !matches!(opts.mode, ExecMode::CpuOnly | ExecMode::Verify(_)) {
        for a in &tr.declares {
            if a.map {
                let h = env.resolve(&a.var)?;
                env.machine.map_to_device(h)?;
                if a.copyin {
                    env.do_copy(&a.var, "declare", true, None)?;
                }
            }
        }
    }
    let mut t = ThreadState::new(&tr.host_module, "main", &[])?;
    let mut steps: u64 = 0;
    while !t.is_done() {
        t.step(&tr.host_module, &mut env)?;
        env.pending_cpu += 1;
        steps += 1;
        if steps > opts.step_budget {
            return Err(VmError::StepLimit(opts.step_budget));
        }
    }
    env.flush_cpu();
    if !matches!(opts.mode, ExecMode::CpuOnly | ExecMode::Verify(_)) {
        for a in &tr.declares {
            if a.map {
                if a.copyout {
                    env.do_copy(&a.var, "declare", false, None)?;
                }
                let h = env.resolve(&a.var)?;
                env.machine.unmap_from_device(h)?;
            }
        }
    }
    // Retire any still-in-flight verified launches (dag_jobs > 1) before
    // the final barrier, so their completion accounting precedes it.
    env.retire_all()?;
    env.machine.clock.wait_all();
    // Publish the run's buffered events in one batch — the only journal
    // lock acquisition of the whole run.
    env.machine.flush_journal();
    Ok(RunResult {
        machine: env.machine,
        verify: env.verify,
        races: env.races,
        kernel_launches: env.kernel_launches,
        host_instrs: steps,
    })
}
