//! Verified launch (§III-A): demoted transfers, GPU execution overlapped
//! with the sequential CPU reference, comparison, CPU results canonical.
//!
//! The paper overlaps the asynchronous device kernel with the host's
//! sequential re-execution. Here that overlap is *actual host parallelism*:
//! the simulated device launch runs on a `std::thread::scope` worker while
//! the CPU reference interpreter runs on the calling thread. The two touch
//! disjoint machine state (device memory vs. host memory), and every clock
//! charge and journal emission happens after the join in a fixed order, so
//! simulated time, the Figure-3 breakdown, and the event journal are
//! bit-identical to the single-threaded path
//! ([`VerifyOptions::overlap_reference`]` = false`).

use super::env::ExecEnv;
use super::reduce::red_eval;
use super::{AssertKind, VerifyOptions};
use openarc_gpusim::{launch, KernelOutcome, TimeCategory};
use openarc_vm::interp::BasicEnv;
use openarc_vm::{Module, ThreadState, Value, VmError};

/// Run the sequential reference function against host memory only. The
/// `__seq_*` fallbacks touch nothing but their parameters and globals, so
/// the bare [`BasicEnv`] is a sufficient (and thread-confined) environment.
fn run_reference(
    host: &mut BasicEnv,
    module: &Module,
    name: &str,
    args: &[Value],
) -> Result<u64, VmError> {
    let mut t = ThreadState::new(module, name, args)?;
    while !t.is_done() {
        t.step(module, host)?;
    }
    Ok(t.steps)
}

impl ExecEnv<'_> {
    /// Verified launch (§III-A): demoted transfers, async GPU + sequential
    /// CPU reference, comparison, CPU results stay canonical.
    pub(super) fn launch_verified(&mut self, k: usize, v: &VerifyOptions) -> Result<(), VmError> {
        // `self.tr` outlives `self`: borrow the kernel record (and its
        // variable names) for the whole launch instead of deep-cloning it.
        let tr = self.tr;
        let info = &tr.kernels[k];
        let n = self.n_threads(k)?;
        let q = v.queue;
        // Demotion: copy in *everything* the kernel touches.
        let mut touched: Vec<&str> = info.gpu_reads.iter().map(String::as_str).collect();
        for w in &info.gpu_writes {
            if !touched.contains(&w.as_str()) {
                touched.push(w);
            }
        }
        // One site string for every staging transfer of this launch.
        let verify_site = format!("{}_verify", info.name);
        for var in &touched {
            let h = self.resolve(var)?;
            self.machine.map_to_device(h)?;
            // Staging transfers are charged synchronously (they appear as
            // the Mem Transfer component of Figure 3); the kernel itself
            // runs asynchronously and overlaps the CPU reference.
            self.machine.copy_to_device(h, &verify_site, None)?;
        }
        // Marshal both sides up front — argument building mutates host and
        // device memory, so it stays on this thread.
        let (args, dreds, dtemps, dcells) = self.build_args(k, n, true)?;
        let cfg = self.launch_cfg(k);
        let (mut hargs, hreds, htemps, hcells) = self.build_args(k, n, false)?;
        hargs.insert(0, Value::Int(n as i64));

        // Device run and CPU reference, overlapped. The worker gets the
        // device half of the machine; the reference interpreter gets the
        // host half. Clock charges land after the join, in the same order
        // as the sequential path.
        let (outcome, steps): (KernelOutcome, u64) = if v.overlap_reference {
            let device = &mut self.machine.device;
            let host = &mut self.machine.host;
            let kernel_module = &self.tr.kernel_module;
            let host_module = &self.tr.host_module;
            let (dev_res, host_res) = std::thread::scope(|scope| {
                let dev = scope.spawn(|| launch(device, kernel_module, &info.name, &args, n, &cfg));
                let host_res = run_reference(host, host_module, &info.seq_name, &hargs);
                (dev.join().expect("device worker panicked"), host_res)
            });
            (dev_res?, host_res?)
        } else {
            let outcome = launch(
                &mut self.machine.device,
                &self.tr.kernel_module,
                &info.name,
                &args,
                n,
                &cfg,
            )?;
            let steps = self.run_host_fn(&info.seq_name, &hargs)?;
            (outcome, steps)
        };
        for r in &outcome.races {
            self.races.push((info.name.clone(), r.clone()));
        }
        self.machine
            .charge_kernel_named(&info.name, &outcome, Some(q));
        self.machine.charge_cpu(steps);
        // Synchronize before comparing.
        self.machine.clock.wait(q);

        // Compare written aggregates element-wise.
        let rec = &mut self.verify[k];
        rec.launches += 1;
        let mut mismatches = 0u64;
        let mut compared = 0u64;
        let mut max_err = 0f64;
        for var in &info.gpu_writes {
            let host_h =
                self.machine.host.globals[self.tr.host_module.global_slot(var).unwrap() as usize];
            let Value::Ptr(host_h) = host_h else { continue };
            let dev_h = self.machine.device_of(host_h)?;
            let hbuf = self.machine.host.mem.get(host_h)?.clone();
            let dbuf = self.machine.device.mem.get(dev_h)?.clone();
            let bound = v.bounds.get(var).copied().or_else(|| {
                info.knowledge
                    .bounds
                    .iter()
                    .find(|b| b.var == *var)
                    .map(|b| (b.lo, b.hi))
            });
            for i in 0..hbuf.len() as u64 {
                let c = hbuf.get(i)?.as_f64();
                let g = dbuf.get(i)?.as_f64();
                if c.abs() < v.min_value_to_check {
                    continue;
                }
                compared += 1;
                let err = (c - g).abs();
                if err > v.abs_tol + v.rel_tol * c.abs() {
                    // User-specified value bounds can absolve the diff.
                    if let Some((lo, hi)) = bound {
                        if c >= lo && c <= hi && g >= lo && g <= hi {
                            continue;
                        }
                    }
                    mismatches += 1;
                    if err > max_err {
                        max_err = err;
                    }
                }
            }
        }
        // Reductions: compare scalar results; CPU value stays canonical.
        for ((var, op, dbuf), (_, _, hbuf)) in dreds.iter().zip(&hreds) {
            let gpu_val = self.fold_device(*dbuf, *op, n)?;
            let cpu_val = self.fold_host(*hbuf, *op, n)?;
            let init = self.scalar_value(var)?;
            let cpu_final = red_eval(*op, init, cpu_val)?;
            let gpu_final = red_eval(*op, init, gpu_val)?;
            let (c, g) = (cpu_final.as_f64(), gpu_final.as_f64());
            if c.abs() >= v.min_value_to_check {
                compared += 1;
                let err = (c - g).abs();
                if err > v.abs_tol + v.rel_tol * c.abs() {
                    mismatches += 1;
                    if err > max_err {
                        max_err = err;
                    }
                }
            }
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, cpu_final.cast(elem))?;
        }
        // Falsely-shared global scalars: compare the device cell against
        // the sequential cell; the CPU value stays canonical.
        for ((var, dh), (_, hh)) in dcells.iter().zip(&hcells) {
            let g = self.machine.device.mem.load(*dh, 0)?.as_f64();
            let c = self.machine.host.mem.load(*hh, 0)?.as_f64();
            if c.abs() >= v.min_value_to_check {
                compared += 1;
                let err = (c - g).abs();
                if err > v.abs_tol + v.rel_tol * c.abs() {
                    mismatches += 1;
                    if err > max_err {
                        max_err = err;
                    }
                }
            }
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, Value::F64(c).cast(elem))?;
        }
        // §III-C assertions on the device results: API-supplied ones plus
        // any `openarc verify assert_*` pragmas attached to the kernel.
        let mut checks: Vec<(String, AssertKind)> = v
            .assertions
            .iter()
            .filter(|a| a.kernel == info.name)
            .map(|a| (a.var.clone(), a.kind.clone()))
            .collect();
        for ka in &info.knowledge.asserts {
            let kind = match ka {
                crate::knowledge::KernelAssert::ChecksumWithin { expected, tol, .. } => {
                    AssertKind::ChecksumWithin {
                        expected: *expected,
                        tol: *tol,
                    }
                }
                crate::knowledge::KernelAssert::AllFinite { .. } => AssertKind::AllFinite,
                crate::knowledge::KernelAssert::NonNegative { .. } => AssertKind::NonNegative,
            };
            checks.push((ka.var().to_string(), kind));
        }
        let mut assertion_failures = 0u64;
        for (var, kind) in &checks {
            if let Ok(host_h) = self.resolve(var) {
                if let Ok(dev_h) = self.machine.device_of(host_h) {
                    let dbuf = self.machine.device.mem.get(dev_h)?.clone();
                    let vals: Vec<f64> = (0..dbuf.len() as u64)
                        .map(|i| dbuf.get(i).unwrap().as_f64())
                        .collect();
                    let ok = match kind {
                        AssertKind::ChecksumWithin { expected, tol } => {
                            (vals.iter().sum::<f64>() - expected).abs() <= *tol
                        }
                        AssertKind::AllFinite => vals.iter().all(|x| x.is_finite()),
                        AssertKind::NonNegative => vals.iter().all(|x| *x >= 0.0),
                    };
                    if !ok {
                        assertion_failures += 1;
                    }
                }
            }
        }
        // Charge the result comparison (~2 interpreted instrs per element).
        let dt = self.machine.cost.cpu_time(compared * 2);
        self.machine.clock.advance(TimeCategory::ResultComp, dt);

        let rec = &mut self.verify[k];
        rec.compared_elems += compared;
        rec.mismatched_elems += mismatches;
        rec.max_abs_err = rec.max_abs_err.max(max_err);
        rec.assertion_failures += assertion_failures;
        if mismatches > 0 {
            rec.failed_launches += 1;
        }
        if self.machine.journal().is_enabled() {
            self.machine.clock.journal.emit(openarc_trace::TraceEvent {
                ts_us: self.machine.clock.now(),
                dur_us: 0.0,
                track: openarc_trace::Track::Host,
                kind: openarc_trace::EventKind::Verification {
                    kernel: info.name.clone(),
                    passed: mismatches == 0 && assertion_failures == 0,
                    compared_elems: compared,
                    mismatched_elems: mismatches,
                    max_abs_err: max_err,
                },
            });
        }

        // Discard device results: free temporaries, unmap everything.
        for t in dtemps {
            self.machine.device.mem.free(t)?;
        }
        for t in htemps {
            self.machine.host.mem.free(t)?;
        }
        for var in &touched {
            let h = self.resolve(var)?;
            self.machine.unmap_from_device(h)?;
        }
        Ok(())
    }
}
