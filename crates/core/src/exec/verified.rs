//! Verified launch (§III-A): demoted transfers, GPU execution overlapped
//! with the sequential CPU reference, comparison, CPU results canonical.
//!
//! The path is a three-stage pipeline:
//!
//! 1. **Staging** — the demotion copies move every touched aggregate to
//!    the device. The raw byte copies run on a worker thread while the
//!    calling thread pre-builds the reduction partial buffers (argument
//!    marshalling for the host reference); the copies' *accounting* —
//!    clock charges on the verification async queue, transfer stats,
//!    journal events, coherence transitions — replays after the join in a
//!    fixed per-variable order via [`Machine::account_to_device`].
//! 2. **Overlap** — the simulated device launch runs on a
//!    `std::thread::scope` worker while the CPU reference interpreter runs
//!    on the calling thread, exactly the paper's async overlap. The two
//!    touch disjoint machine state (device memory vs. host memory).
//! 3. **Comparison** — each written aggregate is chunked into contiguous
//!    ranges fanned across [`run_tasks`] workers
//!    ([`VerifyOptions::compare_jobs`]); chunk results merge in task
//!    order, so counts and `max_abs_err` match the one-loop path
//!    bit-for-bit.
//!
//! Every clock charge and journal emission happens between stages on the
//! calling thread in a fixed order, so simulated time, the Figure-3
//! breakdown, and the event journal are bit-identical to the fully
//! sequential oracle ([`VerifyOptions::overlap_reference`]` = false`,
//! which also forces `compare_jobs = 1`). Real elapsed time per stage is
//! journaled as wall-clock [`EventKind::Stage`] spans into
//! [`ExecOptions::stage_journal`](super::ExecOptions::stage_journal) when
//! enabled — a separate stream that never enters the deterministic run
//! journal.
//!
//! [`Machine::account_to_device`]: openarc_runtime::Machine::account_to_device
//! [`run_tasks`]: crate::sched::run_tasks
//! [`EventKind::Stage`]: openarc_trace::EventKind::Stage

use super::env::ExecEnv;
use super::reduce::red_eval;
use super::{AssertKind, VerifyOptions};
use crate::ir::KernelParam;
use crate::sched::{chunk_ranges, run_tasks};
use openarc_gpusim::{launch, DeviceId, KernelOutcome, TimeCategory};
use openarc_minic::ScalarTy;
use openarc_vm::interp::BasicEnv;
use openarc_vm::{Buffer, Handle, MemSpace, Module, ThreadState, Value, VmError};
use std::collections::VecDeque;
use std::time::Instant;

/// One verified launch that has *executed* (issue phase: staging, device
/// run, CPU reference, comparison, canonical stores — all in program
/// order) but whose completion accounting has not yet landed on the
/// simulated timeline. Retirement performs, in oracle order: the CPU
/// reference charge, the device-queue wait, the result-comparison charge,
/// the verification record/event, and the staging unmaps.
#[derive(Debug)]
pub(super) struct PendingVerify {
    /// Launch-site index into `tr.kernels` / `self.verify`.
    pub(super) k: usize,
    /// Device the launch was scheduled on.
    dev: DeviceId,
    /// Async queue (on `dev`) carrying the staging copies and the kernel.
    queue: i64,
    /// Interpreted instruction count of the CPU reference run.
    ref_steps: u64,
    /// Elements compared.
    compared: u64,
    /// Elements that diverged beyond the margin.
    mismatches: u64,
    /// Largest absolute divergence.
    max_err: f64,
    /// §III-C assertion failures.
    assertion_failures: u64,
    /// Host handles of staged aggregates, to unmap from `dev`.
    touched: Vec<Handle>,
}

/// Run the sequential reference function against host memory only. The
/// `__seq_*` fallbacks touch nothing but their parameters and globals, so
/// the bare [`BasicEnv`] is a sufficient (and thread-confined) environment.
fn run_reference(
    host: &mut BasicEnv,
    module: &Module,
    name: &str,
    args: &[Value],
) -> Result<u64, VmError> {
    let mut t = ThreadState::new(module, name, args)?;
    while !t.is_done() {
        t.step(module, host)?;
    }
    Ok(t.steps)
}

/// Raw demotion byte copies, host buffer → device mirror. Pure data
/// movement between arenas the caller holds exclusively; every observable
/// effect (clock, stats, journal, coherence) is replayed afterwards on the
/// calling thread through `Machine::account_to_device`.
fn stage_copies(
    dev_mem: &mut MemSpace,
    host_mem: &MemSpace,
    pairs: &[(Handle, Handle)],
) -> Result<(), VmError> {
    for (src, dst) in pairs {
        let data = host_mem.get(*src)?;
        dev_mem.get_mut(*dst)?.copy_from(data)?;
    }
    Ok(())
}

/// Element-wise comparison of one `lo..hi` chunk of a written aggregate.
/// Exactly the sequential loop body: skip below `min_value`, count a
/// mismatch when the error exceeds `abs_tol + rel_tol·|cpu|` and the
/// user's value bound does not absolve it. Returns
/// `(compared, mismatches, chunk max error)`; because chunks tile the
/// buffer in order and the caller merges in task order, any chunking
/// reproduces the one-loop counts bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn compare_range(
    hbuf: &Buffer,
    dbuf: &Buffer,
    lo: u64,
    hi: u64,
    min_value: f64,
    abs_tol: f64,
    rel_tol: f64,
    bound: Option<(f64, f64)>,
) -> Result<(u64, u64, f64), VmError> {
    let mut compared = 0u64;
    let mut mismatches = 0u64;
    let mut max_err = 0f64;
    for i in lo..hi {
        let c = hbuf.get(i)?.as_f64();
        let g = dbuf.get(i)?.as_f64();
        if c.abs() < min_value {
            continue;
        }
        compared += 1;
        let err = (c - g).abs();
        if err > abs_tol + rel_tol * c.abs() {
            // User-specified value bounds can absolve the diff.
            if let Some((blo, bhi)) = bound {
                if c >= blo && c <= bhi && g >= blo && g <= bhi {
                    continue;
                }
            }
            mismatches += 1;
            if err > max_err {
                max_err = err;
            }
        }
    }
    Ok((compared, mismatches, max_err))
}

impl ExecEnv<'_> {
    /// Emit one wall-clock pipeline-phase span into the stage journal
    /// (no-op when disabled; `started` is `None` exactly then).
    fn note_stage(&self, label: &'static str, started: Option<Instant>) {
        let Some(started) = started else { return };
        self.opts.stage_journal.emit(openarc_trace::TraceEvent {
            ts_us: started.duration_since(self.t0).as_secs_f64() * 1e6,
            dur_us: started.elapsed().as_secs_f64() * 1e6,
            track: openarc_trace::Track::Host,
            kind: openarc_trace::EventKind::Stage {
                stage: label,
                cached: false,
            },
        });
    }

    /// Verified launch (§III-A): demoted transfers, async GPU + sequential
    /// CPU reference, comparison, CPU results stay canonical.
    pub(super) fn launch_verified(&mut self, k: usize, v: &VerifyOptions) -> Result<(), VmError> {
        // DAG ordering: any in-flight launch whose footprint conflicts
        // with this site (RAW/WAR/WAW — including an earlier launch of
        // the same site) must complete on the simulated timeline before
        // this one issues.
        while self
            .pending
            .iter()
            .any(|p| self.footprints[p.k].conflicts_with(&self.footprints[k]))
        {
            self.retire_oldest()?;
        }
        let dev = self
            .device_plan
            .get(k)
            .copied()
            .unwrap_or(DeviceId::PRIMARY);
        // `self.tr` outlives `self`: borrow the kernel record (and its
        // variable names) for the whole launch instead of deep-cloning it.
        let tr = self.tr;
        let info = &tr.kernels[k];
        let n = self.n_threads(k)?;
        let q = v.queue;
        let timed = self.opts.stage_journal.is_enabled();
        let t_staging = timed.then(Instant::now);

        // ---------------------------------------------- stage 1: staging
        // Demotion: copy in *everything* the kernel touches.
        let mut touched: Vec<&str> = info.gpu_reads.iter().map(String::as_str).collect();
        for w in &info.gpu_writes {
            if !touched.contains(&w.as_str()) {
                touched.push(w);
            }
        }
        // One site string for every staging transfer of this launch.
        let verify_site = format!("{}_verify", info.name);
        // Map every touched aggregate first (allocation charges land here,
        // in variable order), collecting the raw copy pairs. Allocations
        // are stream-ordered on the launch's queue — like the staging
        // transfers and the kernel itself — so the host issue loop never
        // blocks on them and independent launches can overlap on distinct
        // devices.
        let mut staged: Vec<(Handle, Handle)> = Vec::with_capacity(touched.len());
        for var in &touched {
            let h = self.resolve(var)?;
            let (dev_h, _) = self.machine.map_to_device_on_queue(dev, h, Some(q))?;
            staged.push((h, dev_h));
        }
        // Plan the reduction partial buffers of both sides so their O(n)
        // zero-fill can run off the arenas.
        let red_plan: Vec<(ScalarTy, String)> = info
            .params
            .iter()
            .filter_map(|p| match p {
                KernelParam::ReductionSlot { var, .. } => {
                    Some((self.scalar_elem_of(var), format!("__red_{var}")))
                }
                _ => None,
            })
            .collect();
        let red_len = n.max(1) as usize;
        let build_bufs = || -> (VecDeque<Buffer>, VecDeque<Buffer>) {
            let make = || {
                red_plan
                    .iter()
                    .map(|(elem, label)| Buffer::new(*elem, red_len, label.clone()))
                    .collect()
            };
            (make(), make())
        };
        // The raw byte copies overlap the partial-buffer construction; the
        // sequential oracle runs the identical operations inline.
        let (copied, (mut dprep, mut hprep)) = if v.overlap_reference {
            let dev_mem = &mut self.machine.devices.get_mut(dev).mem;
            let host_mem = &self.machine.host.mem;
            std::thread::scope(|scope| {
                let worker = scope.spawn(|| stage_copies(dev_mem, host_mem, &staged));
                let bufs = build_bufs();
                (worker.join().expect("staging worker panicked"), bufs)
            })
        } else {
            let bufs = build_bufs();
            (
                stage_copies(
                    &mut self.machine.devices.get_mut(dev).mem,
                    &self.machine.host.mem,
                    &staged,
                ),
                bufs,
            )
        };
        copied?;
        // Replay the staging accounting in per-variable order. The copies
        // are charged on the verification async queue: they serialize with
        // the kernel on queue `q` and overlap the host reference, so their
        // cost folds into Async-Wait (like the kernel itself) instead of
        // blocking host time as Mem Transfer.
        for (host_h, _) in &staged {
            self.machine
                .account_to_device_on(dev, *host_h, &verify_site, Some(q), None)?;
        }
        // Marshal both sides — argument building mutates host and device
        // memory, so it stays on this thread; pre-built partial buffers
        // publish with a pointer move.
        let (args, dreds, dtemps, dcells) =
            self.build_args_prepared(k, n, true, dev, &mut dprep)?;
        let cfg = self.launch_cfg(k);
        let (mut hargs, hreds, htemps, hcells) =
            self.build_args_prepared(k, n, false, dev, &mut hprep)?;
        hargs.insert(0, Value::Int(n as i64));
        self.note_stage("verify:staging", t_staging);

        // ---------------------------------------------- stage 2: overlap
        // Device run and CPU reference, overlapped. The worker gets the
        // device half of the machine; the reference interpreter gets the
        // host half. Clock charges land after the join, in the same order
        // as the sequential path.
        let t_overlap = timed.then(Instant::now);
        let (outcome, steps): (KernelOutcome, u64) = if v.overlap_reference {
            let device = self.machine.devices.get_mut(dev);
            let host = &mut self.machine.host;
            let kernel_module = &self.tr.kernel_module;
            let host_module = &self.tr.host_module;
            let (dev_res, host_res) = std::thread::scope(|scope| {
                let dev = scope.spawn(|| launch(device, kernel_module, &info.name, &args, n, &cfg));
                let host_res = run_reference(host, host_module, &info.seq_name, &hargs);
                (dev.join().expect("device worker panicked"), host_res)
            });
            (dev_res?, host_res?)
        } else {
            let outcome = launch(
                self.machine.devices.get_mut(dev),
                &self.tr.kernel_module,
                &info.name,
                &args,
                n,
                &cfg,
            )?;
            let steps = self.run_host_fn(&info.seq_name, &hargs)?;
            (outcome, steps)
        };
        for r in &outcome.races {
            self.races.push((info.name.clone(), r.clone()));
        }
        self.machine
            .charge_kernel_named_on(&info.name, &outcome, dev, Some(q));
        // The reference CPU charge and the queue wait defer to this
        // launch's *retirement*, so independent launches issued while
        // this one is pending overlap it on the simulated timeline.
        self.note_stage("verify:overlap", t_overlap);

        // ------------------------------------------- stage 3: comparison
        let t_compare = timed.then(Instant::now);
        // Compare written aggregates element-wise, chunked per variable
        // across the comparison workers. The sequential oracle keeps one
        // inline loop (`run_tasks` with jobs = 1 degenerates to it).
        let cmp_jobs = if v.overlap_reference {
            v.compare_jobs.max(1)
        } else {
            1
        };
        let mut mismatches = 0u64;
        let mut compared = 0u64;
        let mut max_err = 0f64;
        {
            type ChunkTask<'t> = Box<dyn FnOnce() -> Result<(u64, u64, f64), VmError> + Send + 't>;
            let mut tasks: Vec<ChunkTask<'_>> = Vec::new();
            for var in &info.gpu_writes {
                let host_h = self.machine.host.globals
                    [self.tr.host_module.global_slot(var).unwrap() as usize];
                let Value::Ptr(host_h) = host_h else { continue };
                let dev_h = self.machine.device_of_on(dev, host_h)?;
                let hbuf = self.machine.host.mem.get(host_h)?;
                let dbuf = self.machine.devices.get(dev).mem.get(dev_h)?;
                let bound = v.bounds.get(var).copied().or_else(|| {
                    info.knowledge
                        .bounds
                        .iter()
                        .find(|b| b.var == *var)
                        .map(|b| (b.lo, b.hi))
                });
                let (minv, atol, rtol) = (v.min_value_to_check, v.abs_tol, v.rel_tol);
                for (lo, hi) in chunk_ranges(hbuf.len() as u64, cmp_jobs) {
                    tasks.push(Box::new(move || {
                        compare_range(hbuf, dbuf, lo, hi, minv, atol, rtol, bound)
                    }));
                }
            }
            // Merge chunk results in task order: counts sum, the running
            // max only moves on strict increase — associative, so every
            // job count reproduces the sequential fold bit-for-bit.
            for res in run_tasks(cmp_jobs, tasks) {
                let (c, m, e) = res?;
                compared += c;
                mismatches += m;
                if e > max_err {
                    max_err = e;
                }
            }
        }
        // Reductions: compare scalar results; CPU value stays canonical.
        for ((var, op, dbuf), (_, _, hbuf)) in dreds.iter().zip(&hreds) {
            let gpu_val = self.fold_device_on(*dbuf, *op, n, dev)?;
            let cpu_val = self.fold_host(*hbuf, *op, n)?;
            let init = self.scalar_value(var)?;
            let cpu_final = red_eval(*op, init, cpu_val)?;
            let gpu_final = red_eval(*op, init, gpu_val)?;
            let (c, g) = (cpu_final.as_f64(), gpu_final.as_f64());
            if c.abs() >= v.min_value_to_check {
                compared += 1;
                let err = (c - g).abs();
                if err > v.abs_tol + v.rel_tol * c.abs() {
                    mismatches += 1;
                    if err > max_err {
                        max_err = err;
                    }
                }
            }
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, cpu_final.cast(elem))?;
        }
        // Falsely-shared global scalars: compare the device cell against
        // the sequential cell; the CPU value stays canonical.
        for ((var, dh), (_, hh)) in dcells.iter().zip(&hcells) {
            let g = self.machine.devices.get(dev).mem.load(*dh, 0)?.as_f64();
            let c = self.machine.host.mem.load(*hh, 0)?.as_f64();
            if c.abs() >= v.min_value_to_check {
                compared += 1;
                let err = (c - g).abs();
                if err > v.abs_tol + v.rel_tol * c.abs() {
                    mismatches += 1;
                    if err > max_err {
                        max_err = err;
                    }
                }
            }
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, Value::F64(c).cast(elem))?;
        }
        // §III-C assertions on the device results: API-supplied ones plus
        // any `openarc verify assert_*` pragmas attached to the kernel.
        let mut checks: Vec<(String, AssertKind)> = v
            .assertions
            .iter()
            .filter(|a| a.kernel == info.name)
            .map(|a| (a.var.clone(), a.kind.clone()))
            .collect();
        for ka in &info.knowledge.asserts {
            let kind = match ka {
                crate::knowledge::KernelAssert::ChecksumWithin { expected, tol, .. } => {
                    AssertKind::ChecksumWithin {
                        expected: *expected,
                        tol: *tol,
                    }
                }
                crate::knowledge::KernelAssert::AllFinite { .. } => AssertKind::AllFinite,
                crate::knowledge::KernelAssert::NonNegative { .. } => AssertKind::NonNegative,
            };
            checks.push((ka.var().to_string(), kind));
        }
        let mut assertion_failures = 0u64;
        for (var, kind) in &checks {
            if let Ok(host_h) = self.resolve(var) {
                if let Ok(dev_h) = self.machine.device_of_on(dev, host_h) {
                    let dbuf = self.machine.devices.get(dev).mem.get(dev_h)?;
                    let ok = match kind {
                        AssertKind::ChecksumWithin { expected, tol } => {
                            let sum: f64 = (0..dbuf.len() as u64)
                                .map(|i| dbuf.get(i).unwrap().as_f64())
                                .sum();
                            (sum - expected).abs() <= *tol
                        }
                        AssertKind::AllFinite => (0..dbuf.len() as u64)
                            .all(|i| dbuf.get(i).unwrap().as_f64().is_finite()),
                        AssertKind::NonNegative => {
                            (0..dbuf.len() as u64).all(|i| dbuf.get(i).unwrap().as_f64() >= 0.0)
                        }
                    };
                    if !ok {
                        assertion_failures += 1;
                    }
                }
            }
        }
        self.note_stage("verify:compare", t_compare);

        // Discard device temporaries now (pure memory operations with no
        // clock or journal effect); the staging *unmaps* defer to
        // retirement because their free charges belong after the queue
        // wait on the simulated timeline.
        for t in dtemps {
            self.machine.devices.get_mut(dev).mem.free(t)?;
        }
        for t in htemps {
            self.machine.host.mem.free(t)?;
        }
        let touched_handles = touched
            .iter()
            .map(|var| self.resolve(var))
            .collect::<Result<Vec<_>, _>>()?;
        self.pending.push_back(PendingVerify {
            k,
            dev,
            queue: q,
            ref_steps: steps,
            compared,
            mismatches,
            max_err,
            assertion_failures,
            touched: touched_handles,
        });
        // Capacity: keep at most `dag_jobs` launches in flight. At the
        // default of 1 this retires the launch immediately, reproducing
        // the sequential oracle's clock and journal bit-for-bit.
        while self.pending.len() >= v.dag_jobs.max(1) {
            self.retire_oldest()?;
        }
        Ok(())
    }

    /// Retire the oldest in-flight verified launch: replay its completion
    /// accounting in oracle order — reference CPU charge, device-queue
    /// wait, result-comparison charge, verification record and event,
    /// staging unmaps.
    pub(super) fn retire_oldest(&mut self) -> Result<(), VmError> {
        let Some(p) = self.pending.pop_front() else {
            return Ok(());
        };
        let name = &self.tr.kernels[p.k].name;
        self.machine.charge_cpu(p.ref_steps);
        self.machine.clock.wait_on(p.dev, p.queue);
        // Charge the result comparison (~2 interpreted instrs per element).
        let dt = self.machine.cost.cpu_time(p.compared * 2);
        self.machine.clock.advance(TimeCategory::ResultComp, dt);

        let rec = &mut self.verify[p.k];
        rec.launches += 1;
        rec.compared_elems += p.compared;
        rec.mismatched_elems += p.mismatches;
        rec.max_abs_err = rec.max_abs_err.max(p.max_err);
        rec.assertion_failures += p.assertion_failures;
        if p.mismatches > 0 {
            rec.failed_launches += 1;
        }
        if self.machine.journal().is_enabled() {
            self.machine.clock.journal.emit(openarc_trace::TraceEvent {
                ts_us: self.machine.clock.now(),
                dur_us: 0.0,
                track: openarc_trace::Track::Host,
                kind: openarc_trace::EventKind::Verification {
                    kernel: name.clone(),
                    passed: p.mismatches == 0 && p.assertion_failures == 0,
                    compared_elems: p.compared,
                    mismatched_elems: p.mismatches,
                    max_abs_err: p.max_err,
                },
            });
        }
        for h in &p.touched {
            self.machine.unmap_from_device_on(p.dev, *h)?;
        }
        Ok(())
    }

    /// Retire every in-flight verified launch, oldest first.
    pub(super) fn retire_all(&mut self) -> Result<(), VmError> {
        while !self.pending.is_empty() {
            self.retire_oldest()?;
        }
        Ok(())
    }
}
