//! Reduction operator evaluation and partial-buffer folds.

use super::env::ExecEnv;
use openarc_gpusim::{tree_combine, DeviceId};
use openarc_minic::ast::BinOp;
use openarc_openacc::ReductionOp;
use openarc_vm::interp::eval_bin;
use openarc_vm::{Handle, Value, VmError};

impl ExecEnv<'_> {
    /// Fold a device partial buffer the way a GPU reduction would
    /// (tournament tree — different rounding than the host loop).
    pub(super) fn fold_device(
        &mut self,
        buf: Handle,
        op: ReductionOp,
        n: u64,
    ) -> Result<Value, VmError> {
        self.fold_device_on(buf, op, n, DeviceId::PRIMARY)
    }

    /// [`ExecEnv::fold_device`] reading the partial buffer on device
    /// `dev`.
    pub(super) fn fold_device_on(
        &mut self,
        buf: Handle,
        op: ReductionOp,
        n: u64,
        dev: DeviceId,
    ) -> Result<Value, VmError> {
        let b = self.machine.devices.get(dev).mem.get(buf)?;
        let vals: Vec<Value> = (0..n).map(|i| b.get(i)).collect::<Result<_, _>>()?;
        let f = move |a: Value, b: Value| red_eval(op, a, b);
        match tree_combine(&vals, &f)? {
            Some(v) => Ok(v),
            None => Ok(identity_value(op)),
        }
    }

    /// Fold a host partial buffer left-to-right (the sequential rounding).
    pub(super) fn fold_host(
        &mut self,
        buf: Handle,
        op: ReductionOp,
        n: u64,
    ) -> Result<Value, VmError> {
        let b = self.machine.host.mem.get(buf)?;
        let mut acc: Option<Value> = None;
        for i in 0..n {
            let v = b.get(i)?;
            acc = Some(match acc {
                None => v,
                Some(a) => red_eval(op, a, v)?,
            });
        }
        Ok(acc.unwrap_or_else(|| identity_value(op)))
    }
}

/// Identity element as a [`Value`].
pub(super) fn identity_value(op: ReductionOp) -> Value {
    Value::F64(op.identity())
}

/// Apply a reduction operator to two values.
pub fn red_eval(op: ReductionOp, a: Value, b: Value) -> Result<Value, VmError> {
    match op {
        ReductionOp::Add => eval_bin(BinOp::Add, a, b),
        ReductionOp::Mul => eval_bin(BinOp::Mul, a, b),
        ReductionOp::Max => {
            if a.as_f64() >= b.as_f64() {
                Ok(a)
            } else {
                Ok(b)
            }
        }
        ReductionOp::Min => {
            if a.as_f64() <= b.as_f64() {
                Ok(a)
            } else {
                Ok(b)
            }
        }
        ReductionOp::BitAnd => eval_bin(BinOp::BitAnd, a, b),
        ReductionOp::BitOr => eval_bin(BinOp::BitOr, a, b),
        ReductionOp::BitXor => eval_bin(BinOp::BitXor, a, b),
        ReductionOp::LogAnd => Ok(Value::Int((a.truthy() && b.truthy()) as i64)),
        ReductionOp::LogOr => Ok(Value::Int((a.truthy() || b.truthy()) as i64)),
    }
}
