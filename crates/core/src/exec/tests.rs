use super::*;
use crate::translate::{translate, TranslateOptions};
use openarc_gpusim::TimeCategory;
use openarc_minic::frontend;
use openarc_runtime::IssueKind;
use std::sync::OnceLock;

fn run_src(src: &str, topts: &TranslateOptions, eopts: &ExecOptions) -> (Translated, RunResult) {
    let (p, s) = frontend(src).expect("frontend");
    let tr = translate(&p, &s, topts).expect("translate");
    let r = execute(&tr, eopts).expect("execute");
    (tr, r)
}

const COPY_SRC: &str = "double q[64];\ndouble w[64];\nvoid main() {\n int j;\n for (j = 0; j < 64; j++) { w[j] = (double) j; }\n #pragma acc kernels loop gang worker\n for (j = 0; j < 64; j++) { q[j] = w[j] * 2.0; }\n}";

/// Shared fixture: [`COPY_SRC`] translated once with default options.
/// Most cases differ only in [`ExecOptions`], so they re-execute this one
/// [`Translated`] instead of re-running the whole frontend + translate
/// per test.
fn copy_fixture() -> &'static Translated {
    static TR: OnceLock<Translated> = OnceLock::new();
    TR.get_or_init(|| {
        let (p, s) = frontend(COPY_SRC).expect("frontend");
        translate(&p, &s, &TranslateOptions::default()).expect("translate")
    })
}

fn run_copy(eopts: &ExecOptions) -> RunResult {
    execute(copy_fixture(), eopts).expect("execute")
}

#[test]
fn normal_mode_produces_correct_output() {
    let tr = copy_fixture();
    let r = run_copy(&ExecOptions::default());
    let q = r.global_array(tr, "q").unwrap();
    for (i, v) in q.iter().enumerate() {
        assert_eq!(*v, i as f64 * 2.0);
    }
    assert_eq!(r.kernel_launches, 1);
    assert!(r.races.is_empty());
    // Naive policy: q and w copied in, q copied out.
    assert_eq!(r.machine.stats.h2d_count, 2);
    assert_eq!(r.machine.stats.d2h_count, 1);
    assert!(r.sim_time_us() > 0.0);
}

#[test]
fn cpu_only_mode_matches_normal_output() {
    let eopts = ExecOptions {
        mode: ExecMode::CpuOnly,
        ..Default::default()
    };
    let tr = copy_fixture();
    let r = run_copy(&eopts);
    let q = r.global_array(tr, "q").unwrap();
    for (i, v) in q.iter().enumerate() {
        assert_eq!(*v, i as f64 * 2.0);
    }
    assert_eq!(r.machine.stats.total_count(), 0, "no transfers in CPU mode");
    assert_eq!(r.machine.stats.dev_allocs, 0);
}

#[test]
fn reduction_finalizes_on_host() {
    let src = "double a[100];\ndouble s;\nvoid main() {\n int j;\n for (j = 0; j < 100; j++) { a[j] = 1.0; }\n s = 5.0;\n #pragma acc kernels loop gang reduction(+:s)\n for (j = 0; j < 100; j++) { s += a[j]; }\n}";
    let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
    assert_eq!(r.global_scalar(&tr, "s").unwrap().as_f64(), 105.0);
}

#[test]
fn data_region_avoids_per_kernel_transfers() {
    let src = "double q[64];\ndouble w[64];\nvoid main() {\n int k; int j;\n #pragma acc data copyin(w) copyout(q)\n {\n  for (k = 0; k < 5; k++) {\n   #pragma acc kernels loop gang\n   for (j = 0; j < 64; j++) { q[j] = w[j] + (double) k; }\n  }\n }\n}";
    let (_, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
    // One copyin at region enter, one copyout at region exit.
    assert_eq!(r.machine.stats.h2d_count, 1);
    assert_eq!(r.machine.stats.d2h_count, 1);
    assert_eq!(r.machine.stats.dev_allocs, 2);
    // Versus naive: 5 kernels × 2 copyins + 5 copyouts.
    let naive_src = src.replace("#pragma acc data copyin(w) copyout(q)\n {\n", "{\n");
    let (p, s) = frontend(&naive_src).unwrap();
    let tr = translate(&p, &s, &TranslateOptions::default()).unwrap();
    let rn = execute(&tr, &ExecOptions::default()).unwrap();
    assert!(rn.machine.stats.total_bytes() > 5 * r.machine.stats.total_bytes());
}

#[test]
fn update_host_transfers_back() {
    let src = "double q[16];\ndouble w[16];\ndouble s;\nvoid main() {\n int j;\n #pragma acc data copyin(w) create(q)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 16; j++) { q[j] = w[j] + 1.0; }\n  #pragma acc update host(q)\n }\n s = q[3];\n}";
    let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
    assert_eq!(r.global_scalar(&tr, "s").unwrap().as_f64(), 1.0);
}

#[test]
fn missing_update_leaves_stale_host_data() {
    // Same as above without the update: host q stays zero.
    let src = "double q[16];\ndouble w[16];\ndouble s;\nvoid main() {\n int j;\n for (j = 0; j < 16; j++) { w[j] = 2.0; }\n #pragma acc data copyin(w) create(q)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 16; j++) { q[j] = w[j] + 1.0; }\n }\n s = q[3];\n}";
    let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
    assert_eq!(
        r.global_scalar(&tr, "s").unwrap().as_f64(),
        0.0,
        "bug reproduced: host never updated"
    );
}

#[test]
fn coherence_detects_missing_transfer() {
    let src = "double q[16];\ndouble w[16];\ndouble s;\nvoid main() {\n int j;\n #pragma acc data copyin(w) create(q)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 16; j++) { q[j] = w[j] + 1.0; }\n }\n s = q[3];\n}";
    let (p, se) = frontend(src).unwrap();
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let tr = translate(&p, &se, &topts).unwrap();
    let eopts = ExecOptions {
        check_transfers: true,
        ..Default::default()
    };
    let r = execute(&tr, &eopts).unwrap();
    assert!(
        r.machine.report.count(IssueKind::Missing) >= 1,
        "report: {}",
        r.machine.report
    );
}

#[test]
fn coherence_detects_redundant_transfer() {
    // w never changes after the region entry copyin, yet an update
    // device(w) inside the loop re-copies it every iteration.
    let src = "double q[16];\ndouble w[16];\nvoid main() {\n int k; int j;\n #pragma acc data copyin(w) copyout(q)\n {\n  for (k = 0; k < 3; k++) {\n   #pragma acc update device(w)\n   #pragma acc kernels loop gang\n   for (j = 0; j < 16; j++) { q[j] = w[j]; }\n  }\n }\n}";
    let (p, se) = frontend(src).unwrap();
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let tr = translate(&p, &se, &topts).unwrap();
    let eopts = ExecOptions {
        check_transfers: true,
        ..Default::default()
    };
    let r = execute(&tr, &eopts).unwrap();
    assert!(
        r.machine.report.count(IssueKind::Redundant) >= 3,
        "report: {}",
        r.machine.report
    );
    // Context strings include the enclosing loop iteration (Listing 4).
    let text = r.machine.report.to_string();
    assert!(text.contains("k-loop index ="), "{text}");
}

#[test]
fn verify_mode_passes_clean_kernel() {
    let vopts = VerifyOptions::default();
    let eopts = ExecOptions {
        mode: ExecMode::Verify(vopts),
        ..Default::default()
    };
    let r = run_copy(&eopts);
    assert_eq!(r.verify.len(), 1);
    assert_eq!(r.verify[0].launches, 1);
    assert!(!r.verify[0].flagged(), "{:?}", r.verify[0]);
    assert!(r.verify[0].compared_elems > 0);
    // Verification moves data: breakdown has transfer + result comp.
    assert!(r.machine.clock.breakdown.get(TimeCategory::ResultComp) > 0.0);
    assert!(r.machine.clock.breakdown.get(TimeCategory::GpuMemFree) > 0.0);
}

#[test]
fn verify_overlap_matches_sequential_reference_path() {
    // The threaded overlap must be observationally identical to the
    // single-threaded path: same verdicts, same simulated clock, same
    // Figure-3 breakdown, bit for bit.
    let run = |overlap: bool| {
        let eopts = ExecOptions {
            mode: ExecMode::Verify(VerifyOptions {
                overlap_reference: overlap,
                ..Default::default()
            }),
            ..Default::default()
        };
        run_copy(&eopts)
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a.verify[0].compared_elems, b.verify[0].compared_elems);
    assert_eq!(a.verify[0].mismatched_elems, b.verify[0].mismatched_elems);
    assert_eq!(a.sim_time_us().to_bits(), b.sim_time_us().to_bits());
    for c in TimeCategory::ALL {
        assert_eq!(
            a.machine.clock.breakdown.get(c).to_bits(),
            b.machine.clock.breakdown.get(c).to_bits(),
            "category {c:?} diverged between overlap and sequential"
        );
    }
}

#[test]
fn verify_compare_jobs_bit_identical_to_sequential_oracle() {
    // The chunked comparison fan-out must reproduce the sequential
    // oracle's verdicts, journal, and clock bit-for-bit at every job
    // count — including jobs exceeding the buffer length.
    let run = |overlap: bool, jobs: usize| {
        let journal = openarc_trace::Journal::enabled();
        let eopts = ExecOptions {
            mode: ExecMode::Verify(VerifyOptions {
                overlap_reference: overlap,
                compare_jobs: jobs,
                ..Default::default()
            }),
            journal: journal.clone(),
            ..Default::default()
        };
        let r = run_copy(&eopts);
        (r, journal.drain())
    };
    let (oracle, oracle_events) = run(false, 1);
    for jobs in [1usize, 3, 8, 100] {
        let (r, events) = run(true, jobs);
        assert_eq!(r.verify[0].launches, oracle.verify[0].launches);
        assert_eq!(
            r.verify[0].compared_elems, oracle.verify[0].compared_elems,
            "jobs {jobs}"
        );
        assert_eq!(
            r.verify[0].mismatched_elems,
            oracle.verify[0].mismatched_elems
        );
        assert_eq!(
            r.verify[0].max_abs_err.to_bits(),
            oracle.verify[0].max_abs_err.to_bits()
        );
        assert_eq!(r.verify[0].flagged(), oracle.verify[0].flagged());
        assert_eq!(r.sim_time_us().to_bits(), oracle.sim_time_us().to_bits());
        for c in TimeCategory::ALL {
            assert_eq!(
                r.machine.clock.breakdown.get(c).to_bits(),
                oracle.machine.clock.breakdown.get(c).to_bits(),
                "category {c:?} diverged at jobs {jobs}"
            );
        }
        assert_eq!(events, oracle_events, "journal diverged at jobs {jobs}");
    }
}

#[test]
fn verify_stage_journal_spans_all_three_phases() {
    // With a stage journal attached, one verified launch emits exactly
    // one wall-clock span per pipeline phase; the deterministic run
    // journal stays untouched.
    let stage_journal = openarc_trace::Journal::enabled();
    let eopts = ExecOptions {
        mode: ExecMode::Verify(VerifyOptions::default()),
        stage_journal: stage_journal.clone(),
        ..Default::default()
    };
    let r = run_copy(&eopts);
    assert!(!r.verify[0].flagged());
    let spans = stage_journal.drain();
    let labels: Vec<&str> = spans
        .iter()
        .map(|e| match &e.kind {
            openarc_trace::EventKind::Stage { stage, .. } => *stage,
            other => panic!("unexpected event in stage journal: {other:?}"),
        })
        .collect();
    assert_eq!(
        labels,
        vec!["verify:staging", "verify:overlap", "verify:compare"]
    );
    for e in &spans {
        assert!(e.dur_us >= 0.0 && e.ts_us >= 0.0);
    }
    // Disabled stage journal (the default) emits nothing and changes
    // nothing: the run above matches a plain verified run.
    let plain = run_copy(&ExecOptions {
        mode: ExecMode::Verify(VerifyOptions::default()),
        ..Default::default()
    });
    assert_eq!(r.sim_time_us().to_bits(), plain.sim_time_us().to_bits());
}

#[test]
fn verify_mode_catches_injected_race() {
    // Shared temporary without privatization: lockstep corrupts it.
    let src = "double a[64];\ndouble tmp;\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 64; j++) { tmp = (double) j; a[j] = tmp * 2.0; }\n}";
    let (p, s) = frontend(src).unwrap();
    let topts = TranslateOptions {
        auto_privatize: false,
        auto_reduction: false,
        ..Default::default()
    };
    let tr = translate(&p, &s, &topts).unwrap();
    let eopts = ExecOptions {
        mode: ExecMode::Verify(VerifyOptions::default()),
        ..Default::default()
    };
    let r = execute(&tr, &eopts).unwrap();
    assert!(
        r.verify[0].flagged(),
        "verification must catch the race: {:?}",
        r.verify[0]
    );
    // The oracle saw the race too.
    assert!(r
        .races
        .iter()
        .any(|(k, rr)| k == "main_kernel0" && rr.label.contains("tmp")));
}

#[test]
fn race_detector_catches_loop_carried_dependence() {
    // `b[j] = f(b[j-1], b[j])`: thread j reads the element thread j-1
    // writes — a cross-thread read/write conflict the detector must see.
    let src = "float b[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang worker\n for (j = 1; j < 7; j++) { b[j] = (float) ((double) b[(j - 1)] + ((3.0 * (double) b[j]) * 1.5)); }\n}";
    let (_, r) = run_src(
        src,
        &TranslateOptions::default(),
        &ExecOptions {
            race_detect: true,
            ..Default::default()
        },
    );
    assert!(
        r.races
            .iter()
            .any(|(k, rr)| k == "main_kernel0" && rr.label.contains('b')),
        "loop-carried dependence must race: {:?}",
        r.races
    );
}

#[test]
fn verify_untargeted_kernels_run_sequentially() {
    let vopts = VerifyOptions {
        targets: Some(std::iter::once("main_kernel9".to_string()).collect()),
        ..Default::default()
    };
    let eopts = ExecOptions {
        mode: ExecMode::Verify(vopts),
        ..Default::default()
    };
    let tr = copy_fixture();
    let r = run_copy(&eopts);
    // Kernel not selected: ran on CPU, output still correct.
    assert_eq!(r.verify[0].launches, 0);
    let q = r.global_array(tr, "q").unwrap();
    assert_eq!(q[10], 20.0);
    assert_eq!(r.machine.stats.total_count(), 0);
}

#[test]
fn verify_complement_selects_inverse() {
    let vopts = VerifyOptions {
        targets: Some(std::iter::once("main_kernel9".to_string()).collect()),
        complement: true,
        ..Default::default()
    };
    let eopts = ExecOptions {
        mode: ExecMode::Verify(vopts),
        ..Default::default()
    };
    let r = run_copy(&eopts);
    assert_eq!(r.verify[0].launches, 1);
}

#[test]
fn min_value_to_check_skips_tiny_values() {
    let vopts = VerifyOptions {
        min_value_to_check: 1e9,
        ..Default::default()
    };
    let eopts = ExecOptions {
        mode: ExecMode::Verify(vopts),
        ..Default::default()
    };
    let r = run_copy(&eopts);
    assert_eq!(r.verify[0].compared_elems, 0);
}

#[test]
fn assertion_api_flags_bad_checksum() {
    let vopts = VerifyOptions {
        assertions: vec![KernelAssertion {
            kernel: "main_kernel0".into(),
            var: "q".into(),
            kind: AssertKind::ChecksumWithin {
                expected: -1.0,
                tol: 0.5,
            },
        }],
        ..Default::default()
    };
    let eopts = ExecOptions {
        mode: ExecMode::Verify(vopts),
        ..Default::default()
    };
    let r = run_copy(&eopts);
    assert_eq!(r.verify[0].assertion_failures, 1);
    let vopts_ok = VerifyOptions {
        assertions: vec![KernelAssertion {
            kernel: "main_kernel0".into(),
            var: "q".into(),
            kind: AssertKind::NonNegative,
        }],
        ..Default::default()
    };
    let eopts = ExecOptions {
        mode: ExecMode::Verify(vopts_ok),
        ..Default::default()
    };
    let r = run_copy(&eopts);
    assert_eq!(r.verify[0].assertion_failures, 0);
}

#[test]
fn async_kernel_overlaps_and_waits() {
    let src = "double q[64];\ndouble w[64];\nint z;\nvoid main() {\n int j;\n #pragma acc kernels loop async(1) gang copy(q) copyin(w)\n for (j = 0; j < 64; j++) { q[j] = w[j]; }\n for (j = 0; j < 1000; j++) { z = z + 1; }\n #pragma acc wait(1)\n}";
    let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
    assert_eq!(r.global_scalar(&tr, "z").unwrap(), Value::Int(1000));
    assert!(r.sim_time_us() > 0.0);
}

#[test]
fn collapse_kernel_runs_correctly() {
    let src = "double g[8][8];\ndouble s;\nvoid main() {\n int i; int j;\n #pragma acc kernels loop gang collapse(2)\n for (i = 0; i < 8; i++) for (j = 0; j < 8; j++) { g[i][j] = (double)(i * 8 + j); }\n s = g[7][7];\n}";
    let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
    assert_eq!(r.global_scalar(&tr, "s").unwrap().as_f64(), 63.0);
    let g = r.global_array(&tr, "g").unwrap();
    assert_eq!(g[13], 13.0);
}

#[test]
fn malloc_backed_pointers_work_in_kernels() {
    let src = "double *p;\nint n;\ndouble s;\nvoid main() {\n int j;\n n = 32;\n p = (double *) malloc(n * sizeof(double));\n for (j = 0; j < n; j++) { p[j] = 1.0; }\n #pragma acc kernels loop gang\n for (j = 0; j < n; j++) { p[j] = p[j] + 1.0; }\n s = p[31];\n}";
    let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
    assert_eq!(r.global_scalar(&tr, "s").unwrap().as_f64(), 2.0);
}

#[test]
fn seq_and_gpu_reduction_roundings_differ_but_within_margin() {
    // Large float reduction: tree vs sequential rounding differ.
    let src = "float a[4096];\ndouble s;\nvoid main() {\n int j;\n for (j = 0; j < 4096; j++) { a[j] = 0.1f; }\n #pragma acc kernels loop gang reduction(+:s)\n for (j = 0; j < 4096; j++) { s += (double) a[j]; }\n}";
    let eopts = ExecOptions {
        mode: ExecMode::Verify(VerifyOptions::default()),
        ..Default::default()
    };
    let (tr, r) = run_src(src, &TranslateOptions::default(), &eopts);
    assert!(!r.verify[0].flagged(), "{:?}", r.verify[0]);
    let s = r.global_scalar(&tr, "s").unwrap().as_f64();
    assert!((s - 409.6).abs() < 0.1, "{s}");
}
