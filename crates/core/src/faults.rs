//! Fault injection for the Table 2 experiment (§IV-B).
//!
//! The paper evaluates kernel verification by *removing* `private`/
//! `reduction` clauses from the directive programs and disabling the
//! compiler's automatic privatization / reduction recognition, so that the
//! translated kernels contain real races. This module performs the clause
//! stripping; the recognition switches live in
//! [`crate::translate::TranslateOptions`].

use openarc_minic::ast::{Block, Program, Stmt};
use openarc_minic::span::Diagnostic;
use openarc_openacc::{parse_directive, Directive};

/// Statistics from one stripping pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StripStats {
    /// `private`/`firstprivate` clauses removed.
    pub private_removed: usize,
    /// `reduction` clauses removed.
    pub reductions_removed: usize,
    /// Directives visited.
    pub directives_seen: usize,
}

/// Remove all `private`, `firstprivate`, and `reduction` clauses from every
/// `acc` directive in the program.
pub fn strip_privatization(program: &Program) -> Result<(Program, StripStats), Diagnostic> {
    let mut out = program.clone();
    let mut stats = StripStats::default();
    for item in &mut out.items {
        if let openarc_minic::ast::Item::Func(f) = item {
            strip_block(&mut f.body, &mut stats)?;
        }
    }
    Ok((out, stats))
}

fn strip_block(b: &mut Block, stats: &mut StripStats) -> Result<(), Diagnostic> {
    for s in &mut b.stmts {
        strip_stmt(s, stats)?;
    }
    Ok(())
}

fn strip_stmt(s: &mut Stmt, stats: &mut StripStats) -> Result<(), Diagnostic> {
    for pr in &mut s.pragmas {
        let Some(d) = parse_directive(&pr.text, pr.span)? else {
            continue;
        };
        stats.directives_seen += 1;
        let rewritten = match d {
            Directive::Compute(mut c) => {
                stats.private_removed += c.loop_spec.private.len() + c.loop_spec.firstprivate.len();
                stats.reductions_removed += c.loop_spec.reductions.len();
                c.loop_spec.private.clear();
                c.loop_spec.firstprivate.clear();
                c.loop_spec.reductions.clear();
                Some(Directive::Compute(c))
            }
            Directive::Loop(mut l) => {
                stats.private_removed += l.private.len() + l.firstprivate.len();
                stats.reductions_removed += l.reductions.len();
                l.private.clear();
                l.firstprivate.clear();
                l.reductions.clear();
                Some(Directive::Loop(l))
            }
            _ => None,
        };
        if let Some(d) = rewritten {
            pr.text = d.to_string().trim_start_matches("acc ").to_string();
            pr.text = format!("acc {}", pr.text);
        }
    }
    // Recurse into nested statements.
    match &mut s.kind {
        openarc_minic::ast::StmtKind::If {
            then_blk, else_blk, ..
        } => {
            strip_block(then_blk, stats)?;
            if let Some(e) = else_blk {
                strip_block(e, stats)?;
            }
        }
        openarc_minic::ast::StmtKind::For {
            body, init, step, ..
        } => {
            if let Some(i) = init {
                strip_stmt(i, stats)?;
            }
            if let Some(st) = step {
                strip_stmt(st, stats)?;
            }
            strip_block(body, stats)?;
        }
        openarc_minic::ast::StmtKind::While { body, .. } => strip_block(body, stats)?,
        openarc_minic::ast::StmtKind::Block(b) => strip_block(b, stats)?,
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::parse;

    #[test]
    fn strips_private_and_reduction() {
        let p = parse(
            "double a[8];\ndouble s;\ndouble t;\nvoid main() {\n int j;\n #pragma acc kernels loop gang private(t) reduction(+:s)\n for (j = 0; j < 8; j++) { t = a[j]; s += t; }\n}",
        )
        .unwrap();
        let (stripped, stats) = strip_privatization(&p).unwrap();
        assert_eq!(stats.private_removed, 1);
        assert_eq!(stats.reductions_removed, 1);
        let f = stripped.func("main").unwrap();
        let text = &f.body.stmts[1].pragmas[0].text;
        assert!(!text.contains("private"), "{text}");
        assert!(!text.contains("reduction"), "{text}");
        assert!(text.contains("gang"), "{text}");
    }

    #[test]
    fn leaves_data_directives_alone() {
        let p = parse("double a[8];\nvoid main() {\n #pragma acc data copyin(a)\n { }\n}").unwrap();
        let (stripped, stats) = strip_privatization(&p).unwrap();
        assert_eq!(stats.private_removed, 0);
        let f = stripped.func("main").unwrap();
        assert_eq!(f.body.stmts[0].pragmas[0].text, "acc data copyin(a)");
    }

    #[test]
    fn nested_loop_directives_stripped() {
        let p = parse(
            "double a[8];\nvoid main() {\n int i; int j; double t;\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) {\n  #pragma acc loop vector private(t)\n  for (j = 0; j < 8; j++) { t = a[j]; a[j] = t; }\n }\n}",
        )
        .unwrap();
        let (stripped, stats) = strip_privatization(&p).unwrap();
        assert_eq!(stats.private_removed, 1);
        let printed = openarc_minic::print_program(&stripped);
        assert!(!printed.contains("private"), "{printed}");
    }
}
