//! The paper's user-facing configuration interface (§III-A): verification
//! options are supplied "by adding directives or using environment
//! variables (e.g., `verificationOptions=complement=0,kernels=main_kernel0`
//! informs the compiler to verify a specific kernel ... and
//! `minValueToCheck=1e-32` enforces that result is compared only if its
//! value is bigger than a specified threshold)".

use crate::exec::VerifyOptions;
use std::collections::BTreeSet;

/// Every key `parse_verification_options` accepts, sorted — quoted in
/// the unknown-key diagnostic so a typo'd spec names its own fix.
pub const ACCEPTED_KEYS: [&str; 10] = [
    "absTol",
    "compareJobs",
    "complement",
    "dagJobs",
    "devices",
    "kernels",
    "minValueToCheck",
    "placement",
    "queue",
    "relTol",
];

/// Error from parsing an option string.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionError(pub String);

impl std::fmt::Display for OptionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid option: {}", self.0)
    }
}

impl std::error::Error for OptionError {}

/// Parse the paper's `verificationOptions` syntax into [`VerifyOptions`].
///
/// Grammar (comma-separated `key=value` pairs):
///
/// * `complement=0|1` — verify only the listed kernels (`0`) or everything
///   except them (`1`);
/// * `kernels=<name>[:<name>...]` — target kernel names;
/// * `minValueToCheck=<float>`;
/// * `relTol=<float>` / `absTol=<float>` — comparison margins;
/// * `queue=<int>` — async queue used for demoted transfers;
/// * `compareJobs=<int>` — worker threads for the element-wise comparison
///   stage (≥ 1; results are bit-identical at any value);
/// * `dagJobs=<int>` — maximum verified launches in flight in the
///   dependency-DAG executor (≥ 1; `1` retires each launch before the
///   next issues, which is exactly the sequential oracle);
/// * `devices=<int>` — simulated devices to schedule independent
///   launches across (clamped to 1..=8);
/// * `placement=roundrobin|eft|measured` — device-placement policy:
///   static per-level round-robin, cost-model earliest-finish-time, or
///   EFT over journal-calibrated costs (a two-pass measure-then-place
///   run).
///
/// ```
/// use openarc_core::options::parse_verification_options;
/// let v = parse_verification_options(
///     "complement=0,kernels=main_kernel0,minValueToCheck=1e-32",
/// ).unwrap();
/// assert!(!v.complement);
/// assert!(v.targets.unwrap().contains("main_kernel0"));
/// assert_eq!(v.min_value_to_check, 1e-32);
/// ```
pub fn parse_verification_options(spec: &str) -> Result<VerifyOptions, OptionError> {
    let mut opts = VerifyOptions::default();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for pair in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(OptionError(format!("`{pair}` is not key=value")));
        };
        let key = key.trim();
        if !seen.insert(key) {
            return Err(OptionError(format!(
                "duplicate key `{key}` (each key may appear once)"
            )));
        }
        match key {
            "complement" => {
                opts.complement = match value.trim() {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(OptionError(format!(
                            "complement must be 0 or 1, got `{other}`"
                        )))
                    }
                }
            }
            "kernels" => {
                let names: BTreeSet<String> = value
                    .split(':')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if names.is_empty() {
                    return Err(OptionError("kernels list is empty".into()));
                }
                opts.targets = Some(names);
            }
            "minValueToCheck" => {
                opts.min_value_to_check = value
                    .trim()
                    .parse()
                    .map_err(|_| OptionError(format!("bad float `{value}`")))?;
            }
            "relTol" => {
                opts.rel_tol = value
                    .trim()
                    .parse()
                    .map_err(|_| OptionError(format!("bad float `{value}`")))?;
            }
            "absTol" => {
                opts.abs_tol = value
                    .trim()
                    .parse()
                    .map_err(|_| OptionError(format!("bad float `{value}`")))?;
            }
            "queue" => {
                opts.queue = value
                    .trim()
                    .parse()
                    .map_err(|_| OptionError(format!("bad integer `{value}`")))?;
            }
            "compareJobs" => {
                let jobs: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| OptionError(format!("bad integer `{value}`")))?;
                if jobs == 0 {
                    return Err(OptionError("compareJobs must be >= 1".into()));
                }
                opts.compare_jobs = jobs;
            }
            "dagJobs" => {
                let jobs: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| OptionError(format!("bad integer `{value}`")))?;
                if jobs == 0 {
                    return Err(OptionError("dagJobs must be >= 1".into()));
                }
                opts.dag_jobs = jobs;
            }
            "devices" => {
                let n: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| OptionError(format!("bad integer `{value}`")))?;
                if n == 0 {
                    return Err(OptionError("devices must be >= 1".into()));
                }
                opts.devices = n.min(openarc_runtime::MAX_DEVICES);
            }
            "placement" => {
                opts.placement = match value.trim() {
                    "roundrobin" => crate::exec::dag::Placement::RoundRobin,
                    "eft" => crate::exec::dag::Placement::Eft,
                    "measured" => crate::exec::dag::Placement::Measured,
                    other => {
                        return Err(OptionError(format!(
                            "placement must be roundrobin, eft or measured, got `{other}`"
                        )))
                    }
                }
            }
            other => {
                return Err(OptionError(format!(
                    "unknown key `{other}` (accepted: {})",
                    ACCEPTED_KEYS.join(", ")
                )))
            }
        }
    }
    Ok(opts)
}

/// Read [`VerifyOptions`] from the process environment, mirroring the
/// paper's interface: `OPENARC_VERIFICATION_OPTIONS` holds the
/// `verificationOptions` string and `OPENARC_MIN_VALUE_TO_CHECK` overrides
/// the threshold.
pub fn verification_options_from_env() -> Result<VerifyOptions, OptionError> {
    let mut opts = match std::env::var("OPENARC_VERIFICATION_OPTIONS") {
        Ok(spec) => parse_verification_options(&spec)?,
        Err(_) => VerifyOptions::default(),
    };
    if let Ok(v) = std::env::var("OPENARC_MIN_VALUE_TO_CHECK") {
        opts.min_value_to_check = v
            .parse()
            .map_err(|_| OptionError(format!("bad float `{v}`")))?;
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let v = parse_verification_options("complement=0,kernels=main_kernel0").unwrap();
        assert!(!v.complement);
        assert_eq!(
            v.targets.unwrap().into_iter().collect::<Vec<_>>(),
            vec!["main_kernel0"]
        );
    }

    #[test]
    fn parses_multiple_kernels_and_margins() {
        let v = parse_verification_options(
            "complement=1,kernels=main_kernel0:main_kernel2,relTol=1e-4,absTol=1e-8,queue=3",
        )
        .unwrap();
        assert!(v.complement);
        assert_eq!(v.targets.as_ref().unwrap().len(), 2);
        assert_eq!(v.rel_tol, 1e-4);
        assert_eq!(v.abs_tol, 1e-8);
        assert_eq!(v.queue, 3);
    }

    #[test]
    fn parses_min_value_to_check() {
        let v = parse_verification_options("minValueToCheck=1e-32").unwrap();
        assert_eq!(v.min_value_to_check, 1e-32);
    }

    #[test]
    fn empty_spec_is_default() {
        let v = parse_verification_options("").unwrap();
        assert!(v.targets.is_none());
        assert!(!v.complement);
        assert_eq!(v.compare_jobs, 1);
    }

    #[test]
    fn parses_compare_jobs() {
        let v = parse_verification_options("compareJobs=8").unwrap();
        assert_eq!(v.compare_jobs, 8);
        assert!(parse_verification_options("compareJobs=0").is_err());
        assert!(parse_verification_options("compareJobs=x").is_err());
    }

    #[test]
    fn parses_dag_jobs_and_devices() {
        let v = parse_verification_options("dagJobs=4,devices=2").unwrap();
        assert_eq!(v.dag_jobs, 4);
        assert_eq!(v.devices, 2);
        // Defaults keep the sequential oracle.
        let d = parse_verification_options("").unwrap();
        assert_eq!(d.dag_jobs, 1);
        assert_eq!(d.devices, 1);
        // Device count clamps to the journal's side-name table.
        let big = parse_verification_options("devices=99").unwrap();
        assert_eq!(big.devices, openarc_runtime::MAX_DEVICES);
        assert!(parse_verification_options("dagJobs=0").is_err());
        assert!(parse_verification_options("devices=0").is_err());
    }

    #[test]
    fn parses_placement() {
        use crate::exec::dag::Placement;
        let d = parse_verification_options("").unwrap();
        assert_eq!(d.placement, Placement::RoundRobin);
        for (spec, want) in [
            ("placement=roundrobin", Placement::RoundRobin),
            ("placement=eft", Placement::Eft),
            ("placement=measured", Placement::Measured),
        ] {
            let v = parse_verification_options(spec).unwrap();
            assert_eq!(v.placement, want);
            assert_eq!(v.placement.as_str(), spec.split('=').nth(1).unwrap());
        }
        assert!(parse_verification_options("placement=greedy").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse_verification_options(" complement = 1 , kernels = k0 ").unwrap();
        assert!(v.complement);
        assert!(v.targets.unwrap().contains("k0"));
    }

    #[test]
    fn rejects_bad_pairs() {
        assert!(parse_verification_options("complement").is_err());
        assert!(parse_verification_options("complement=2").is_err());
        assert!(parse_verification_options("kernels=").is_err());
        assert!(parse_verification_options("minValueToCheck=abc").is_err());
        assert!(parse_verification_options("frobnicate=1").is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        for spec in [
            "complement=0,complement=1",
            "kernels=k0,kernels=k1",
            "relTol=1e-4,absTol=1e-8,relTol=1e-6",
            // Whitespace around a key does not hide the repeat.
            "queue=1, queue =2",
        ] {
            let err = parse_verification_options(spec).unwrap_err();
            assert!(err.0.contains("duplicate key"), "{spec}: {err}");
        }
        // The message names the offending key, not just "a duplicate".
        let err = parse_verification_options("dagJobs=2,dagJobs=4").unwrap_err();
        assert!(err.0.contains("`dagJobs`"), "{err}");
        // Distinct keys never trip the check.
        assert!(parse_verification_options("relTol=1e-4,absTol=1e-8").is_ok());
    }

    #[test]
    fn unknown_key_reports_the_accepted_set() {
        let err = parse_verification_options("frobnicate=1").unwrap_err();
        assert!(err.0.contains("`frobnicate`"), "{err}");
        for key in ACCEPTED_KEYS {
            assert!(err.0.contains(key), "missing {key} in: {err}");
        }
        // The list stays sorted so the diagnostic is scannable.
        let mut sorted = ACCEPTED_KEYS;
        sorted.sort_unstable();
        assert_eq!(sorted, ACCEPTED_KEYS);
    }

    #[test]
    fn malformed_input_classes_each_name_their_problem() {
        for (spec, needle) in [
            ("complement", "not key=value"),
            ("complement=2", "complement must be 0 or 1"),
            ("kernels=", "kernels list is empty"),
            ("kernels=::", "kernels list is empty"),
            ("minValueToCheck=abc", "bad float"),
            ("relTol=", "bad float"),
            ("absTol=1e", "bad float"),
            ("queue=1.5", "bad integer"),
            ("compareJobs=0", "compareJobs must be >= 1"),
            ("dagJobs=-1", "bad integer"),
            ("devices=0", "devices must be >= 1"),
            ("placement=greedy", "placement must be"),
            ("queue=1,queue=2", "duplicate key"),
            ("frobnicate=1", "unknown key"),
        ] {
            let err = parse_verification_options(spec).unwrap_err();
            assert!(err.0.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn env_interface_round_trips() {
        // Set-and-read through the documented env vars.
        std::env::set_var("OPENARC_VERIFICATION_OPTIONS", "kernels=main_kernel1");
        std::env::set_var("OPENARC_MIN_VALUE_TO_CHECK", "0.5");
        let v = verification_options_from_env().unwrap();
        assert!(v.targets.unwrap().contains("main_kernel1"));
        assert_eq!(v.min_value_to_check, 0.5);
        std::env::remove_var("OPENARC_VERIFICATION_OPTIONS");
        std::env::remove_var("OPENARC_MIN_VALUE_TO_CHECK");
    }
}
