//! # openarc-core
//!
//! The paper's contribution, reproduced: an interactive program debugging
//! and optimization system for directive-based GPU programs, built on an
//! OpenACC→device translator.
//!
//! * [`mod@translate`] — OpenARC's front half: compute-region outlining,
//!   privatization / reduction recognition (switchable, for the §IV-B
//!   fault-injection study), data-clause lowering, `__host_op` markers.
//! * [`instrument`] — §III-B coherence-check placement (first-access,
//!   last-write resets, Listing-3 hoisting).
//! * [`exec`] — the executor over the simulated machine, with Normal /
//!   CpuOnly / Verify modes and the interactive [`exec::TransferOverlay`].
//! * [`verify`] — §III-A kernel verification: memory-transfer demotion
//!   (Listing 2) and the one-call [`verify::verify_kernels`] driver.
//! * [`interactive`] — the §III-B/Figure-2 iterative optimization loop
//!   (Table 3's mechanics: suggestions, false-suggestion recovery).
//! * [`faults`] — clause stripping for the Table 2 experiment.

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod exec;
pub mod faults;
pub mod fuzz;
pub mod instrument;
pub mod interactive;
pub mod ir;
pub mod knowledge;
pub mod options;
pub mod pipeline;
pub mod sched;
pub mod serve;
pub mod translate;
pub mod verify;

pub use api::{Action, ApiError, ErrorKind, Request, Response};
pub use cache::{DiskCache, DiskStats};
pub use exec::{
    execute, ExecMode, ExecOptions, KernelVerification, RunResult, TransferKey, TransferOverlay,
    VerifyOptions,
};
pub use faults::strip_privatization;
pub use fuzz::{run_campaign, CampaignConfig, CampaignReport};
pub use interactive::{optimize_transfers, InteractiveOutcome, OutputSpec};
pub use ir::{DataAction, KernelInfo, KernelParam, RtOp};
pub use knowledge::{KernelAssert, KernelBound, KernelKnowledge};
pub use options::{parse_verification_options, verification_options_from_env};
pub use pipeline::{PipelineRun, PipelineStats, Session, Stage};
pub use sched::{parse_jobs, run_tasks, WorkQueue};
pub use serve::{Server, ServerConfig};
pub use translate::{translate, TranslateOptions, Translated};
pub use verify::{demote_source, verify_kernels, VerificationReport};
