//! Kernel verification front-end (§III-A).
//!
//! The semantic side of verification lives in the executor
//! ([`crate::exec::ExecMode::Verify`]). This module adds:
//!
//! * [`demote_source`] — the **memory-transfer demotion** source-to-source
//!   pass, reproducing the paper's Listing 2: data clauses of enclosing
//!   `data` regions move onto the target compute construct with adjusted
//!   transfer types (`copyin` for read-only data, `copy` otherwise), the
//!   construct becomes `async`, a matching `wait` is inserted, and all
//!   directives unrelated to the target kernel are removed.
//! * [`verify_kernels`] — one-call driver: translate, run verification,
//!   return per-kernel verdicts plus the Figure-3 time breakdown.
//!
//! The executor runs each verified launch as a three-stage pipeline
//! (staged demotion copies, device/reference overlap, fanned-out
//! comparison — see `DESIGN.md` §12). [`VerifyOptions::compare_jobs`]
//! plumbs straight through to the comparison stage's worker count; every
//! value produces bit-identical verdicts, so drivers may pick any fan-out
//! without re-validating results.

use crate::exec::{execute, ExecMode, ExecOptions, KernelVerification, VerifyOptions};
use crate::translate::{translate, TranslateOptions, Translated};
use openarc_gpusim::{RaceReport, TimeBreakdown};
use openarc_minic::ast::*;
use openarc_minic::span::Diagnostic;
use openarc_minic::Sema;
use openarc_openacc::{directives_of, DataClause, DataClauseKind, DataItem, Directive};
use openarc_vm::VmError;
use std::collections::BTreeSet;

/// Identify compute-region statements in document order (kernel index i
/// corresponds to the i-th compute construct, matching the translator).
fn is_compute_stmt(s: &Stmt) -> bool {
    directives_of(s)
        .map(|ds| ds.iter().any(|(d, _)| matches!(d, Directive::Compute(_))))
        .unwrap_or(false)
}

/// Apply memory-transfer demotion to `program` for the kernels whose
/// zero-based compute-construct indices are in `targets`. Returns the
/// transformed program (print it with `openarc_minic::print_program` for
/// Listing-2 style output).
///
/// ```
/// use openarc_core::verify::demote_source;
/// let src = "double q[8];\ndouble w[8];\nvoid main() {\n int j;\n #pragma acc data create(q, w)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 8; j++) { q[j] = w[j]; }\n }\n}";
/// let (program, _) = openarc_minic::frontend(src).unwrap();
/// let demoted = demote_source(&program, &std::iter::once(0).collect(), 1).unwrap();
/// let text = openarc_minic::print_program(&demoted);
/// assert!(text.contains("async(1)"));
/// assert!(text.contains("copy(q)"));
/// assert!(!text.contains("acc data"));
/// ```
pub fn demote_source(
    program: &Program,
    targets: &BTreeSet<usize>,
    queue: i64,
) -> Result<Program, Diagnostic> {
    let mut out = program.clone();
    let mut counter = 0usize;
    for item in &mut out.items {
        if let Item::Func(f) = item {
            let body = std::mem::take(&mut f.body);
            f.body = demote_block(body, targets, queue, &mut counter, &[])?;
        }
    }
    Ok(out)
}

fn demote_block(
    b: Block,
    targets: &BTreeSet<usize>,
    queue: i64,
    counter: &mut usize,
    enclosing: &[DataClause],
) -> Result<Block, Diagnostic> {
    let mut out = Vec::new();
    for s in b.stmts {
        demote_stmt(s, targets, queue, counter, enclosing, &mut out)?;
    }
    Ok(Block { stmts: out })
}

fn demote_stmt(
    mut s: Stmt,
    targets: &BTreeSet<usize>,
    queue: i64,
    counter: &mut usize,
    enclosing: &[DataClause],
    out: &mut Vec<Stmt>,
) -> Result<(), Diagnostic> {
    // Data region: remember its clauses, drop the directive, keep the block.
    let dirs = directives_of(&s)?;
    if let Some((Directive::Data(d), _)) =
        dirs.iter().find(|(d, _)| matches!(d, Directive::Data(_)))
    {
        let mut clauses = enclosing.to_vec();
        clauses.extend(d.clauses.clone());
        s.pragmas.clear();
        match s.kind {
            StmtKind::Block(inner) => {
                // Flatten: the region's scope no longer matters once its
                // clauses are demoted.
                let demoted = demote_block(inner, targets, queue, counter, &clauses)?;
                out.push(Stmt {
                    id: s.id,
                    span: s.span,
                    pragmas: Vec::new(),
                    kind: StmtKind::Block(demoted),
                });
            }
            other => {
                let blk = Block {
                    stmts: vec![Stmt {
                        id: s.id,
                        span: s.span,
                        pragmas: Vec::new(),
                        kind: other,
                    }],
                };
                let demoted = demote_block(blk, targets, queue, counter, &clauses)?;
                out.push(Stmt {
                    id: s.id,
                    span: s.span,
                    pragmas: Vec::new(),
                    kind: StmtKind::Block(demoted),
                });
            }
        }
        return Ok(());
    }
    if is_compute_stmt(&s) {
        let idx = *counter;
        *counter += 1;
        if targets.contains(&idx) {
            // Rewrite the compute directive: demoted clauses + async.
            let dirs = directives_of(&s)?;
            let mut spec = dirs
                .iter()
                .find_map(|(d, _)| d.as_compute().cloned())
                .expect("checked compute above");
            let span = s.span;
            // Variables accessed by the region: read-only → copyin,
            // written → copy.
            let (reads, writes) = region_var_sets(&s);
            spec.data.clear();
            let mut copy_items: Vec<DataItem> = Vec::new();
            let mut copyin_items: Vec<DataItem> = Vec::new();
            for v in writes.iter() {
                copy_items.push(DataItem::new(v.clone()));
            }
            for v in reads.iter().filter(|v| !writes.contains(*v)) {
                copyin_items.push(DataItem::new(v.clone()));
            }
            // Restrict to variables the enclosing regions or defaults would
            // have managed — demotion moves every accessed aggregate.
            if !copy_items.is_empty() {
                spec.data.push(DataClause {
                    kind: DataClauseKind::Copy,
                    items: copy_items,
                });
            }
            if !copyin_items.is_empty() {
                spec.data.push(DataClause {
                    kind: DataClauseKind::CopyIn,
                    items: copyin_items,
                });
            }
            spec.async_queue = Some(queue);
            let _ = enclosing; // clauses are subsumed by the full demotion
            s.pragmas = vec![Pragma {
                text: Directive::Compute(spec).to_string(),
                span,
            }];
            out.push(s.clone());
            // `// Sequential CPU version will be added.` (Listing 2 line 9)
            // is synthesized by the executor; here we add the wait and the
            // comparison anchor as in Listing 2 lines 10–11.
            out.push(Stmt {
                id: s.id,
                span,
                pragmas: vec![Pragma {
                    text: format!("acc wait({queue})"),
                    span,
                }],
                kind: StmtKind::Block(Block::default()),
            });
        } else {
            // Unrelated kernel: strip all directives so it runs on the CPU.
            s.pragmas.clear();
            out.push(recurse_plain(s, targets, queue, counter, enclosing)?);
        }
        return Ok(());
    }
    // Other executable directives (update/wait) are removed entirely.
    if !s.pragmas.is_empty() {
        s.pragmas.clear();
        if matches!(&s.kind, StmtKind::Block(b) if b.stmts.is_empty()) {
            return Ok(()); // standalone directive disappears
        }
    }
    out.push(recurse_plain(s, targets, queue, counter, enclosing)?);
    Ok(())
}

fn recurse_plain(
    s: Stmt,
    targets: &BTreeSet<usize>,
    queue: i64,
    counter: &mut usize,
    enclosing: &[DataClause],
) -> Result<Stmt, Diagnostic> {
    let kind = match s.kind {
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => StmtKind::If {
            cond,
            then_blk: demote_block(then_blk, targets, queue, counter, enclosing)?,
            else_blk: match else_blk {
                Some(e) => Some(demote_block(e, targets, queue, counter, enclosing)?),
                None => None,
            },
        },
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => StmtKind::For {
            init,
            cond,
            step,
            body: demote_block(body, targets, queue, counter, enclosing)?,
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond,
            body: demote_block(body, targets, queue, counter, enclosing)?,
        },
        StmtKind::Block(b) => StmtKind::Block(demote_block(b, targets, queue, counter, enclosing)?),
        other => other,
    };
    Ok(Stmt {
        id: s.id,
        span: s.span,
        pragmas: s.pragmas,
        kind,
    })
}

/// Aggregate variables read / written inside a compute region (syntactic).
fn region_var_sets(s: &Stmt) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    walk_stmt(s, &mut |inner| match &inner.kind {
        StmtKind::Assign { target, value, .. } => {
            match target {
                LValue::Index { base, indices } => {
                    writes.insert(base.clone());
                    for ix in indices {
                        for r in ix.reads() {
                            reads.insert(r);
                        }
                    }
                }
                LValue::Var(_) => {}
            }
            for r in value.reads() {
                reads.insert(r);
            }
        }
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => {
            for r in e.reads() {
                reads.insert(r);
            }
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => {
            for r in cond.reads() {
                reads.insert(r);
            }
        }
        StmtKind::For { cond: Some(c), .. } => {
            for r in c.reads() {
                reads.insert(r);
            }
        }
        _ => {}
    });
    // Keep only names that look like aggregates (indexed).
    let indexed: BTreeSet<String> = {
        let mut ix = BTreeSet::new();
        walk_stmt(s, &mut |inner| {
            collect_indexed(inner, &mut ix);
        });
        ix
    };
    (
        reads.intersection(&indexed).cloned().collect(),
        writes.intersection(&indexed).cloned().collect(),
    )
}

fn collect_indexed(s: &Stmt, out: &mut BTreeSet<String>) {
    fn on_expr(e: &Expr, out: &mut BTreeSet<String>) {
        e.walk(&mut |x| {
            if let ExprKind::Index { base, .. } = &x.kind {
                out.insert(base.clone());
            }
        })
    }
    match &s.kind {
        StmtKind::Assign { target, value, .. } => {
            if let LValue::Index { base, indices } = target {
                out.insert(base.clone());
                for ix in indices {
                    on_expr(ix, out);
                }
            }
            on_expr(value, out);
        }
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => on_expr(e, out),
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => on_expr(cond, out),
        StmtKind::For { cond: Some(c), .. } => on_expr(c, out),
        _ => {}
    }
}

/// Result of a full verification run.
#[derive(Debug)]
pub struct VerificationReport {
    /// Per-kernel verdicts.
    pub kernels: Vec<KernelVerification>,
    /// Simulated time breakdown (Figure 3's bars).
    pub breakdown: TimeBreakdown,
    /// Simulated time of a pure sequential CPU run (Figure 3's baseline).
    pub cpu_baseline_us: f64,
    /// Races seen by the device oracle (ground truth for latent errors).
    pub races: Vec<(String, RaceReport)>,
}

impl VerificationReport {
    /// Kernels flagged by output comparison (active errors).
    pub fn flagged(&self) -> Vec<&KernelVerification> {
        self.kernels.iter().filter(|k| k.flagged()).collect()
    }

    /// Total verification time normalized to the CPU baseline.
    pub fn normalized_time(&self) -> f64 {
        if self.cpu_baseline_us <= 0.0 {
            return 0.0;
        }
        self.breakdown.total() / self.cpu_baseline_us
    }
}

/// Translate and verify all (or selected) kernels of a program.
///
/// ```
/// use openarc_core::exec::VerifyOptions;
/// use openarc_core::translate::TranslateOptions;
/// use openarc_core::verify::verify_kernels;
/// let src = "double a[16];\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 16; j++) { a[j] = (double) j; }\n}";
/// let (program, sema) = openarc_minic::frontend(src).unwrap();
/// let (_, report) = verify_kernels(
///     &program, &sema, &TranslateOptions::default(), VerifyOptions::default(),
/// ).unwrap();
/// assert!(report.flagged().is_empty());
/// assert_eq!(report.kernels[0].launches, 1);
/// ```
pub fn verify_kernels(
    program: &Program,
    sema: &Sema,
    topts: &TranslateOptions,
    vopts: VerifyOptions,
) -> Result<(Translated, VerificationReport), VerifyError> {
    let tr = translate(program, sema, topts).map_err(VerifyError::Translate)?;
    // Baseline: sequential CPU run.
    let base = execute(
        &tr,
        &ExecOptions {
            mode: ExecMode::CpuOnly,
            race_detect: false,
            ..Default::default()
        },
    )
    .map_err(VerifyError::Run)?;
    let cpu_baseline_us = base.sim_time_us();
    // Verification run.
    let r = execute(
        &tr,
        &ExecOptions {
            mode: ExecMode::Verify(vopts),
            ..Default::default()
        },
    )
    .map_err(VerifyError::Run)?;
    let report = VerificationReport {
        kernels: r.verify.clone(),
        breakdown: r.machine.clock.breakdown.clone(),
        cpu_baseline_us,
        races: r.races.clone(),
    };
    Ok((tr, report))
}

/// Errors from [`verify_kernels`].
#[derive(Debug)]
pub enum VerifyError {
    /// Translation failed.
    Translate(Vec<Diagnostic>),
    /// Execution failed.
    Run(VmError),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Translate(ds) => write!(f, "translation failed: {ds:?}"),
            VerifyError::Run(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::{frontend, print_program};

    /// The paper's Listing 1 (CG excerpt), reduced.
    const LISTING1: &str = "double q[32];\ndouble w[32];\nint niter;\nvoid main() {\n int it; int j;\n niter = 3;\n #pragma acc data create(q, w)\n {\n  for (it = 1; it <= niter; it++) {\n   #pragma acc kernels loop gang worker\n   for (j = 0; j < 32; j++) { q[j] = w[j]; }\n  }\n }\n}";

    #[test]
    fn demotion_reproduces_listing2_shape() {
        let (p, _) = frontend(LISTING1).unwrap();
        let demoted = demote_source(&p, &std::iter::once(0).collect(), 1).unwrap();
        let text = print_program(&demoted);
        // Data clauses moved onto the kernel with adjusted transfer types,
        // async added, wait inserted, data directive gone (Listing 2).
        assert!(
            text.contains("acc kernels loop async(1) gang worker copy(q) copyin(w)"),
            "{text}"
        );
        assert!(text.contains("acc wait(1)"), "{text}");
        assert!(!text.contains("acc data"), "{text}");
    }

    #[test]
    fn demotion_strips_unrelated_kernels() {
        let src = "double a[8];\ndouble b[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { a[j] = 1.0; }\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { b[j] = 2.0; }\n}";
        let (p, _) = frontend(src).unwrap();
        let demoted = demote_source(&p, &std::iter::once(1).collect(), 1).unwrap();
        let text = print_program(&demoted);
        // Kernel 0 lost its pragma; kernel 1 kept (demoted) one.
        let n_pragmas = text.matches("#pragma acc kernels").count();
        assert_eq!(n_pragmas, 1, "{text}");
        assert!(text.contains("copy(b)"), "{text}");
    }

    #[test]
    fn demotion_removes_update_directives() {
        let src = "double a[8];\nvoid main() {\n int j;\n #pragma acc update host(a)\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { a[j] = 1.0; }\n}";
        let (p, _) = frontend(src).unwrap();
        let demoted = demote_source(&p, &std::iter::once(0).collect(), 1).unwrap();
        let text = print_program(&demoted);
        assert!(!text.contains("acc update"), "{text}");
    }

    #[test]
    fn verify_kernels_end_to_end_clean() {
        let (p, s) = frontend(LISTING1).unwrap();
        let (_, report) = verify_kernels(
            &p,
            &s,
            &TranslateOptions::default(),
            VerifyOptions::default(),
        )
        .unwrap();
        assert_eq!(report.kernels.len(), 1);
        assert!(report.flagged().is_empty());
        assert_eq!(report.kernels[0].launches, 3, "verified on every iteration");
        assert!(report.cpu_baseline_us > 0.0);
        assert!(
            report.normalized_time() > 1.0,
            "verification costs more than plain CPU"
        );
    }

    #[test]
    fn verify_kernels_flags_injected_race() {
        let src = "double a[64];\ndouble t;\nvoid main() {\n int j;\n #pragma acc kernels loop gang private(t)\n for (j = 0; j < 64; j++) { t = (double) j; a[j] = t + 1.0; }\n}";
        let (p, s) = frontend(src).unwrap();
        // Strip the private clause and disable recognition (the paper's
        // fault-injection protocol).
        let (stripped, stats) = crate::faults::strip_privatization(&p).unwrap();
        assert_eq!(stats.private_removed, 1);
        let topts = TranslateOptions {
            auto_privatize: false,
            auto_reduction: false,
            ..Default::default()
        };
        let (_, report) = verify_kernels(&stripped, &s, &topts, VerifyOptions::default()).unwrap();
        assert_eq!(report.flagged().len(), 1);
        assert!(!report.races.is_empty());
    }
}
