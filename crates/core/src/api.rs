//! Typed request/response API shared by the one-shot CLI and the
//! `openarc serve` daemon.
//!
//! The `run`/`cpu`/`check`/`verify`/`profile` commands used to render
//! their reports inside the CLI binary, which made a served request a
//! *reimplementation* of the CLI instead of the same code path. This
//! module is the single entry point both front ends call:
//! [`Request`] names the work (action, program source, `verificationOptions`
//! spec, tenant id, journal flag), [`handle`] routes it through a shared
//! warm [`Session`], and [`Response`] carries the rendered report — the
//! exact bytes the one-shot CLI prints — plus the structured surface
//! (exit code, simulated time, per-stage cache stats, optional journal
//! events). Served reports are therefore byte-identical to the CLI by
//! construction, which is the gate `BENCH_serve.json` enforces.
//!
//! Both types (de)serialize with the hand-rolled [`Json`] from the trace
//! crate — the wire format of the serve protocol — with floats carried
//! as IEEE-754 bit patterns so simulated times survive the round trip
//! exactly.

use crate::exec::{ExecMode, ExecOptions, RunResult, VerifyOptions};
use crate::options::parse_verification_options;
use crate::pipeline::{PipelineError, Session, Stage, TranslatedArtifact};
use crate::translate::{TranslateOptions, Translated};
use openarc_trace::codec::{event_from_json, event_to_json, f64_field, f64_to_json};
use openarc_trace::json::Json;
use openarc_trace::{Journal, TraceEvent};
use std::fmt::Write as _;

/// What a request asks the pipeline to do. Mirrors the CLI commands of
/// the same names; `Profile` is the journaled run behind
/// `openarc profile` (the caller renders the summary from
/// [`Response::events`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Translate and execute on the simulated device.
    Run,
    /// Execute the sequential CPU reference.
    Cpu,
    /// §III-B memory-transfer verification report.
    Check,
    /// §III-A kernel verification.
    Verify,
    /// Instrumented, journaled run (trace capture); the report stays
    /// empty and [`Response::events`] carries the journal.
    Profile,
}

impl Action {
    /// Wire name (also the CLI command name).
    pub fn as_str(self) -> &'static str {
        match self {
            Action::Run => "run",
            Action::Cpu => "cpu",
            Action::Check => "check",
            Action::Verify => "verify",
            Action::Profile => "profile",
        }
    }

    /// Parse a wire name.
    pub fn from_wire(s: &str) -> Option<Action> {
        Some(match s {
            "run" => Action::Run,
            "cpu" => Action::Cpu,
            "check" => Action::Check,
            "verify" => Action::Verify,
            "profile" => Action::Profile,
            _ => return None,
        })
    }
}

/// One unit of work for the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// What to do.
    pub action: Action,
    /// MiniC + OpenACC program source.
    pub source: String,
    /// `verificationOptions` spec (the paper's syntax). For
    /// [`Action::Verify`] `None` means defaults; for [`Action::Profile`]
    /// `None` profiles a normal run and `Some(spec)` profiles a
    /// verification run. Ignored by the other actions.
    pub options: Option<String>,
    /// Tenant id (`""` = the default tenant). The daemon routes each
    /// tenant to its own warm [`Session`] and cache namespace; the
    /// one-shot CLI leaves it empty.
    pub tenant: String,
    /// Capture the deterministic run journal into [`Response::events`].
    /// Forced on for [`Action::Profile`]; ignored by [`Action::Verify`]
    /// (whose report is memoized without a journal).
    pub journal: bool,
    /// Serve-side admission deadline, milliseconds from admission.
    /// Ignored by [`handle`]; the daemon rejects requests it cannot
    /// start in time.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A request with defaults for everything but the action and source.
    pub fn new(action: Action, source: impl Into<String>) -> Request {
        Request {
            action,
            source: source.into(),
            options: None,
            tenant: String::new(),
            journal: false,
            deadline_ms: None,
        }
    }

    /// Encode for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("action", Json::from(self.action.as_str())),
            ("source", Json::from(self.source.as_str())),
        ];
        if let Some(spec) = &self.options {
            pairs.push(("options", Json::from(spec.as_str())));
        }
        if !self.tenant.is_empty() {
            pairs.push(("tenant", Json::from(self.tenant.as_str())));
        }
        if self.journal {
            pairs.push(("journal", Json::from(true)));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::from(ms)));
        }
        Json::obj(pairs)
    }

    /// Decode a wire request. Unknown actions, missing fields, and
    /// ill-typed fields are [`ApiError::bad_request`]s.
    pub fn from_json(v: &Json) -> Result<Request, ApiError> {
        let action = v
            .get("action")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("missing string field `action`"))?;
        let action = Action::from_wire(action).ok_or_else(|| {
            ApiError::bad_request(format!(
                "unknown action `{action}` (expected run, cpu, check, verify or profile)"
            ))
        })?;
        let source = v
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("missing string field `source`"))?
            .to_string();
        let options = match v.get("options") {
            None | Some(Json::Null) => None,
            Some(o) => Some(
                o.as_str()
                    .ok_or_else(|| ApiError::bad_request("`options` must be a string"))?
                    .to_string(),
            ),
        };
        let tenant = match v.get("tenant") {
            None | Some(Json::Null) => String::new(),
            Some(t) => t
                .as_str()
                .ok_or_else(|| ApiError::bad_request("`tenant` must be a string"))?
                .to_string(),
        };
        let journal = match v.get("journal") {
            None | Some(Json::Null) => false,
            Some(j) => j
                .as_bool()
                .ok_or_else(|| ApiError::bad_request("`journal` must be a bool"))?,
        };
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(d) => Some(
                d.as_u64()
                    .ok_or_else(|| ApiError::bad_request("`deadline_ms` must be an integer"))?,
            ),
        };
        Ok(Request {
            action,
            source,
            options,
            tenant,
            journal,
            deadline_ms,
        })
    }
}

/// Per-stage cache counters carried in a [`Response`] (a snapshot of the
/// serving session's cumulative [`crate::pipeline::PipelineStats`], so a
/// client can watch its tenant session warm up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStat {
    /// Stage label ([`Stage::label`]).
    pub stage: &'static str,
    /// Requests served from the session cache.
    pub hits: u64,
    /// Requests that ran the stage.
    pub misses: u64,
}

/// The pipeline's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The rendered report — exactly the bytes the one-shot CLI prints
    /// to stdout for the same action (empty for [`Action::Profile`],
    /// whose deliverable is [`Response::events`]).
    pub report: String,
    /// The CLI exit code: `0` clean, `1` findings.
    pub exit_code: i32,
    /// Simulated time of the run, µs.
    pub sim_time_us: f64,
    /// Kernel launches performed.
    pub kernel_launches: u64,
    /// Serving session's cumulative per-stage cache counters.
    pub stages: Vec<StageStat>,
    /// Deterministic run-journal events, when [`Request::journal`] was
    /// set (or the action was [`Action::Profile`]).
    pub events: Vec<TraceEvent>,
}

impl Response {
    /// Encode for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("report", Json::from(self.report.as_str())),
            ("exit_code", Json::I64(self.exit_code.into())),
            ("sim_time_us", f64_to_json(self.sim_time_us)),
            ("kernel_launches", Json::from(self.kernel_launches)),
            (
                "stages",
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("stage", Json::from(s.stage)),
                                ("hits", Json::from(s.hits)),
                                ("misses", Json::from(s.misses)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if !self.events.is_empty() {
            pairs.push((
                "events",
                Json::Arr(self.events.iter().map(event_to_json).collect()),
            ));
        }
        Json::obj(pairs)
    }

    /// Decode a wire response.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        let report = v
            .get("report")
            .and_then(Json::as_str)
            .ok_or("missing string field `report`")?
            .to_string();
        let exit_code = v
            .get("exit_code")
            .and_then(Json::as_i64)
            .ok_or("missing integer field `exit_code`")? as i32;
        let sim_time_us = f64_field(v, "sim_time_us")?;
        let kernel_launches = v
            .get("kernel_launches")
            .and_then(Json::as_u64)
            .ok_or("missing u64 field `kernel_launches`")?;
        let mut stages = Vec::new();
        if let Some(arr) = v.get("stages").and_then(Json::as_arr) {
            for row in arr {
                let label = row
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or("stage row missing `stage`")?;
                let stage = Stage::ALL
                    .iter()
                    .map(|s| s.label())
                    .find(|l| *l == label)
                    .ok_or_else(|| format!("unknown stage label {label:?}"))?;
                stages.push(StageStat {
                    stage,
                    hits: row
                        .get("hits")
                        .and_then(Json::as_u64)
                        .ok_or("stage row missing `hits`")?,
                    misses: row
                        .get("misses")
                        .and_then(Json::as_u64)
                        .ok_or("stage row missing `misses`")?,
                });
            }
        }
        let events = match v.get("events") {
            None | Some(Json::Null) => Vec::new(),
            Some(arr) => arr
                .as_arr()
                .ok_or("`events` must be an array")?
                .iter()
                .map(event_from_json)
                .collect::<Result<_, _>>()?,
        };
        Ok(Response {
            report,
            exit_code,
            sim_time_us,
            kernel_launches,
            stages,
            events,
        })
    }
}

/// Classified API failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request itself is malformed (bad action, bad options spec,
    /// bad field types). CLI exit code `2`.
    BadRequest,
    /// The program failed to compile (frontend/directive/translate
    /// diagnostics). CLI exit code `2`.
    Program,
    /// The program compiled but the run failed. CLI exit code `3`.
    Execution,
    /// The daemon's admission queue is full; retry after
    /// [`ApiError::retry_after_ms`]. Never produced by [`handle`].
    Overloaded,
    /// The request's deadline passed before work could start. Never
    /// produced by [`handle`].
    DeadlineExceeded,
    /// The serving side failed internally (protocol framing, worker
    /// loss).
    Internal,
}

impl ErrorKind {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Program => "program",
            ErrorKind::Execution => "execution",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parse a wire name.
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "bad_request" => ErrorKind::BadRequest,
            "program" => ErrorKind::Program,
            "execution" => ErrorKind::Execution,
            "overloaded" => ErrorKind::Overloaded,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// Structured API error: what went wrong, the message a CLI prints to
/// stderr, and — for [`ErrorKind::Overloaded`] — when to retry.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// Failure class.
    pub kind: ErrorKind,
    /// Human-readable message.
    pub message: String,
    /// For [`ErrorKind::Overloaded`]: suggested client backoff before
    /// retrying, derived from queue depth × recent service time.
    pub retry_after_ms: Option<u64>,
}

impl ApiError {
    /// A [`ErrorKind::BadRequest`] error.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: ErrorKind::BadRequest,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A [`ErrorKind::Internal`] error.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: ErrorKind::Internal,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// The process exit code a CLI front end maps this error to
    /// (matches [`PipelineError::exit_code`]'s contract: `2` bad input,
    /// `3` failed execution).
    pub fn exit_code(&self) -> i32 {
        match self.kind {
            ErrorKind::BadRequest | ErrorKind::Program => 2,
            _ => 3,
        }
    }

    /// Encode for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("kind", Json::from(self.kind.as_str())),
            ("message", Json::from(self.message.as_str())),
        ];
        if let Some(ms) = self.retry_after_ms {
            pairs.push(("retry_after_ms", Json::from(ms)));
        }
        Json::obj(pairs)
    }

    /// Decode a wire error.
    pub fn from_json(v: &Json) -> Result<ApiError, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("error missing `kind`")?;
        Ok(ApiError {
            kind: ErrorKind::from_wire(kind)
                .ok_or_else(|| format!("unknown error kind {kind:?}"))?,
            message: v
                .get("message")
                .and_then(Json::as_str)
                .ok_or("error missing `message`")?
                .to_string(),
            retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64),
        })
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<PipelineError> for ApiError {
    fn from(e: PipelineError) -> ApiError {
        ApiError {
            kind: if e.exit_code() == 2 {
                ErrorKind::Program
            } else {
                ErrorKind::Execution
            },
            message: e.to_string(),
            retry_after_ms: None,
        }
    }
}

/// Serve one request through `session`.
///
/// This is the single entry point behind both the one-shot CLI commands
/// and the daemon: the returned [`Response::report`] holds the exact
/// bytes `openarc <action>` prints to stdout, so a served report is
/// byte-identical to the one-shot CLI by construction.
pub fn handle(session: &Session, req: &Request) -> Result<Response, ApiError> {
    match req.action {
        Action::Run | Action::Cpu => handle_run(session, req),
        Action::Check => handle_check(session, req),
        Action::Verify => handle_verify(session, req),
        Action::Profile => handle_profile(session, req),
    }
}

fn stage_stats(session: &Session) -> Vec<StageStat> {
    let stats = session.stats();
    Stage::ALL
        .iter()
        .map(|s| {
            let c = stats.get(*s);
            StageStat {
                stage: s.label(),
                hits: c.hits,
                misses: c.misses,
            }
        })
        .collect()
}

fn run_journal(req: &Request) -> Journal {
    if req.journal {
        Journal::enabled()
    } else {
        Journal::disabled()
    }
}

/// Render the program's observable outputs — every non-internal global,
/// scalars in full precision, arrays elided after six elements — exactly
/// as `openarc run` prints them.
fn render_outputs(out: &mut String, tr: &Translated, r: &RunResult) {
    for g in &tr.host_module.globals {
        if g.name.starts_with("__") {
            continue;
        }
        match &g.ty {
            openarc_minic::Ty::Scalar(_) => {
                if let Some(v) = r.global_scalar(tr, &g.name) {
                    let _ = writeln!(out, "{:<16} = {v}", g.name);
                }
            }
            openarc_minic::Ty::Array(..) | openarc_minic::Ty::Ptr(_) => {
                if let Some(vals) = r.global_array(tr, &g.name) {
                    let head: Vec<String> =
                        vals.iter().take(6).map(|v| format!("{v:.6}")).collect();
                    let ell = if vals.len() > 6 { ", …" } else { "" };
                    let _ = writeln!(
                        out,
                        "{:<16} = [{}{}] (len {})",
                        g.name,
                        head.join(", "),
                        ell,
                        vals.len()
                    );
                }
            }
            _ => {}
        }
    }
}

fn handle_run(session: &Session, req: &Request) -> Result<Response, ApiError> {
    let fe = session.frontend(&req.source)?;
    let tra = session.translate(&fe, &TranslateOptions::default())?;
    let mode = if req.action == Action::Cpu {
        ExecMode::CpuOnly
    } else {
        ExecMode::Normal
    };
    let journal = run_journal(req);
    let r = session.execute(
        &tra,
        &ExecOptions {
            mode,
            journal: journal.clone(),
            ..Default::default()
        },
    )?;
    let mut report = String::new();
    render_outputs(&mut report, &tra.tr, &r);
    let _ = writeln!(report, "--");
    let _ = writeln!(report, "kernel launches   : {}", r.kernel_launches);
    let _ = writeln!(report, "simulated time    : {:.1} µs", r.sim_time_us());
    let _ = writeln!(
        report,
        "transfers         : {} ops, {} bytes",
        r.machine.stats.total_count(),
        r.machine.stats.total_bytes()
    );
    let mut exit_code = 0;
    if !r.races.is_empty() {
        let _ = writeln!(report, "data races        : {}", r.races.len());
        for (k, race) in &r.races {
            let _ = writeln!(
                report,
                "  {k}: {} ({} conflicts)",
                race.label, race.conflicts
            );
        }
        exit_code = 1;
    }
    Ok(Response {
        report,
        exit_code,
        sim_time_us: r.sim_time_us(),
        kernel_launches: r.kernel_launches,
        stages: stage_stats(session),
        events: journal.drain(),
    })
}

fn handle_check(session: &Session, req: &Request) -> Result<Response, ApiError> {
    let fe = session.frontend(&req.source)?;
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let tra = session.translate(&fe, &topts)?;
    let journal = run_journal(req);
    let r = session.execute(
        &tra,
        &ExecOptions {
            check_transfers: true,
            journal: journal.clone(),
            ..Default::default()
        },
    )?;
    let (report, exit_code) = if r.machine.report.issues.is_empty() {
        ("no memory-transfer issues found\n".to_string(), 0)
    } else {
        (
            r.machine.report.to_string(),
            i32::from(r.machine.report.has_errors()),
        )
    };
    Ok(Response {
        report,
        exit_code,
        sim_time_us: r.sim_time_us(),
        kernel_launches: r.kernel_launches,
        stages: stage_stats(session),
        events: journal.drain(),
    })
}

fn parse_spec(spec: &str) -> Result<VerifyOptions, ApiError> {
    parse_verification_options(spec).map_err(|e| ApiError::bad_request(e.to_string()))
}

fn handle_verify(session: &Session, req: &Request) -> Result<Response, ApiError> {
    let vopts = match &req.options {
        Some(spec) => parse_spec(spec)?,
        None => VerifyOptions::default(),
    };
    let fe = session.frontend(&req.source)?;
    let (tra, rep) = session.verify(&fe, &TranslateOptions::default(), vopts)?;
    let mut report = String::new();
    for k in &rep.kernels {
        let verdict = if k.flagged() {
            "FAIL"
        } else if k.launches > 0 {
            "ok"
        } else {
            "skipped"
        };
        let _ = writeln!(
            report,
            "{:<20} launches={:<4} mismatched={:<8} max|err|={:<12.3e} asserts_failed={:<3} {verdict}",
            k.kernel, k.launches, k.mismatched_elems, k.max_abs_err, k.assertion_failures
        );
    }
    let _ = writeln!(
        report,
        "--\nverification time = {:.2}x sequential CPU",
        rep.normalized_time()
    );
    let launches: u64 = rep.kernels.iter().map(|k| k.launches).sum();
    let _ = &tra;
    Ok(Response {
        report,
        exit_code: i32::from(!rep.flagged().is_empty()),
        sim_time_us: rep.breakdown.total(),
        kernel_launches: launches,
        stages: stage_stats(session),
        events: Vec::new(),
    })
}

fn handle_profile(session: &Session, req: &Request) -> Result<Response, ApiError> {
    let mode = match &req.options {
        Some(spec) => ExecMode::Verify(parse_spec(spec)?),
        None => ExecMode::Normal,
    };
    let fe = session.frontend(&req.source)?;
    let topts = TranslateOptions {
        instrument: true,
        ..Default::default()
    };
    let tra: std::sync::Arc<TranslatedArtifact> = session.translate(&fe, &topts)?;
    // Keep our own journal handle: a cached journaled run replays into
    // it, while the run's own capture points at the recording journal.
    let journal = Journal::enabled();
    let r = session.execute(
        &tra,
        &ExecOptions {
            mode,
            check_transfers: true,
            journal: journal.clone(),
            // Verified launches add their wall-clock staging/overlap/
            // compare spans to the session's stage journal (fresh runs
            // only — stage spans are observations, never replayed).
            stage_journal: session.stage_journal().clone(),
            ..Default::default()
        },
    )?;
    let flagged = r.verify.iter().any(|k| k.flagged());
    Ok(Response {
        report: String::new(),
        exit_code: i32::from(r.machine.report.has_errors() || flagged),
        sim_time_us: r.sim_time_us(),
        kernel_launches: r.kernel_launches,
        stages: stage_stats(session),
        events: journal.drain(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "double a[16];\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 16; j++) { a[j] = (double) j; }\n}";

    #[test]
    fn request_round_trips_through_json() {
        let mut req = Request::new(Action::Verify, SRC);
        req.options = Some("devices=2,dagJobs=4".into());
        req.tenant = "team-a".into();
        req.journal = true;
        req.deadline_ms = Some(250);
        let text = req.to_json().pretty();
        let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, req);
        // Defaults stay off the wire and decode back to defaults.
        let plain = Request::new(Action::Run, SRC);
        let text = plain.to_json().to_string();
        assert!(!text.contains("tenant"));
        let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plain);
    }

    #[test]
    fn malformed_requests_are_bad_requests() {
        for v in [
            Json::obj(vec![("action", Json::from("frobnicate"))]),
            Json::obj(vec![("action", Json::from("run"))]),
            Json::obj(vec![
                ("action", Json::from("run")),
                ("source", Json::from("x")),
                ("journal", Json::from("yes")),
            ]),
            Json::Null,
        ] {
            let err = Request::from_json(&v).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest);
            assert_eq!(err.exit_code(), 2);
        }
    }

    #[test]
    fn run_response_matches_the_cli_report_shape() {
        let session = Session::builder().build();
        let resp = handle(&session, &Request::new(Action::Run, SRC)).unwrap();
        assert_eq!(resp.exit_code, 0);
        assert!(resp
            .report
            .contains("a                = [0.000000, 1.000000"));
        assert!(resp.report.contains("kernel launches   : 1"));
        assert!(resp.report.ends_with('\n'));
        assert!(resp.events.is_empty());
        // A journaled request replays the same run with events attached.
        let mut req = Request::new(Action::Run, SRC);
        req.journal = true;
        let with_events = handle(&session, &req).unwrap();
        assert_eq!(with_events.report, resp.report);
        assert!(!with_events.events.is_empty());
    }

    #[test]
    fn responses_round_trip_through_json() {
        let session = Session::builder().build();
        let mut req = Request::new(Action::Run, SRC);
        req.journal = true;
        let resp = handle(&session, &req).unwrap();
        let text = resp.to_json().pretty();
        let back = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn verify_and_check_render_reports() {
        let session = Session::builder().build();
        let v = handle(&session, &Request::new(Action::Verify, SRC)).unwrap();
        assert_eq!(v.exit_code, 0);
        assert!(v.report.contains("verification time ="));
        let c = handle(&session, &Request::new(Action::Check, SRC)).unwrap();
        assert!(c.report.ends_with('\n'));
        let mut bad = Request::new(Action::Verify, SRC);
        bad.options = Some("frobnicate=1".into());
        let err = handle(&session, &bad).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn program_errors_classify_by_exit_code() {
        let session = Session::builder().build();
        let err = handle(&session, &Request::new(Action::Run, "void main( {")).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Program);
        assert_eq!(err.exit_code(), 2);
        let wire = err.to_json().to_string();
        let back = ApiError::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, err);
    }
}
