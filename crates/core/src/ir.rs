//! Lowered-program representation produced by the translator.
//!
//! The translator rewrites directive statements in the host AST into
//! `__host_op(id)` marker calls; `id` indexes the [`RtOp`] table below,
//! which the executor dispatches against the simulated machine.

use openarc_minic::NodeId;
use openarc_openacc::{DataClauseKind, ReductionOp};
use openarc_runtime::{DevSide, St};

/// How one variable is handled around a kernel launch or data region
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct DataAction {
    /// Variable name.
    pub var: String,
    /// Map (allocate if absent) at entry and release at exit.
    pub map: bool,
    /// Host→device copy at entry.
    pub copyin: bool,
    /// Device→host copy at exit.
    pub copyout: bool,
    /// Which clause produced this action (None = default/naive policy).
    pub from_clause: Option<DataClauseKind>,
    /// Data region whose clauses cover this variable, when the action is
    /// region-managed. If that region's `if(...)` evaluated false at run
    /// time, the launch falls back to the default copy policy.
    pub covering_region: Option<usize>,
    /// Whether the kernel writes the variable (drives the fallback
    /// copyout).
    pub written: bool,
}

/// Recipe for one kernel argument after the implicit `__gid`.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelParam {
    /// Device handle of a mapped aggregate (host global holding the
    /// buffer handle is named `var`).
    Aggregate {
        /// Host variable name.
        var: String,
    },
    /// Scalar value read from a host global slot (original global or a
    /// synthesized `__k*` argument global).
    Scalar {
        /// Host global name.
        var: String,
    },
    /// A one-element device buffer shared by all threads — produced when a
    /// written scalar is neither privatized nor recognized as a reduction
    /// (the miscompilation §IV-B injects).
    SharedCell {
        /// Scalar name (cell is labelled with it).
        var: String,
        /// Host global slot holding the initial value, if the scalar has a
        /// meaningful incoming value (globals, or synthesized captures).
        init_global: Option<String>,
    },
    /// Per-thread partial-result buffer for one reduction variable.
    ReductionSlot {
        /// Reduced scalar.
        var: String,
        /// Combining operator.
        op: ReductionOp,
    },
}

/// Everything the executor needs to launch one translated kernel.
#[derive(Debug, Clone)]
pub struct KernelInfo {
    /// Kernel function name in the kernel module (e.g. `main_kernel0`).
    pub name: String,
    /// Sequential CPU fallback function name in the host module.
    pub seq_name: String,
    /// Host global holding the thread count (synthesized).
    pub n_threads_global: String,
    /// Argument recipes (after the implicit `__gid`).
    pub params: Vec<KernelParam>,
    /// Per-variable data policy at this launch.
    pub actions: Vec<DataAction>,
    /// Aggregates read by the kernel (coherence: GPU read checks).
    pub gpu_reads: Vec<String>,
    /// Aggregates written by the kernel (coherence: GPU write checks).
    pub gpu_writes: Vec<String>,
    /// Aggregates whose GPU write-check was hoisted before the enclosing
    /// loop (Listing 3 optimization): launch skips their state update.
    pub hoisted_writes: Vec<String>,
    /// Reduction outputs `(var, op)` finalized on the CPU after launch.
    pub reductions: Vec<(String, ReductionOp)>,
    /// §III-C application knowledge attached via `openarc verify` pragmas.
    pub knowledge: crate::knowledge::KernelKnowledge,
    /// Lockstep wave width requested via `num_workers`/`vector_length`
    /// (workers × vector lanes resident together); `None` uses the
    /// executor default.
    pub wave_override: Option<u32>,
    /// Async queue, if the launch is asynchronous.
    pub queue: Option<i64>,
    /// Synthesized global holding the `if(...)` clause value; when it
    /// evaluates falsy the region executes on the host instead.
    pub if_global: Option<String>,
    /// Originating statement in the source program.
    pub stmt: NodeId,
    /// Source line of the compute directive (for reports).
    pub line: u32,
}

/// One structured data region.
#[derive(Debug, Clone)]
pub struct DataRegionInfo {
    /// Per-variable actions at enter/exit.
    pub actions: Vec<DataAction>,
    /// Synthesized global holding the `if(...)` clause value; when falsy
    /// the region performs no mapping or transfers.
    pub if_global: Option<String>,
    /// Originating statement.
    pub stmt: NodeId,
}

/// Runtime operations dispatched by `__host_op(id)`.
#[derive(Debug, Clone, PartialEq)]
pub enum RtOp {
    /// Enter structured data region `.0` (index into region table).
    DataEnter(usize),
    /// Exit structured data region `.0`.
    DataExit(usize),
    /// Launch kernel `.0` (index into kernel table).
    Launch(usize),
    /// Executable `update` directive.
    Update {
        /// Device→host variables.
        to_host: Vec<String>,
        /// Host→device variables.
        to_device: Vec<String>,
        /// Async queue.
        queue: Option<i64>,
        /// Report site label (e.g. `update0`).
        site: String,
        /// Synthesized global holding the `if(...)` value, when present.
        if_global: Option<String>,
    },
    /// Wait on a queue (or all).
    Wait(Option<i64>),
    /// Coherence `check_read(var, side)` (instrumentation).
    CheckRead {
        /// Variable.
        var: String,
        /// Side performing the read.
        side: DevSide,
        /// Report site label.
        site: String,
    },
    /// Coherence `check_write(var, side, total)` (instrumentation).
    CheckWrite {
        /// Variable.
        var: String,
        /// Side performing the write.
        side: DevSide,
        /// Whole-variable overwrite?
        total: bool,
        /// Report site label.
        site: String,
    },
    /// Coherence `reset_status(var, side, st)` (dead-variable override).
    ResetStatus {
        /// Variable.
        var: String,
        /// Side whose state is overridden.
        side: DevSide,
        /// New state.
        st: St,
    },
    /// Begin tracking an enclosing host loop (report context).
    LoopEnter {
        /// Label shown in reports (e.g. `k-loop`).
        label: String,
    },
    /// Host loop advanced to its next iteration.
    LoopTick,
    /// Host loop finished.
    LoopExit,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_action_defaults() {
        let a = DataAction {
            var: "q".into(),
            map: true,
            copyin: true,
            copyout: false,
            from_clause: Some(DataClauseKind::CopyIn),
            covering_region: None,
            written: false,
        };
        assert_eq!(a.from_clause, Some(DataClauseKind::CopyIn));
        assert!(a.map && a.copyin && !a.copyout);
    }

    #[test]
    fn rtop_equality() {
        assert_eq!(RtOp::Wait(None), RtOp::Wait(None));
        assert_ne!(RtOp::Wait(Some(1)), RtOp::Wait(None));
        assert_eq!(RtOp::LoopTick, RtOp::LoopTick);
    }
}
