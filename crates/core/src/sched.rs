//! Std-only parallel task scheduler for batch drivers.
//!
//! The simulator is deterministic and single-threaded per run, so batch
//! workloads — the 12-benchmark × variant matrix behind every figure and
//! table, CI smoke sweeps, parameter studies — parallelize perfectly at the
//! granularity of whole runs. [`run_tasks`] fans a vector of closures over a
//! fixed worker pool built on [`std::thread::scope`] (no dependencies, no
//! unsafe) and returns results **in task order**, so callers observe output
//! identical to a sequential loop regardless of worker interleaving.
//!
//! Used by `openarc-suite`'s cached variant runners and `openarc-bench`'s
//! figure/table drivers (`--jobs N`), and mirrored in miniature inside the
//! verified launch path where the CPU reference overlaps the device run.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Number of workers the host can usefully run (`available_parallelism`,
/// falling back to 1 when the platform cannot say).
pub fn auto_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Upper bound accepted for `--jobs` (beyond this the fixed-size matrix
/// gains nothing and thread overhead dominates).
pub const MAX_JOBS: usize = 512;

/// Parse a `--jobs` argument: a positive integer, `0`, or `auto` (both
/// meaning [`auto_jobs`]). Returns a user-facing message on bad input.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    if s == "auto" {
        return Ok(auto_jobs());
    }
    match s.parse::<usize>() {
        Ok(0) => Ok(auto_jobs()),
        Ok(n) if n <= MAX_JOBS => Ok(n),
        Ok(n) => Err(format!("--jobs must be between 1 and {MAX_JOBS} (got {n})")),
        Err(_) => Err(format!(
            "--jobs expects a positive integer or 'auto' (got '{s}')"
        )),
    }
}

/// Run `tasks` across up to `jobs` worker threads and return their results
/// in task order.
///
/// `jobs <= 1` (or a single task) degenerates to an inline sequential loop
/// on the calling thread — byte-identical behaviour, zero thread overhead.
///
/// Workers self-schedule in **guided chunks**: each claims
/// `max(1, remaining / (2 × workers))` consecutive task indices under one
/// lock acquisition, so a matrix of fine-grained cells does not pay one
/// mutex round-trip per task — early chunks are large (low overhead), the
/// final chunks shrink to single tasks (good load balance, so an expensive
/// task never strands cheap ones behind it). Each worker buffers its
/// `(index, result)` pairs locally and publishes them with one lock at
/// exit, so result collection adds one acquisition per worker, not per
/// task. A panicking task does not poison the pool: remaining tasks still
/// run, and the first panic (in task order) is re-raised on the caller
/// after all workers join.
///
/// ```
/// use openarc_core::sched::run_tasks;
/// let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
/// assert_eq!(run_tasks(4, tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let workers = jobs.min(n);
    struct Queue<F> {
        tasks: Vec<Option<F>>,
        next: usize,
    }
    let queue = Mutex::new(Queue {
        tasks: tasks.into_iter().map(Some).collect(),
        next: 0,
    });
    let results: Mutex<Vec<Option<std::thread::Result<T>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut chunk: Vec<(usize, F)> = Vec::new();
                let mut done: Vec<(usize, std::thread::Result<T>)> = Vec::new();
                loop {
                    {
                        let mut q = queue.lock().expect("sched queue poisoned");
                        let remaining = n - q.next;
                        if remaining == 0 {
                            break;
                        }
                        let take = (remaining / (2 * workers)).max(1);
                        let start = q.next;
                        q.next += take;
                        for i in start..start + take {
                            chunk.push((i, q.tasks[i].take().expect("task claimed twice")));
                        }
                    }
                    for (i, task) in chunk.drain(..) {
                        done.push((i, catch_unwind(AssertUnwindSafe(task))));
                    }
                }
                let mut slots = results.lock().expect("sched results poisoned");
                for (i, r) in done {
                    slots[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .expect("sched results poisoned")
        .into_iter()
        .map(|slot| match slot.expect("task never ran") {
            Ok(v) => v,
            Err(panic) => resume_unwind(panic),
        })
        .collect()
}

/// Split `0..total` into at most `parts` contiguous, near-equal ranges
/// (`lo..hi` half-open), in order. Used by the verified-launch comparison
/// stage to chunk one written aggregate across [`run_tasks`] workers:
/// because the ranges tile `0..total` in order and the caller merges chunk
/// results in task order, any `parts` value reproduces the sequential
/// loop's counts bit-for-bit.
pub fn chunk_ranges(total: u64, parts: usize) -> Vec<(u64, u64)> {
    if total == 0 {
        return Vec::new();
    }
    let parts = (parts.max(1) as u64).min(total);
    let chunk = total.div_ceil(parts);
    let mut out = Vec::with_capacity(parts as usize);
    let mut lo = 0;
    while lo < total {
        let hi = (lo + chunk).min(total);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn chunk_ranges_tile_without_gaps() {
        for total in [0u64, 1, 7, 64, 1000] {
            for parts in [1usize, 3, 8, 2000] {
                let ranges = chunk_ranges(total, parts);
                let mut expect = 0;
                for (lo, hi) in &ranges {
                    assert_eq!(*lo, expect, "total {total} parts {parts}");
                    assert!(hi > lo);
                    expect = *hi;
                }
                assert_eq!(expect, total);
                assert!(ranges.len() <= parts.max(1));
            }
        }
        assert!(chunk_ranges(0, 4).is_empty());
        assert_eq!(chunk_ranges(10, 1), vec![(0, 10)]);
    }

    #[test]
    fn results_come_back_in_task_order() {
        // Tasks deliberately uneven: late indices finish first under
        // parallelism, yet output order must match input order.
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    i * 10
                }
            })
            .collect();
        let got = run_tasks(8, tasks);
        assert_eq!(got, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let make = || (0..20usize).map(|i| move || i * i + 1).collect::<Vec<_>>();
        assert_eq!(run_tasks(1, make()), run_tasks(7, make()));
    }

    #[test]
    fn panic_propagates_after_all_tasks_run() {
        use std::sync::atomic::AtomicUsize;
        static DONE: AtomicUsize = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("task 3 exploded");
                    }
                    DONE.fetch_add(1, Ordering::SeqCst);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let r = catch_unwind(AssertUnwindSafe(|| run_tasks(4, tasks)));
        assert!(r.is_err());
        assert_eq!(DONE.load(Ordering::SeqCst), 7, "other tasks still ran");
    }

    #[test]
    fn parse_jobs_accepts_auto_and_rejects_garbage() {
        assert!(parse_jobs("auto").unwrap() >= 1);
        assert!(parse_jobs("0").unwrap() >= 1);
        assert_eq!(parse_jobs("4").unwrap(), 4);
        assert!(parse_jobs("banana").is_err());
        assert!(parse_jobs("-2").is_err());
        assert!(parse_jobs("100000").is_err());
    }
}
